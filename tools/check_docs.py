#!/usr/bin/env python
"""Documentation checker: link integrity + executable examples + API coverage.

Mirrored by ``make docs-check`` and the CI ``docs`` job.  Three passes:

1. **link check** (``README.md`` + ``docs/*.md``) — every relative
   markdown link must point at an existing file (anchors are validated
   against the target's headings, GitHub-style slugs); external
   ``http(s)``/``mailto`` links are only syntax-checked, never fetched,
   so the job works offline;
2. **doctest** — every file containing ``>>>`` examples is run through
   :mod:`doctest` (``python -m doctest`` semantics), so the fenced
   examples in ``docs/API.md`` and ``docs/TUTORIAL.md`` are executed
   against the live library and cannot drift from the code;
3. **API coverage** — every symbol exported (``__all__``) from the public
   packages listed in :data:`API_COVERAGE_MODULES` must be mentioned in
   ``docs/API.md``, so a PR that adds an entry point without documenting
   it fails CI.

Exit status is non-zero on any failure; run from the repo root with
``PYTHONPATH=src`` (the Makefile exports it; a fallback below inserts
``src/`` when invoked directly).
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

# Allow `python tools/check_docs.py` without an exported PYTHONPATH.
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Public packages whose ``__all__`` exports must all appear in
#: ``docs/API.md`` (the curated index of entry points).
API_COVERAGE_MODULES = (
    "repro.fl",
    "repro.parallel",
    "repro.core",
    "repro.core.population",
    "repro.registry",
    "repro.experiments.scenario",
    "repro.experiments.sweep",
    "repro.experiments.runcache",
    "repro.experiments.report",
    "repro.sim",
    "repro.sim.clientstate",
    "repro.fl.staleness",
)

#: ``[text](target)`` — excludes images' leading ``!`` only in reporting;
#: image targets are checked like any other link.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, drop punctuation."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    text = path.read_text(encoding="utf-8")
    return [github_slug(m.group(1)) for m in _HEADING_RE.finditer(text)]


def check_links(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("<"):
            continue
        name, _, anchor = target.partition("#")
        if name:
            resolved = (path.parent / name).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
            anchor_file = resolved
        else:
            anchor_file = path
        if anchor and anchor_file.suffix == ".md":
            if anchor not in heading_slugs(anchor_file):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return errors


def run_doctests(path: Path) -> Tuple[int, int]:
    """Run the file's ``>>>`` examples; returns (failures, attempts)."""
    if ">>>" not in path.read_text(encoding="utf-8"):
        return 0, 0
    result = doctest.testfile(str(path), module_relative=False, verbose=False)
    return result.failed, result.attempted


def check_api_coverage(api_doc: Path) -> List[str]:
    """Every ``__all__`` export of the public packages must be documented.

    A symbol "appears" when it occurs in ``docs/API.md`` as a standalone
    word (not as a substring of a longer identifier), anywhere — prose,
    table cell or fenced example.
    """
    errors: List[str] = []
    if not api_doc.exists():
        return [f"{api_doc.relative_to(REPO_ROOT)}: file missing"]
    text = api_doc.read_text(encoding="utf-8")
    for module_name in API_COVERAGE_MODULES:
        try:
            module = importlib.import_module(module_name)
        except Exception as exc:  # pragma: no cover - import environment issue
            errors.append(f"cannot import {module_name}: {exc}")
            continue
        exported = getattr(module, "__all__", None)
        if not exported:
            errors.append(f"{module_name} defines no __all__ to check")
            continue
        for name in exported:
            if not re.search(rf"(?<![\w.]){re.escape(name)}(?!\w)", text):
                errors.append(
                    f"{api_doc.relative_to(REPO_ROOT)}: {module_name}.{name} "
                    "is exported but undocumented"
                )
    return errors


def main() -> int:
    failures = 0
    for path in doc_files():
        rel = path.relative_to(REPO_ROOT)
        errors = check_links(path)
        for err in errors:
            print(f"LINK FAIL  {err}")
        failures += len(errors)
        failed, attempted = run_doctests(path)
        failures += failed
        status = "ok" if not (errors or failed) else "FAIL"
        print(
            f"{status:4s} {rel}  (links checked, {attempted} doctest "
            f"example{'s' if attempted != 1 else ''}, {failed} failed)"
        )
    coverage_errors = check_api_coverage(REPO_ROOT / "docs" / "API.md")
    for err in coverage_errors:
        print(f"API  FAIL  {err}")
    failures += len(coverage_errors)
    modules = ", ".join(API_COVERAGE_MODULES)
    print(
        f"{'ok' if not coverage_errors else 'FAIL':4s} API coverage "
        f"({modules}): {len(coverage_errors)} missing"
    )
    if failures:
        print(f"\ndocs check failed: {failures} problem(s)")
        return 1
    print("\ndocs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
