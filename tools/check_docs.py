#!/usr/bin/env python
"""Documentation checker: link integrity + executable examples.

Mirrored by ``make docs-check`` and the CI ``docs`` job.  Two passes over
``README.md`` and ``docs/*.md``:

1. **link check** — every relative markdown link must point at an
   existing file (anchors are validated against the target's headings,
   GitHub-style slugs); external ``http(s)``/``mailto`` links are only
   syntax-checked, never fetched, so the job works offline;
2. **doctest** — every file containing ``>>>`` examples is run through
   :mod:`doctest` (``python -m doctest`` semantics), so the fenced
   examples in ``docs/API.md`` are executed against the live library and
   cannot drift from the code.

Exit status is non-zero on any failure; run from the repo root with
``PYTHONPATH=src`` (the Makefile exports it).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — excludes images' leading ``!`` only in reporting;
#: image targets are checked like any other link.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, drop punctuation."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    text = path.read_text(encoding="utf-8")
    return [github_slug(m.group(1)) for m in _HEADING_RE.finditer(text)]


def check_links(path: Path) -> List[str]:
    errors: List[str] = []
    text = path.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("<"):
            continue
        name, _, anchor = target.partition("#")
        if name:
            resolved = (path.parent / name).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
                continue
            anchor_file = resolved
        else:
            anchor_file = path
        if anchor and anchor_file.suffix == ".md":
            if anchor not in heading_slugs(anchor_file):
                errors.append(
                    f"{path.relative_to(REPO_ROOT)}: missing anchor -> {target}"
                )
    return errors


def run_doctests(path: Path) -> Tuple[int, int]:
    """Run the file's ``>>>`` examples; returns (failures, attempts)."""
    if ">>>" not in path.read_text(encoding="utf-8"):
        return 0, 0
    result = doctest.testfile(str(path), module_relative=False, verbose=False)
    return result.failed, result.attempted


def main() -> int:
    failures = 0
    for path in doc_files():
        rel = path.relative_to(REPO_ROOT)
        errors = check_links(path)
        for err in errors:
            print(f"LINK FAIL  {err}")
        failures += len(errors)
        failed, attempted = run_doctests(path)
        failures += failed
        status = "ok" if not (errors or failed) else "FAIL"
        print(
            f"{status:4s} {rel}  (links checked, {attempted} doctest "
            f"example{'s' if attempted != 1 else ''}, {failed} failed)"
        )
    if failures:
        print(f"\ndocs check failed: {failures} problem(s)")
        return 1
    print("\ndocs check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
