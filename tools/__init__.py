"""Repository tooling: documentation checks and the static-analysis suite."""
