"""RNG-discipline checker: all randomness flows through keyed streams.

Every scaling claim of this reproduction — bit-identical histories across
the serial/multiprocess/pipelined/lazy execution paths and exact
fault-trajectory replay — rests on one structural property: *every*
random draw derives from an explicitly seeded
``numpy.random.SeedSequence``/``default_rng(seed)`` stream.  A single
module-state ``np.random.*`` call or wall-clock-derived seed silently
breaks replay.  The AirComp literature admits aggregation noise as the
only nondeterminism, and that noise too is drawn from a keyed stream
(``BaseTrainer._noise_rng``).

Rules
-----
``RNG001``
    Call through NumPy's module-state RNG (``np.random.rand``,
    ``np.random.seed``, ``np.random.normal``, ...).  Constructing
    generators (``default_rng``, ``SeedSequence``, bit generators) is
    allowed.
``RNG002``
    Call into the stdlib ``random`` module (module-state Mersenne
    Twister), directly or via ``from random import ...``.
    ``random.Random(seed)`` with an explicit seed is allowed.
``RNG003``
    Wall-clock time feeding a seed: ``time.time()``/``time.time_ns()``/
    ``datetime.now()``/... appearing inside the arguments of
    ``default_rng``/``SeedSequence``/``Random`` or of any ``seed=``
    keyword.
``RNG004``
    ``default_rng()``/``SeedSequence()`` called with no arguments inside
    the seeded tree (``src/repro``): OS entropy, unreproducible.

Escape hatch: ``# analyze: allow-rng(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .core import Checker, Finding, Module
from .walk import CallSite, dotted_name, import_map, iter_calls

__all__ = ["RngDisciplineChecker"]

#: numpy.random attributes that *construct* keyed streams (allowed).
_GENERATOR_CONSTRUCTORS: Set[str] = {
    "default_rng",
    "SeedSequence",
    "Generator",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: Wall-clock call suffixes that must never feed a seed expression.
_WALL_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

_HINT_KEYED = (
    "derive a stream from np.random.default_rng("
    "np.random.SeedSequence([seed, *keys])) instead"
)


class RngDisciplineChecker(Checker):
    """RNG001-RNG004: no module-state RNG, no entropy/wall-clock seeds."""

    name = "rng-discipline"
    rules = {
        "RNG001": "module-state numpy RNG call (np.random.*)",
        "RNG002": "stdlib random-module call (module-state Mersenne Twister)",
        "RNG003": "wall-clock time feeding a seed expression",
        "RNG004": "default_rng()/SeedSequence() without an explicit seed",
    }
    allow_tag = "rng"

    def check_module(self, module: Module) -> Iterable[Finding]:
        imports = import_map(module.tree)
        # Aliases of the numpy package and of the stdlib random module.
        numpy_aliases = {a for a, o in imports.items() if o == "numpy"}
        npr_aliases = {a for a, o in imports.items() if o == "numpy.random"}
        random_aliases = {a for a, o in imports.items() if o == "random"}
        # Names imported *from* the random module: {local_name: member}.
        from_random: Dict[str, str] = {
            a: o.split(".", 1)[1]
            for a, o in imports.items()
            if o.startswith("random.")
        }

        findings: List[Finding] = []
        for site in iter_calls(module.tree):
            name = site.func_name
            member = self._np_random_member(
                name, numpy_aliases, npr_aliases
            )
            if member is not None and member not in _GENERATOR_CONSTRUCTORS:
                findings.append(self._emit(module, site, "RNG001", (
                    f"module-state NumPy RNG call {name}(...)"
                ), _HINT_KEYED))
            findings.extend(
                self._check_stdlib_random(
                    module, site, name, random_aliases, from_random
                )
            )
            findings.extend(
                self._check_seed_expression(module, site, name, member, imports)
            )
        return [f for f in findings if f is not None]

    # ------------------------------------------------------------------
    @staticmethod
    def _np_random_member(
        name: Optional[str],
        numpy_aliases: Set[str],
        npr_aliases: Set[str],
    ) -> Optional[str]:
        """The ``X`` of an ``np.random.X`` / ``numpy.random.X`` call."""
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 3 and parts[0] in numpy_aliases and parts[1] == "random":
            return parts[2]
        if len(parts) == 2 and parts[0] in npr_aliases:
            return parts[1]
        return None

    def _check_stdlib_random(
        self,
        module: Module,
        site: CallSite,
        name: Optional[str],
        random_aliases: Set[str],
        from_random: Dict[str, str],
    ) -> List[Finding]:
        if name is None:
            return []
        parts = name.split(".")
        member: Optional[str] = None
        if len(parts) == 2 and parts[0] in random_aliases:
            member = parts[1]
        elif len(parts) == 1 and parts[0] in from_random:
            member = from_random[parts[0]]
        if member is None:
            return []
        if member == "Random" and (site.node.args or site.node.keywords):
            return []  # explicitly seeded instance
        finding = self._emit(module, site, "RNG002", (
            f"stdlib random call {name}(...) uses module-state RNG"
        ), _HINT_KEYED)
        return [finding] if finding else []

    def _check_seed_expression(
        self,
        module: Module,
        site: CallSite,
        name: Optional[str],
        np_random_member: Optional[str],
        imports: Dict[str, str],
    ) -> List[Finding]:
        """RNG003/RNG004 on generator constructors and ``seed=`` keywords."""
        findings: List[Finding] = []
        last = name.rsplit(".", 1)[-1] if name else ""
        is_ctor = last in ("default_rng", "SeedSequence", "Random")
        seed_args: List[ast.expr] = []
        if is_ctor:
            seed_args.extend(site.node.args)
            seed_args.extend(k.value for k in site.node.keywords)
            if not seed_args and last != "Random":
                finding = self._emit(module, site, "RNG004", (
                    f"{name}() without an explicit seed draws OS entropy"
                ), "pass a seed or SeedSequence derived from the experiment seed")
                if finding:
                    findings.append(finding)
        for keyword in site.node.keywords:
            if keyword.arg in ("seed", "random_state"):
                seed_args.append(keyword.value)
        for arg in seed_args:
            clock = self._wall_clock_call(arg, imports)
            if clock is not None:
                finding = self._emit(module, site, "RNG003", (
                    f"wall-clock call {clock}(...) feeds a seed expression"
                ), "seeds must be pure functions of the experiment seed and keys")
                if finding:
                    findings.append(finding)
        return findings

    @staticmethod
    def _wall_clock_call(
        node: ast.expr, imports: Dict[str, str]
    ) -> Optional[str]:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = dotted_name(sub.func)
            if name is None:
                continue
            parts = name.split(".")
            root_origin = imports.get(parts[0], parts[0])
            resolved = ".".join([root_origin] + parts[1:])
            for suffix in _WALL_CLOCK_SUFFIXES:
                if resolved == suffix or resolved.endswith("." + suffix):
                    return name
        return None

    # ------------------------------------------------------------------
    def _emit(
        self,
        module: Module,
        site: CallSite,
        rule: str,
        message: str,
        hint: str,
    ) -> Optional[Finding]:
        if module.allows(self.allow_tag, site.node, site.stmt):
            return None
        return module.finding(rule, site.node, message, hint)
