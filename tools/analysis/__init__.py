"""repro-analyze: invariant-enforcing static analysis for this repository.

Run as ``python -m tools.analysis`` (or ``make analyze``).  See
:mod:`tools.analysis.core` for the framework, the sibling modules for the
checkers, and the "Checked invariants" section of ``docs/ARCHITECTURE.md``
for the enforced rules.
"""

from .alloc import HOT_PATHS, HotPathAllocationChecker
from .core import Baseline, Checker, Finding, Module, Project, run_checkers
from .lifecycle import ResourceLifecycleChecker
from .registry_rules import RegistryConsistencyChecker
from .rng import RngDisciplineChecker

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "Module",
    "Project",
    "run_checkers",
    "HOT_PATHS",
    "HotPathAllocationChecker",
    "ResourceLifecycleChecker",
    "RegistryConsistencyChecker",
    "RngDisciplineChecker",
    "default_checkers",
]


def default_checkers() -> list:
    """The checker set run by ``python -m tools.analysis``."""
    return [
        RngDisciplineChecker(),
        HotPathAllocationChecker(),
        ResourceLifecycleChecker(),
        RegistryConsistencyChecker(),
    ]
