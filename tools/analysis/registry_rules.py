"""Registry-consistency checker: every component is usable end to end.

A component registered via ``repro.registry.register(kind, name)`` is only
*useful* when a scenario author can reach it: it must be importable at
module level, documented in ``docs/API.md``, constructible through the
``accepted_parameters`` introspection that powers eager kwarg validation,
and its kind must be reachable from some :class:`Scenario` section.  Each
of those properties has historically regressed silently (a trainer
registered but undocumented, a factory hidden behind a closure that
``inspect.signature`` cannot see).

Rules
-----
``REG000``  the registry itself failed to import/populate (environment).
``REG001``  registered component name missing from ``docs/API.md``.
``REG002``  ``accepted_parameters()`` introspection fails for a factory.
``REG003``  a registered kind is reachable from no ``Scenario`` section
            (``repro.experiments.scenario.SCENARIO_COMPONENT_KINDS``).
``REG004``  factory is not reachable as a module-level attribute of its
            defining module (or missing from that module's ``__all__``).

This checker imports the library (``PYTHONPATH=src``); it runs only when
the analyzed tree includes ``src/repro``.

Escape hatch: ``# analyze: allow-registry(reason)`` on the registration
line of the defining module.
"""

from __future__ import annotations

import importlib
import inspect
import re
from pathlib import Path
from typing import Iterable, List, Optional

from .core import REPO_ROOT, Checker, Finding, Project

__all__ = ["RegistryConsistencyChecker"]


def _mentioned(name: str, text: str) -> bool:
    """Whether ``name`` appears as a standalone word in ``text``.

    Hyphens bind (`skew` is not documented by `label-skew`), and so do
    dots and identifier characters.
    """
    return (
        re.search(rf"(?<![\w.\-]){re.escape(name)}(?![\w\-])", text) is not None
    )


class RegistryConsistencyChecker(Checker):
    """REG000-REG004: registered components stay documented and reachable.

    Only components *defined under* ``scope_prefix`` (default ``src/``)
    are audited: plug-ins and test suites may register components into
    the live process without failing the repo's own CI.
    """

    name = "registry-consistency"
    rules = {
        "REG000": "registry import/population failure",
        "REG001": "registered component undocumented in docs/API.md",
        "REG002": "factory fails accepted_parameters introspection",
        "REG003": "registered kind unreachable from any Scenario section",
        "REG004": "factory not exported at module level",
    }
    allow_tag = "registry"

    def __init__(
        self, root: Path = REPO_ROOT, scope_prefix: str = "src/"
    ) -> None:
        self.root = Path(root)
        self.scope_prefix = scope_prefix

    def check_project(self, project: Project) -> Iterable[Finding]:
        if not any(m.rel.startswith("src/repro") for m in project.modules):
            return []
        try:
            registry = importlib.import_module("repro.registry")
            scenario = importlib.import_module("repro.experiments.scenario")
            kinds = registry.kinds()
        except Exception as exc:  # pragma: no cover - environment issue
            return [
                Finding(
                    rule="REG000",
                    path="src/repro/registry.py",
                    line=1,
                    message=f"cannot import/populate the registry: {exc}",
                    hint="run with PYTHONPATH=src and numpy installed",
                )
            ]
        api_doc = self.root / "docs" / "API.md"
        api_text = api_doc.read_text(encoding="utf-8") if api_doc.exists() else ""

        findings: List[Finding] = []
        reachable = set(
            getattr(scenario, "SCENARIO_COMPONENT_KINDS", {}).values()
        )
        for kind in kinds:
            in_scope = False
            for name, factory in sorted(registry.as_dict(kind).items()):
                path, line = self._location(factory)
                if self.scope_prefix and not path.startswith(self.scope_prefix):
                    continue  # plug-in/test registration: not ours to audit
                in_scope = True
                findings.extend(
                    self._check_component(
                        registry, kind, name, factory, api_text, path, line
                    )
                )
            if in_scope and kind not in reachable:
                findings.append(
                    Finding(
                        rule="REG003",
                        path="src/repro/experiments/scenario.py",
                        line=1,
                        message=(
                            f"registry kind {kind!r} is reachable from no "
                            "Scenario section"
                        ),
                        hint=(
                            "add the section (or params route) to "
                            "SCENARIO_COMPONENT_KINDS"
                        ),
                    )
                )
        return findings

    # ------------------------------------------------------------------
    def _location(self, factory: object) -> tuple:
        """(repo-relative path, line) of the factory definition."""
        try:
            source_file = inspect.getsourcefile(factory)
            line = inspect.getsourcelines(factory)[1]
        except (TypeError, OSError):
            source_file, line = None, 1
        if source_file:
            try:
                rel = (
                    Path(source_file).resolve().relative_to(self.root.resolve())
                ).as_posix()
                return rel, line
            except ValueError:
                pass
        return "src/repro/registry.py", 1

    def _check_component(
        self,
        registry: object,
        kind: str,
        name: str,
        factory: object,
        api_text: str,
        path: str,
        line: int,
    ) -> List[Finding]:
        findings: List[Finding] = []
        label = f"{kind}:{name}"

        if not _mentioned(name, api_text):
            findings.append(
                Finding(
                    rule="REG001",
                    path=path,
                    line=line,
                    message=(
                        f"registered component {label} is not documented in "
                        "docs/API.md"
                    ),
                    hint="mention the name in the component tables of docs/API.md",
                )
            )
        try:
            registry.accepted_parameters(factory)  # type: ignore[attr-defined]
        except Exception as exc:
            findings.append(
                Finding(
                    rule="REG002",
                    path=path,
                    line=line,
                    message=(
                        f"accepted_parameters({label}) introspection fails: {exc}"
                    ),
                    hint=(
                        "factories must expose an inspectable signature "
                        "(plain def/class, no opaque wrappers)"
                    ),
                )
            )
        findings.extend(self._check_export(label, factory, path, line))
        return findings

    @staticmethod
    def _check_export(
        label: str, factory: object, path: str, line: int
    ) -> List[Finding]:
        module_name: Optional[str] = getattr(factory, "__module__", None)
        qualname: str = getattr(factory, "__qualname__", "") or ""
        top = qualname.split(".")[0]
        if module_name is None or not top:
            return []
        try:
            module = importlib.import_module(module_name)
        except Exception:  # pragma: no cover - import environment issue
            return []
        resolved = getattr(module, top, None)
        target = factory if "." not in qualname else resolved
        problems: List[str] = []
        if resolved is None or (target is not None and resolved is not target):
            problems.append(
                f"{top!r} is not a module-level attribute of {module_name}"
            )
        exported = getattr(module, "__all__", None)
        if exported is not None and top not in exported:
            problems.append(f"{top!r} is missing from {module_name}.__all__")
        return [
            Finding(
                rule="REG004",
                path=path,
                line=line,
                message=f"component {label}: {problem}",
                hint="export the factory so plug-in users can import it",
            )
            for problem in problems
        ]
