"""Core of the repo-specific static-analysis suite (``python -m tools.analysis``).

The suite enforces *structural* invariants that the runtime tests can only
sample: determinism (all randomness flows through keyed ``SeedSequence``
streams), O(1) per-round allocation on the declared hot paths, registry
consistency and shared-memory/future lifecycle discipline.  Each checker
walks the AST of one module (or inspects the imported project once) and
emits :class:`Finding` objects — ``file:line``, a stable rule id, a
message and a fix hint.

Escape hatches
--------------
A finding is suppressed by an ``# analyze: allow-<tag>(reason)`` comment
with a non-empty reason, placed on the flagged line, on the first line of
the enclosing statement, or on the line directly above it::

    stacked = np.asarray(vectors).copy()  # analyze: allow-alloc(copy must not mutate the arena)

Each checker documents its tag (``allow-rng``, ``allow-alloc``,
``allow-lifecycle``, ``allow-registry``).  A reasonless ``allow-...()``
does not suppress anything.

Baseline
--------
Findings may be grandfathered in a committed baseline
(``tools/analysis/baseline.json``).  The baseline can only shrink: a
finding not in the baseline fails the run, and a baseline entry that no
longer fires fails the run too (remove it).  ``--update-baseline``
rewrites the file from the current findings.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "REPO_ROOT",
    "Finding",
    "Module",
    "Project",
    "Checker",
    "Baseline",
    "iter_modules",
    "run_checkers",
]

REPO_ROOT = Path(__file__).resolve().parents[2]

#: ``# analyze: allow-<tag>(reason)`` — the reason must be non-empty.
_ALLOW_RE = re.compile(r"#\s*analyze:\s*allow-([a-z]+)\(([^)]+)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str          # repo-relative posix path
    line: int
    message: str
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.message}"

    def format(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.hint:
            text += f"  [fix: {self.hint}]"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }


class Module:
    """One parsed source file, with escape-hatch comment lookup."""

    def __init__(self, path: Path, root: Path = REPO_ROOT) -> None:
        self.path = Path(path)
        self.root = Path(root)
        self.rel = self.path.resolve().relative_to(self.root.resolve()).as_posix()
        self.source = self.path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(self.path))
        # line number -> {tag: reason} for every allow comment in the file.
        self._allows: Dict[int, Dict[str, str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            for match in _ALLOW_RE.finditer(line):
                tag, reason = match.group(1), match.group(2).strip()
                if reason:
                    self._allows.setdefault(lineno, {})[tag] = reason

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allow_reason(self, tag: str, *linenos: int) -> Optional[str]:
        """The escape-hatch reason covering any of ``linenos``, or ``None``."""
        for lineno in linenos:
            reason = self._allows.get(lineno, {}).get(tag)
            if reason is not None:
                return reason
        return None

    def allows(self, tag: str, node: ast.AST, stmt: Optional[ast.stmt] = None) -> bool:
        """Whether an ``allow-<tag>(reason)`` comment covers ``node``.

        Checked locations: the node's own line, the first line of the
        enclosing statement (when given), and the line directly above it.
        """
        linenos = [getattr(node, "lineno", 0)]
        if stmt is not None:
            linenos.extend([stmt.lineno, stmt.lineno - 1])
        else:
            linenos.append(getattr(node, "lineno", 1) - 1)
        return self.allow_reason(tag, *linenos) is not None

    def finding(
        self, rule: str, node: ast.AST, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.rel,
            line=getattr(node, "lineno", 1),
            message=message,
            hint=hint,
        )


@dataclass
class Project:
    """The whole analyzed tree, passed once to project-level checkers."""

    root: Path
    modules: List[Module] = field(default_factory=list)

    def module(self, rel: str) -> Optional[Module]:
        for mod in self.modules:
            if mod.rel == rel:
                return mod
        return None


class Checker:
    """Base class: override :meth:`check_module` and/or :meth:`check_project`.

    ``name`` labels the checker in reports; ``rules`` maps each emitted
    rule id to a one-line description (surfaced by ``--list-rules`` and
    the docs).
    """

    name: str = "checker"
    rules: Dict[str, str] = {}

    def check_module(self, module: Module) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


def iter_modules(
    paths: Sequence[Path], root: Path = REPO_ROOT
) -> List[Module]:
    """Parse every ``*.py`` file under ``paths`` (files or directories)."""
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules = []
    for file in files:
        modules.append(Module(file, root=root))
    return modules


def run_checkers(
    checkers: Sequence[Checker],
    paths: Sequence[Path],
    root: Path = REPO_ROOT,
) -> List[Finding]:
    """Run every checker over every module, then the project-level passes."""
    project = Project(root=Path(root), modules=iter_modules(paths, root=root))
    findings: List[Finding] = []
    for checker in checkers:
        for module in project.modules:
            findings.extend(checker.check_module(module))
        findings.extend(checker.check_project(project))
    # Two identical calls on one line yield one finding (and baseline
    # fingerprints stay unique).
    findings = sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))
    return findings


# ----------------------------------------------------------------------
# Baseline: committed grandfathered findings; may only shrink.
# ----------------------------------------------------------------------
class Baseline:
    """The committed set of grandfathered finding fingerprints."""

    VERSION = 1

    def __init__(self, entries: Optional[List[Dict[str, object]]] = None) -> None:
        self.entries = list(entries or [])

    @property
    def fingerprints(self) -> List[str]:
        return [
            f"{e['rule']}::{e['path']}::{e['message']}" for e in self.entries
        ]

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not Path(path).exists():
            return cls()
        document = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(document, dict) or document.get("version") != cls.VERSION:
            raise ValueError(
                f"{path}: unsupported baseline format (expected version {cls.VERSION})"
            )
        entries = document.get("findings", [])
        if not isinstance(entries, list):
            raise ValueError(f"{path}: 'findings' must be a list")
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls([f.to_dict() for f in findings])

    def save(self, path: Path) -> None:
        document = {"version": self.VERSION, "findings": self.entries}
        Path(path).write_text(
            json.dumps(document, indent=2) + "\n", encoding="utf-8"
        )

    def compare(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[str]]:
        """``(new_findings, stale_fingerprints)`` vs the current run.

        ``new_findings`` are violations not grandfathered here (they fail
        the run); ``stale_fingerprints`` are baseline entries that no
        longer fire (the baseline must shrink — remove them).
        """
        known = set(self.fingerprints)
        current = {f.fingerprint for f in findings}
        new = [f for f in findings if f.fingerprint not in known]
        stale = sorted(known - current)
        return new, stale
