"""CLI of the static-analysis suite (``python -m tools.analysis``).

Default run: all checkers over ``src/repro``, compared against the
committed baseline (``tools/analysis/baseline.json``), which may only
shrink.  Exit status is non-zero on new findings or on stale baseline
entries.

``--mypy`` runs the strict-typing gate instead: ``mypy`` over the module
list declared in ``pyproject.toml`` (``[tool.mypy] files``).  When mypy
is not installed (the benchmark container ships without it) the gate is
skipped with a warning and exit 0 — CI installs mypy and enforces it.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .core import REPO_ROOT, Baseline, run_checkers

# Allow the registry checker to import the library without an exported
# PYTHONPATH (mirrors tools/check_docs.py).
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from . import default_checkers  # noqa: E402

DEFAULT_BASELINE = REPO_ROOT / "tools" / "analysis" / "baseline.json"
DEFAULT_PATHS = [REPO_ROOT / "src" / "repro"]


def run_mypy_gate() -> int:
    """Run the strict-typing gate; skip (exit 0) when mypy is unavailable."""
    try:
        import mypy  # noqa: F401
    except ImportError:
        print(
            "analyze: mypy is not installed; skipping the strict-typing gate "
            "(CI installs mypy and enforces it)"
        )
        return 0
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
    )
    return result.returncode


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analysis",
        description="repo-specific invariant checkers (+ gated mypy strict run)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files/directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed baseline file (must only shrink)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report raw findings without baseline comparison",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="FILE",
        help="write structured findings to FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule id and exit"
    )
    parser.add_argument(
        "--mypy",
        action="store_true",
        help="run the mypy strict-typing gate instead of the checkers",
    )
    args = parser.parse_args(argv)

    if args.mypy:
        return run_mypy_gate()

    checkers = default_checkers()
    if args.list_rules:
        for checker in checkers:
            for rule, description in sorted(checker.rules.items()):
                print(f"{rule}  [{checker.name}]  {description}")
        return 0

    paths = args.paths or DEFAULT_PATHS
    findings = run_checkers(checkers, paths)

    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(
                {
                    "paths": [str(p) for p in paths],
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
            + "\n",
            encoding="utf-8",
        )

    if args.update_baseline:
        Baseline.from_findings(findings).save(args.baseline)
        print(f"baseline updated: {len(findings)} finding(s) -> {args.baseline}")
        return 0

    if args.no_baseline:
        for finding in findings:
            print(finding.format())
        print(f"analyze: {len(findings)} finding(s)")
        return 1 if findings else 0

    baseline = Baseline.load(args.baseline)
    new, stale = baseline.compare(findings)
    for finding in new:
        print(finding.format())
    for fingerprint in stale:
        print(f"STALE baseline entry no longer fires: {fingerprint}")
    grandfathered = len(findings) - len(new)
    print(
        f"analyze: {len(findings)} finding(s) "
        f"({len(new)} new, {grandfathered} baselined), "
        f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
    )
    if new:
        print(
            "new findings must be fixed or justified with an "
            "# analyze: allow-<tag>(reason) comment — the baseline only shrinks"
        )
        return 1
    if stale:
        print(
            "the baseline must only shrink: remove the resolved entries "
            f"from {args.baseline}"
        )
        return 1
    print("analyze: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
