"""Resource-lifecycle checker: shared memory and group futures close cleanly.

The multiprocess executor moves model state through
``multiprocessing.shared_memory`` arenas and hands out
:class:`~repro.parallel.executor.GroupFuture` handles to arena slots.
Leaked segments survive the process (``/dev/shm`` fills up across a
sweep); an unreleased future pins an arena slot and deadlocks the
pipelined event loop once ``max_inflight`` slots are in flight.

Rules (module-granular heuristics — the structural property is "every
create has a matching release *somewhere on every path*", which the
fixtures pin down and code review enforces in detail):

``LIFE001``
    A module creates ``SharedMemory(create=True)`` but never calls both
    ``.close()`` and ``.unlink()``.
``LIFE002``
    A module attaches to an existing segment (``SharedMemory(name=...)``)
    but never calls ``.close()``.
``LIFE003``
    A ``submit_group(...)`` result is dropped: called as a bare
    expression statement, or bound to a name that is never used again in
    the same scope (so ``.result()``/``.release()``/``.discard()`` can
    never run).

Escape hatch: ``# analyze: allow-lifecycle(reason)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import Checker, Finding, Module
from .walk import CallSite, dotted_name, iter_calls

__all__ = ["ResourceLifecycleChecker"]


def _is_shared_memory_call(site: CallSite) -> bool:
    name = site.func_name
    return name is not None and name.split(".")[-1] == "SharedMemory"


def _creates(site: CallSite) -> bool:
    for keyword in site.node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return not (
                isinstance(value, ast.Constant) and value.value is False
            )
    return False


class ResourceLifecycleChecker(Checker):
    """LIFE001-LIFE003: arena create/close/unlink and future release."""

    name = "resource-lifecycle"
    rules = {
        "LIFE001": "SharedMemory(create=True) without close()+unlink() in module",
        "LIFE002": "SharedMemory attach without close() in module",
        "LIFE003": "submit_group() future dropped without result/release/discard",
    }
    allow_tag = "lifecycle"

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: List[Finding] = []
        creates: List[CallSite] = []
        attaches: List[CallSite] = []
        released: Set[str] = set()
        for site in iter_calls(module.tree):
            if _is_shared_memory_call(site):
                (creates if _creates(site) else attaches).append(site)
            name = site.func_name
            if name is not None and name.split(".")[-1] in (
                "close",
                "unlink",
            ):
                released.add(name.split(".")[-1])

        for site in creates:
            missing = sorted({"close", "unlink"} - released)
            if missing and not module.allows(self.allow_tag, site.node, site.stmt):
                findings.append(
                    module.finding(
                        "LIFE001",
                        site.node,
                        "SharedMemory(create=True) here but the module never "
                        f"calls {' / '.join('.' + m + '()' for m in missing)}",
                        "release the segment on every path (try/finally or a "
                        "close() method covering error paths)",
                    )
                )
        if "close" not in released:
            for site in attaches:
                if not module.allows(self.allow_tag, site.node, site.stmt):
                    findings.append(
                        module.finding(
                            "LIFE002",
                            site.node,
                            "SharedMemory attach here but the module never "
                            "calls .close()",
                            "close attached segments when the view is dropped",
                        )
                    )

        findings.extend(self._check_futures(module))
        return findings

    # ------------------------------------------------------------------
    def _check_futures(self, module: Module) -> List[Finding]:
        findings: List[Finding] = []
        for scope in self._function_scopes(module.tree):
            findings.extend(self._check_scope_futures(module, scope))
        return findings

    @staticmethod
    def _function_scopes(tree: ast.Module) -> List[ast.AST]:
        scopes: List[ast.AST] = [tree]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        return scopes

    def _check_scope_futures(
        self, module: Module, scope: ast.AST
    ) -> List[Finding]:
        """Flag dropped ``submit_group`` results within one function body."""
        body = scope.body if hasattr(scope, "body") else []
        statements = self._flatten(body)
        findings: List[Finding] = []
        bound: List[Tuple[str, ast.stmt, ast.Call]] = []
        uses: Dict[str, int] = {}
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            submit = self._submit_call(stmt)
            if submit is not None:
                if isinstance(stmt, ast.Expr):
                    if not module.allows(self.allow_tag, submit, stmt):
                        findings.append(
                            module.finding(
                                "LIFE003",
                                submit,
                                "submit_group(...) result dropped (bare "
                                "expression): the arena slot can never be "
                                "released",
                                "bind the GroupFuture and call result()/"
                                "release()/discard() on every path",
                            )
                        )
                    continue
                target = self._single_name_target(stmt)
                if target is not None:
                    bound.append((target, stmt, submit))
                    continue
            # Count every other Name load/store in the statement as a use.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name):
                    uses[node.id] = uses.get(node.id, 0) + 1
        for name, stmt, submit in bound:
            if uses.get(name, 0) == 0 and not module.allows(
                self.allow_tag, submit, stmt
            ):
                findings.append(
                    module.finding(
                        "LIFE003",
                        submit,
                        f"GroupFuture bound to {name!r} is never used again: "
                        "result()/release()/discard() can never run",
                        "consume or explicitly discard the future",
                    )
                )
        return findings

    @staticmethod
    def _flatten(body: List[ast.stmt]) -> List[ast.stmt]:
        """All statements in a function body, without descending into
        nested function definitions (they are separate scopes)."""
        out: List[ast.stmt] = []
        stack = list(body)
        while stack:
            stmt = stack.pop(0)
            out.append(stmt)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, (ast.excepthandler, ast.withitem)):
                    stack.extend(
                        sub
                        for sub in ast.iter_child_nodes(child)
                        if isinstance(sub, ast.stmt)
                    )
        return out

    @staticmethod
    def _submit_call(stmt: ast.stmt) -> Optional[ast.Call]:
        value = getattr(stmt, "value", None)
        if isinstance(value, ast.Call):
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] == "submit_group":
                return value
        return None

    @staticmethod
    def _single_name_target(stmt: ast.stmt) -> Optional[str]:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                return target.id
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            return stmt.target.id
        return None
