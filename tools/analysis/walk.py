"""Shared AST-walking utilities for the checkers."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["dotted_name", "import_map", "iter_calls", "CallSite"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Alias -> fully qualified origin for every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    shuffle as sh`` maps ``sh -> random.shuffle``.  Relative imports keep
    their leading dots (``from ..core import x`` maps ``x -> ..core.x``).
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{prefix}.{alias.name}"
    return mapping


class CallSite:
    """A call expression with its enclosing statement and scope qualname."""

    def __init__(self, node: ast.Call, stmt: ast.stmt, qualname: str) -> None:
        self.node = node
        self.stmt = stmt
        self.qualname = qualname  # "" at module level, else "Class.method" etc.

    @property
    def func_name(self) -> Optional[str]:
        return dotted_name(self.node.func)


def iter_calls(tree: ast.Module) -> Iterator[CallSite]:
    """Every call, with its *innermost* enclosing statement and the dotted
    qualname of the function/class scope it executes in ("" = module level).
    """
    for stmt in tree.body:
        yield from _visit_stmt(stmt, scope=())


def _visit_stmt(stmt: ast.stmt, scope: Tuple[str, ...]) -> Iterator[CallSite]:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        # Decorators and argument defaults evaluate in the enclosing scope.
        outer: List[ast.expr] = list(stmt.decorator_list)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            outer.extend(stmt.args.defaults)
            outer.extend(d for d in stmt.args.kw_defaults if d is not None)
        for expr in outer:
            yield from _calls_in_expr(expr, stmt, scope)
        for child in stmt.body:
            yield from _visit_stmt(child, scope + (stmt.name,))
        return
    # Expressions attached directly to this statement (tests, targets,
    # values, iterables, with-items, ...) belong to it; nested statement
    # bodies recurse so each call reports its innermost statement.
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            yield from _visit_stmt(child, scope)
        elif isinstance(child, (ast.excepthandler, ast.withitem)):
            for sub in ast.iter_child_nodes(child):
                if isinstance(sub, ast.stmt):
                    yield from _visit_stmt(sub, scope)
                else:
                    yield from _calls_in_expr(sub, stmt, scope)
        else:
            yield from _calls_in_expr(child, stmt, scope)


def _calls_in_expr(
    node: ast.AST, stmt: ast.stmt, scope: Tuple[str, ...]
) -> Iterator[CallSite]:
    # Expressions cannot contain statements (lambda bodies are expressions),
    # so a plain walk is safe here.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield CallSite(sub, stmt, ".".join(scope))
