"""Hot-path allocation checker: O(1) per-round allocation, by construction.

The batched engine's per-round cost model (see ``docs/PERFORMANCE.md``)
assumes the inner kernels and the event-loop bodies never allocate fresh
arrays: buffers are bound once per geometry, aggregation writes into
trainer-owned scratch, group stacks recycle through the population pool.
A stray ``np.zeros`` in a kernel silently turns O(1) per-round allocation
into O(rounds x q) garbage churn — invisible to correctness tests and only
caught by the XL RSS budget long after the fact.

``HOT_PATHS`` declares the audited set: for each file, the dotted scope
qualnames (``Class.method``) whose bodies must not allocate.  ``"*"``
audits every scope in the file.

Rule
----
``ALLOC001``
    Allocating NumPy call (``np.zeros/empty/ones/full/array/copy/
    concatenate/stack/...``, the ``*_like`` variants) or an ``.copy()``
    method call inside a declared hot path.

Escape hatch: ``# analyze: allow-alloc(reason)`` — used for documented
one-time geometry binds, lazy first-touch promotions and fallback paths.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from .core import Checker, Finding, Module
from .walk import CallSite, import_map, iter_calls

__all__ = ["HotPathAllocationChecker", "HOT_PATHS", "ALLOCATING_CALLS"]

#: NumPy-namespace callables that materialize a fresh array.
ALLOCATING_CALLS: Set[str] = {
    "zeros",
    "empty",
    "ones",
    "full",
    "array",
    "copy",
    "concatenate",
    "stack",
    "vstack",
    "hstack",
    "dstack",
    "column_stack",
    "tile",
    "repeat",
    "empty_like",
    "zeros_like",
    "ones_like",
    "full_like",
    "arange",
    "linspace",
    "eye",
    "identity",
    "fromiter",
    "frombuffer",
}

#: The declared hot-path set: repo-relative file -> scope qualnames whose
#: bodies must stay allocation-free.  Kept in lockstep with the per-round
#: cost model documented in docs/PERFORMANCE.md and the "Checked
#: invariants" section of docs/ARCHITECTURE.md.
HOT_PATHS: Dict[str, Set[str]] = {
    # Batched per-step kernels: geometry buffers bind once (in bind()/
    # _buffers_for()/first-touch branches, annotated), the steady-state
    # forward/backward/step bodies write in place.
    "src/repro/nn/batched.py": {
        "_BatchedDense.forward",
        "_BatchedDense.backward",
        "_BatchedDense.sgd_step",
        "_BatchedDense.scale_params",
        "_BatchedDense.add_offset",
        "_BatchedReLU.forward",
        "_BatchedReLU.backward",
        "_BatchedFlatten.forward",
        "_BatchedFlatten.backward",
        "_BatchedConv2D.forward",
        "_BatchedConv2D.backward",
        "_BatchedConv2D.sgd_step",
        "_BatchedConv2D.scale_params",
        "_BatchedConv2D.add_offset",
        "_BatchedMaxPool2D.forward",
        "_BatchedMaxPool2D.backward",
        "_BatchedDropout.forward",
        "_BatchedDropout.backward",
    },
    # The grouped event loop: one commit per round, stacks from the pool.
    "src/repro/fl/grouped.py": {
        "GroupedAsyncTrainer.run",
        "GroupedAsyncTrainer._dispatch_group",
        "GroupedAsyncTrainer._base_of",
        "GroupedAsyncTrainer._commit_base",
        "GroupedAsyncTrainer._group_stack",
        "GroupedAsyncTrainer._submit_speculation",
        "GroupedAsyncTrainer.group_compute_time",
    },
    # The aggregation path: alpha @ A into trainer-owned buffers.
    "src/repro/fl/base.py": {
        "BaseTrainer.exact_group_update",
        "BaseTrainer.aircomp_group_update",
        "BaseTrainer._commit_global",
        "BaseTrainer._group_stack",
        "BaseTrainer._release_stack",
    },
    # Server-side protocol transitions: O(1) per event.
    "src/repro/core/mechanism.py": {
        "GroupAsyncScheduler.receive_ready",
        "GroupAsyncScheduler.receive_group_ready",
        "GroupAsyncScheduler.complete_aggregation",
        "GroupAsyncScheduler.abort_group",
    },
}

_HINT = (
    "write into a pre-bound buffer (out=/np.copyto), recycle through the "
    "pool, or justify with # analyze: allow-alloc(reason)"
)


class HotPathAllocationChecker(Checker):
    """ALLOC001: no fresh-array calls inside the declared hot paths."""

    name = "hot-path-allocation"
    rules = {
        "ALLOC001": "allocating NumPy call inside a declared hot path",
    }
    allow_tag = "alloc"

    def __init__(self, hot_paths: Optional[Dict[str, Set[str]]] = None) -> None:
        self.hot_paths = HOT_PATHS if hot_paths is None else hot_paths

    def check_module(self, module: Module) -> Iterable[Finding]:
        scopes = self.hot_paths.get(module.rel)
        if not scopes:
            return []
        imports = import_map(module.tree)
        numpy_aliases = {a for a, o in imports.items() if o == "numpy"}
        findings: List[Finding] = []
        for site in iter_calls(module.tree):
            if not self._in_hot_scope(site.qualname, scopes):
                continue
            reason = self._allocation(site, numpy_aliases)
            if reason is None:
                continue
            if module.allows(self.allow_tag, site.node, site.stmt):
                continue
            findings.append(
                module.finding(
                    "ALLOC001",
                    site.node,
                    f"{reason} allocates inside hot path {site.qualname}",
                    _HINT,
                )
            )
        return findings

    @staticmethod
    def _in_hot_scope(qualname: str, scopes: Set[str]) -> bool:
        if "*" in scopes:
            return bool(qualname)
        # A nested scope (closure, comprehension helper) inherits the
        # hot-path property of its enclosing function.
        return any(
            qualname == scope or qualname.startswith(scope + ".")
            for scope in scopes
        )

    @staticmethod
    def _allocation(site: CallSite, numpy_aliases: Set[str]) -> Optional[str]:
        name = site.func_name
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in numpy_aliases
                and parts[1] in ALLOCATING_CALLS
            ):
                return f"{name}(...)"
        # ``.copy()`` method call — a fresh array regardless of receiver
        # (covers chained receivers like ``np.asarray(v).copy()``).
        func = site.node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "copy"
            and not (name and name.split(".")[0] in numpy_aliases)
        ):
            return f"{name or '<expr>.copy'}(...)"
        return None
