PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast bench bench-quick

test:            ## full tier-1 suite (tests/ + benchmarks/)
	$(PYTHON) -m pytest -x -q

test-fast:       ## unit/integration tests only
	$(PYTHON) -m pytest tests -q

bench:           ## perf suite (scalar reference vs vectorized engine), appends to BENCH_perf_v1.json
	$(PYTHON) -m repro.experiments bench --label perf_v1

bench-quick:     ## smaller/faster perf smoke run
	$(PYTHON) -m repro.experiments bench --label perf_v1 --quick
