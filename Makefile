PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast test-ci lint analyze bench bench-quick bench-xl bench-xl-smoke docs-check sweep-smoke sweep-report sweep-resume-smoke chaos-smoke convergence-smoke ci

test:            ## full tier-1 suite (tests/ + benchmarks/)
	$(PYTHON) -m pytest -x -q

test-fast:       ## unit/integration tests only
	$(PYTHON) -m pytest tests -q

test-ci:         ## the exact pytest invocation of the CI test matrix
	$(PYTHON) -m pytest -x -q -m "not slow"

lint:            ## ruff static checks, same as the CI lint job (pip install ruff)
	$(PYTHON) -m ruff check .

analyze:         ## repo-specific invariant checkers (RNG discipline, hot-path allocation, registry/lifecycle) + the mypy strict gate (skipped locally when mypy is absent; the CI analyze job enforces it).  Writes results/analysis_findings.json
	$(PYTHON) -m tools.analysis --json results/analysis_findings.json
	$(PYTHON) -m tools.analysis --mypy

bench:           ## perf suite (scalar reference vs vectorized engine), appends to BENCH_perf_v1.json
	$(PYTHON) -m repro.experiments bench --label perf_v1

bench-quick:     ## smaller/faster perf smoke run (the CI bench-smoke job); writes BENCH_smoke.json (gitignored) so the committed BENCH_perf_v1.json trajectory stays curated
	$(PYTHON) -m repro.experiments bench --label smoke --quick

bench-xl:        ## population-scale tier only (10k + 100k workers), appends grouped_round_xl rows to BENCH_perf_v1.json
	$(PYTHON) -m repro.experiments bench --xl-only --label perf_v1

bench-xl-smoke:  ## the CI xl-smoke job: 10k-worker tier in a fresh subprocess with a 4 GB peak-RSS budget; writes BENCH_xl_smoke.json (gitignored) + results/bench_xl_smoke.jsonl
	$(PYTHON) -m repro.experiments bench --xl-only --xl-workers 10000 \
		--xl-rss-budget-mb 4096 --xl-jsonl results/bench_xl_smoke.jsonl \
		--label xl_smoke

docs-check:      ## link-check docs/*.md + README, run doctest on their fenced examples, and check docs/API.md covers every repro.fl/parallel/core/registry/scenario/sweep export (the CI docs job)
	$(PYTHON) tools/check_docs.py

sweep-smoke:     ## 2-point scenario grid on the synthetic dataset (the CI sweep-smoke job); streams per-run summaries to results/sweep_smoke.jsonl
	$(PYTHON) -m repro.experiments sweep examples/sweep_smoke.json --output results/sweep_smoke.jsonl

sweep-report:    ## render results/sweep_smoke.jsonl into a consolidated markdown report (run `make sweep-smoke` first)
	$(PYTHON) -m repro.experiments report results/sweep_smoke.jsonl --output results/sweep_report.md

sweep-resume-smoke: ## the CI sweep-resume job: kill/resume durability tests, then a cached sweep relaunched with --resume (reuses every completed point) + consolidated report
	$(PYTHON) -m pytest -q -m sweep_resume
	$(PYTHON) -m repro.experiments sweep examples/sweep_smoke.json \
		--output results/sweep_resume_smoke.jsonl --cache-dir results/sweep_cache
	$(PYTHON) -m repro.experiments sweep examples/sweep_smoke.json \
		--output results/sweep_resume_smoke.jsonl --cache-dir results/sweep_cache \
		--resume --report results/sweep_resume_report.md

chaos-smoke:     ## fault-injection smoke (the CI chaos job): chaos-marked tests + a seeded dropout sweep; streams per-run fault counters to results/chaos_smoke.jsonl
	$(PYTHON) -m pytest -q -m chaos
	$(PYTHON) -m repro.experiments sweep examples/chaos_smoke.json --output results/chaos_smoke.jsonl

convergence-smoke: ## mechanism-family convergence smoke (the CI convergence job): convergence-marked trajectory tests + the mechanism_convergence bench tier on a tiny grid; writes results/convergence_smoke.jsonl + BENCH_convergence_smoke.json (gitignored)
	$(PYTHON) -m pytest -q -m convergence
	$(PYTHON) -m repro.experiments bench --convergence-only --quick \
		--convergence-jsonl results/convergence_smoke.jsonl \
		--label convergence_smoke

ci: lint analyze test-ci bench-quick bench-xl-smoke docs-check sweep-smoke sweep-resume-smoke chaos-smoke convergence-smoke  ## reproduce the full CI pipeline locally
