"""Setup shim so editable installs work without the `wheel` package.

The environment has no network access and no `wheel` distribution, so the
PEP-517 editable path (which needs bdist_wheel) cannot run; `pip install -e .`
falls back to this legacy setup.py when invoked with --no-use-pep517.
"""
from setuptools import setup

setup()
