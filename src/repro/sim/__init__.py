"""Discrete-event simulation substrate: events, engine, latency models."""

from .events import Event, EventType, ExecuteMessage, ReadyMessage
from .engine import SimulationEngine, SimulationError
from .latency import HeterogeneityModel, LatencyTable

__all__ = [
    "Event",
    "EventType",
    "ReadyMessage",
    "ExecuteMessage",
    "SimulationEngine",
    "SimulationError",
    "HeterogeneityModel",
    "LatencyTable",
]
