"""Discrete-event simulation substrate: events, engine, latency and fault models."""

from .events import Event, EventType, ExecuteMessage, ReadyMessage
from .engine import SimulationEngine, SimulationError
from .latency import HeterogeneityModel, LatencyTable
from .clientstate import (
    AlwaysOnModel,
    BernoulliAvailability,
    ClientStateModel,
    CyclicAvailability,
    DropoutRejoinModel,
    LognormalAvailability,
    PartialCompletionModel,
)

__all__ = [
    "Event",
    "EventType",
    "ReadyMessage",
    "ExecuteMessage",
    "SimulationEngine",
    "SimulationError",
    "HeterogeneityModel",
    "LatencyTable",
    "ClientStateModel",
    "AlwaysOnModel",
    "BernoulliAvailability",
    "LognormalAvailability",
    "CyclicAvailability",
    "DropoutRejoinModel",
    "PartialCompletionModel",
]
