"""Event records for the discrete-event federated-learning simulator.

Algorithm 1 of the paper is a message-driven protocol: workers send READY
messages after finishing local training, the parameter server replies with
EXECUTE once every member of a group is ready, and the group then performs
one over-the-air aggregation.  The simulator represents each of these steps
as a timestamped event so the trainers can replay the protocol in virtual
time without any real parallelism (the paper itself simulates worker
heterogeneity the same way).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["EventType", "Event", "ReadyMessage", "ExecuteMessage"]


class EventType(enum.Enum):
    """Kinds of events the simulator schedules."""

    WORKER_READY = "worker_ready"          # worker finished local training
    GROUP_EXECUTE = "group_execute"        # PS triggers over-the-air aggregation
    AGGREGATION_DONE = "aggregation_done"  # global model updated & broadcast
    CUSTOM = "custom"


_event_counter = itertools.count()


@dataclass(order=True)
class Event:
    """A timestamped event.

    Ordering is by ``(time, sequence)`` so that simultaneous events are
    processed in the order they were scheduled (deterministic replay).
    """

    time: float
    sequence: int = field(compare=True)
    type: EventType = field(compare=False, default=EventType.CUSTOM)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)

    @classmethod
    def create(
        cls, time: float, type: EventType, **payload: Any
    ) -> "Event":
        if time < 0:
            raise ValueError("event time must be non-negative")
        return cls(time=time, sequence=next(_event_counter), type=type, payload=dict(payload))


@dataclass
class ReadyMessage:
    """READY message from a worker to the parameter server (Alg. 1, line 8)."""

    worker_id: int
    group_id: int
    sent_at: float


@dataclass
class ExecuteMessage:
    """EXECUTE message from the parameter server to a group (Alg. 1, line 23)."""

    group_id: int
    round_index: int
    sent_at: float
