"""Worker compute-latency model and edge-heterogeneity simulation.

Section VI-A2 of the paper: the 100 virtual workers run on one workstation,
so their raw local-training times ``l̂_i`` are roughly equal; heterogeneity
is injected by a per-worker scaling factor ``κ_i`` drawn uniformly from
``[1, 10]``, giving the simulated local-training time ``l_i = κ_i · l̂_i``.
These ``l_i`` drive the READY-message times in the simulator and hence the
whole time axis of the evaluation.

The base time ``l̂_i`` can optionally be *measured* from the actual NumPy
training step so that larger models (CNN, MiniVGG) have proportionally
longer simulated rounds, as they would on real hardware.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..registry import register as _register

__all__ = [
    "HeterogeneityModel",
    "LatencyTable",
    "build_uniform_latency",
    "build_homogeneous_latency",
]


@dataclass
class HeterogeneityModel:
    """Per-worker compute-speed scaling factors κ_i ~ U[kappa_min, kappa_max]."""

    num_workers: int
    kappa_min: float = 1.0
    kappa_max: float = 10.0
    seed: int = 0
    _kappa: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.kappa_min <= 0:
            raise ValueError("kappa_min must be positive")
        if self.kappa_max < self.kappa_min:
            raise ValueError("kappa_max must be >= kappa_min")
        rng = np.random.default_rng(self.seed)
        self._kappa = rng.uniform(
            self.kappa_min, self.kappa_max, size=self.num_workers
        )

    @property
    def kappa(self) -> np.ndarray:
        """The per-worker scaling factors (copy)."""
        return self._kappa.copy()

    def scale(self, worker_id: int) -> float:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"invalid worker id {worker_id}")
        return float(self._kappa[worker_id])


@dataclass
class LatencyTable:
    """Per-worker simulated local-training times ``l_i = κ_i · l̂_i``.

    Parameters
    ----------
    base_times:
        The homogeneous raw times ``l̂_i`` (seconds per local update).  A
        scalar means every worker has the same base time, matching the
        paper's single-workstation setup.
    heterogeneity:
        The κ model.  If omitted, κ_i = 1 for all workers (homogeneous).
    jitter_std:
        Optional per-round multiplicative jitter (log-normal-ish, clipped)
        so that repeated rounds are not perfectly identical.  The paper's
        model has no jitter; it is off by default.
    """

    num_workers: int
    base_time: float = 1.0
    heterogeneity: Optional[HeterogeneityModel] = None
    jitter_std: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.base_time <= 0:
            raise ValueError("base_time must be positive")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")
        if (
            self.heterogeneity is not None
            and self.heterogeneity.num_workers != self.num_workers
        ):
            raise ValueError("heterogeneity model has a different worker count")
        # κ_i · l̂_i is deterministic: compute it once.  The per-call copies
        # of the κ array used to make per-round group time computations
        # O(N²); every read below goes through this cache instead.
        if self.heterogeneity is None:
            kappa = np.ones(self.num_workers)
        else:
            kappa = self.heterogeneity.kappa
        self._nominal = kappa * self.base_time

    # ------------------------------------------------------------------
    @property
    def nominal(self) -> np.ndarray:
        """The deterministic per-worker times ``l_i`` as a read-only view.

        This is the array the population layer references for its
        :class:`~repro.core.population.WorkerStateTable` ``latencies``
        field — zero-copy, shared with the table.
        """
        view = self._nominal.view()
        view.flags.writeable = False
        return view

    def nominal_times(self) -> np.ndarray:
        """The deterministic per-worker times ``l_i`` (used by Alg. 3)."""
        return self._nominal.copy()

    def nominal_time(self, worker_id: int) -> float:
        """Deprecated per-worker accessor; use :attr:`nominal` instead.

        Per-worker scalar indexing is the pattern the population refactor
        retires — at 10k+ workers the call overhead dominates.  The shim
        forwards to the cached array and emits a :class:`DeprecationWarning`.
        """
        warnings.warn(
            "LatencyTable.nominal_time(worker_id) is deprecated; read the "
            "LatencyTable.nominal array (or WorkerStateTable.latencies) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"invalid worker id {worker_id}")
        return float(self._nominal[worker_id])

    def spread(self) -> float:
        """Δl = max_i l_i − min_i l_i (the scale used in constraint 36d)."""
        times = self._nominal
        return float(times.max() - times.min())

    def sample_time(self, worker_id: int, round_index: int) -> float:
        """Local-training time of one worker in one round (with jitter if set)."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"invalid worker id {worker_id}")
        nominal = float(self._nominal[worker_id])
        if self.jitter_std == 0.0:
            return nominal
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, worker_id, round_index, 0x1A7])
        )
        factor = float(np.clip(1.0 + rng.normal(0.0, self.jitter_std), 0.2, 5.0))
        return nominal * factor

    def sample_times(
        self, worker_ids: Union[Sequence[int], np.ndarray], round_index: int = 0
    ) -> np.ndarray:
        """Vectorized :meth:`sample_time` over a group of workers.

        Identical values to calling :meth:`sample_time` per worker (the
        jittered path uses the same per-worker seeded draw).  Accepts an
        int64 member array and bounds-checks it without a Python loop —
        the per-dispatch hot path of the XL event loop.
        """
        ids = np.asarray(worker_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError("worker_ids must be one-dimensional")
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_workers):
            bad = ids[(ids < 0) | (ids >= self.num_workers)][0]
            raise ValueError(f"invalid worker id {bad}")
        if self.jitter_std == 0.0:
            return self._nominal[ids]
        return np.array(
            [self.sample_time(w, round_index) for w in ids.tolist()]
        )

    def group_completion_time(
        self, worker_ids: Union[Sequence[int], np.ndarray], round_index: int = 0
    ) -> float:
        """Time for a whole group to finish local training (slowest member)."""
        ids = np.asarray(worker_ids, dtype=np.int64)
        if ids.size == 0:
            raise ValueError("group must contain at least one worker")
        return float(self.sample_times(ids, round_index).max())


# ----------------------------------------------------------------------
# Registry-backed latency/heterogeneity builders (kind "latency")
# ----------------------------------------------------------------------
@_register("latency", "uniform")
def build_uniform_latency(
    num_workers: int,
    base_time: float = 1.0,
    kappa_min: float = 1.0,
    kappa_max: float = 10.0,
    jitter_std: float = 0.0,
    heterogeneity_seed: int = 1,
    seed: int = 2,
) -> LatencyTable:
    """The paper's heterogeneity model: ``l_i = κ_i · l̂_i``, κ ~ U[min, max].

    ``heterogeneity_seed`` seeds the κ draw and ``seed`` the (optional)
    per-round jitter, matching the seed discipline of
    :func:`repro.experiments.build_experiment` (``seed+1`` / ``seed+2``).
    """
    heterogeneity = HeterogeneityModel(
        num_workers=num_workers,
        kappa_min=kappa_min,
        kappa_max=kappa_max,
        seed=heterogeneity_seed,
    )
    return LatencyTable(
        num_workers=num_workers,
        base_time=base_time,
        heterogeneity=heterogeneity,
        jitter_std=jitter_std,
        seed=seed,
    )


@_register("latency", "homogeneous")
def build_homogeneous_latency(
    num_workers: int,
    base_time: float = 1.0,
    jitter_std: float = 0.0,
    seed: int = 2,
    **_ignored,
) -> LatencyTable:
    """κ_i = 1 for all workers: every worker trains at the same speed.

    Accepts (and ignores) the κ-range arguments of the ``"uniform"``
    builder so the two are interchangeable in a scenario's timing section.
    """
    return LatencyTable(
        num_workers=num_workers,
        base_time=base_time,
        heterogeneity=None,
        jitter_std=jitter_std,
        seed=seed,
    )
