"""Per-worker device-realism state models (registry kind ``"clientstate"``).

The simulator historically assumed every worker is always up and completes
every local round — the best case for the grouping-asynchronous machinery
the paper is about, and exactly the case that never stresses it.  Real
edge fleets are not like that: devices go offline, drop mid-round and
return partial work (the AirComp surveys treat dropout and partial
participation as first-class design axes, and FLGo's ``system_simulator``
models availability/completeness explicitly).  This module provides that
missing layer as a family of *client-state models*:

=================  =====================================================
registry name      behaviour
=================  =====================================================
``always-on``      the legacy assumption: never unavailable, never drops
``bernoulli``      i.i.d. per-round availability with probability ``p``
``lognormal``      per-worker availability rates drawn from a log-normal
                   (a few highly available workers, a long flaky tail)
``cyclic``         sinusoidal availability (diurnal duty cycles), with a
                   per-worker phase offset
``dropout-rejoin`` workers drop *mid-round* and stay unavailable for a
                   fixed number of dispatches before rejoining
``partial``        workers occasionally return only a fraction of their
                   local work
=================  =====================================================

A model answers three questions about a worker, all evaluated by the
grouped event loop in the parent process (see
:class:`~repro.fl.grouped.GroupedAsyncTrainer`):

* :meth:`~ClientStateModel.availability_mask` — is the worker reachable
  at group-dispatch time?  Unavailable workers sit the round out.
* :meth:`~ClientStateModel.survival_mask` — did a dispatched worker
  survive to the aggregation, or did it drop mid-round?  The group
  degrades gracefully by renormalizing its aggregation weights over the
  survivors (quorum permitting).
* :meth:`~ClientStateModel.completion_fractions` — how much of the local
  round did a surviving worker complete?  Fractions below 1 shrink the
  worker's local update toward the group's base model.

Every draw comes from a dedicated RNG stream seeded by
``(seed, worker_id, round_index, sequence, purpose-tag)``, where
``sequence`` is the caller-supplied per-group dispatch counter.  Two runs
of the same scenario therefore produce *exactly* the same fault
trajectory, and draws for different workers / dispatches never share
state.  The ``always-on`` model short-circuits to "no faults" (its
:attr:`~ClientStateModel.is_always_on` flag lets the event loop skip the
fault path entirely, keeping histories bit-identical to a run without any
client-state model).
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..registry import register as _register

__all__ = [
    "ClientStateModel",
    "AlwaysOnModel",
    "BernoulliAvailability",
    "LognormalAvailability",
    "CyclicAvailability",
    "DropoutRejoinModel",
    "PartialCompletionModel",
]

# Purpose tags mixed into the per-draw seed streams so availability,
# survival and completion draws of the same (worker, round, sequence)
# never collide.
_TAG_AVAILABLE = 0xA5A1
_TAG_SURVIVE = 0xD609
_TAG_FRACTION = 0xF2AC


class ClientStateModel:
    """Base class: an always-healthy fleet with hooks for fault injection.

    Subclasses override :meth:`available`, :meth:`survives` and/or
    :meth:`completion_fraction` (scalar, one worker at a time); the
    vectorized ``*_mask`` / ``*_fractions`` helpers the event loop calls
    are derived from them.  The base class implements mid-round dropout
    (``dropout_prob``) once so every availability model composes with it.

    Parameters
    ----------
    num_workers:
        Fleet size; must match the experiment's partition.
    seed:
        Base seed of the fault streams (a :class:`Scenario` passes
        ``seed + 4``, extending the established ``seed+1..seed+3``
        discipline of heterogeneity/jitter/channel).
    dropout_prob:
        Probability that a dispatched worker drops *mid-round* before
        the aggregation (0 disables mid-round dropout).
    """

    name = "base"
    #: ``True`` only for :class:`AlwaysOnModel`: lets the event loop skip
    #: the fault path entirely so default runs stay bit-identical.
    is_always_on = False

    def __init__(self, num_workers: int, seed: int = 0, dropout_prob: float = 0.0) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if not 0.0 <= dropout_prob <= 1.0:
            raise ValueError(
                f"dropout_prob must be in [0, 1], got {dropout_prob}"
            )
        self.num_workers = int(num_workers)
        self.seed = int(seed)
        self.dropout_prob = float(dropout_prob)

    # ------------------------------------------------------------------
    def _rng(self, worker_id: int, round_index: int, sequence: int, tag: int) -> np.random.Generator:
        """The dedicated stream for one (worker, round, dispatch, purpose) draw."""
        return np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, int(worker_id), int(round_index), int(sequence), tag]
            )
        )

    def _check_worker(self, worker_id: int) -> None:
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"invalid worker id {worker_id}")

    # ------------------------------------------------------------------
    # Scalar queries (override these)
    # ------------------------------------------------------------------
    def available(self, worker_id: int, round_index: int, sequence: int) -> bool:
        """Whether the worker is reachable when its group is dispatched."""
        self._check_worker(worker_id)
        return True

    def survives(self, worker_id: int, round_index: int, sequence: int) -> bool:
        """Whether a dispatched worker survives to the aggregation."""
        self._check_worker(worker_id)
        if self.dropout_prob == 0.0:
            return True
        rng = self._rng(worker_id, round_index, sequence, _TAG_SURVIVE)
        return bool(rng.random() >= self.dropout_prob)

    def completion_fraction(self, worker_id: int, round_index: int, sequence: int) -> float:
        """Fraction of the local round a surviving worker completed, in (0, 1]."""
        self._check_worker(worker_id)
        return 1.0

    # ------------------------------------------------------------------
    # Vectorized queries (what the event loop calls)
    # ------------------------------------------------------------------
    @staticmethod
    def _worker_list(worker_ids: Union[Sequence[int], np.ndarray]) -> List[int]:
        """Normalize a member list or int64 member array to Python ints.

        The grouped event loop passes the population layer's cached int64
        group arrays; converting once up front keeps every per-worker seed
        stream keyed by plain ints regardless of the caller's container.
        """
        return np.asarray(worker_ids, dtype=np.int64).tolist()

    def availability_mask(
        self, worker_ids: Union[Sequence[int], np.ndarray], round_index: int, sequence: int
    ) -> np.ndarray:
        """Boolean mask over ``worker_ids``: available at dispatch time."""
        return np.array(
            [
                self.available(w, round_index, sequence)
                for w in self._worker_list(worker_ids)
            ],
            dtype=bool,
        )

    def survival_mask(
        self, worker_ids: Union[Sequence[int], np.ndarray], round_index: int, sequence: int
    ) -> np.ndarray:
        """Boolean mask over ``worker_ids``: survived to the aggregation."""
        return np.array(
            [
                self.survives(w, round_index, sequence)
                for w in self._worker_list(worker_ids)
            ],
            dtype=bool,
        )

    def completion_fractions(
        self, worker_ids: Union[Sequence[int], np.ndarray], round_index: int, sequence: int
    ) -> np.ndarray:
        """Per-worker completed fraction of the local round, each in (0, 1]."""
        return np.array(
            [
                self.completion_fraction(w, round_index, sequence)
                for w in self._worker_list(worker_ids)
            ],
            dtype=np.float64,
        )


@_register("clientstate", "always-on")
class AlwaysOnModel(ClientStateModel):
    """The legacy assumption: every worker is always up and finishes every round."""

    name = "always-on"
    is_always_on = True

    def __init__(self, num_workers: int, seed: int = 0) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=0.0)


@_register("clientstate", "bernoulli")
class BernoulliAvailability(ClientStateModel):
    """I.i.d. per-dispatch availability: up with probability ``availability``."""

    name = "bernoulli"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        availability: float = 0.9,
        dropout_prob: float = 0.0,
    ) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=dropout_prob)
        if not 0.0 <= availability <= 1.0:
            raise ValueError(f"availability must be in [0, 1], got {availability}")
        self.availability = float(availability)

    def available(self, worker_id: int, round_index: int, sequence: int) -> bool:
        self._check_worker(worker_id)
        if self.availability >= 1.0:
            return True
        rng = self._rng(worker_id, round_index, sequence, _TAG_AVAILABLE)
        return bool(rng.random() < self.availability)


@_register("clientstate", "lognormal")
class LognormalAvailability(ClientStateModel):
    """Heavy-tailed per-worker availability (FLGo's log-normal model).

    Each worker draws a fixed rate ``x_i ~ LogNormal(0, sigma)`` once (from
    the model seed); its availability probability is ``x_i / max_j x_j``
    clipped to ``[floor, 1]``.  A few workers are nearly always up while a
    long tail is flaky — the typical shape of real device fleets.
    """

    name = "lognormal"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        sigma: float = 1.0,
        floor: float = 0.05,
        dropout_prob: float = 0.0,
    ) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=dropout_prob)
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if not 0.0 < floor <= 1.0:
            raise ValueError(f"floor must be in (0, 1], got {floor}")
        self.sigma = float(sigma)
        self.floor = float(floor)
        rates = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0x10F0])
        ).lognormal(mean=0.0, sigma=self.sigma, size=self.num_workers)
        self._probs = np.clip(rates / rates.max(), self.floor, 1.0)

    @property
    def availability_probs(self) -> np.ndarray:
        """The fixed per-worker availability probabilities (copy)."""
        return self._probs.copy()

    def available(self, worker_id: int, round_index: int, sequence: int) -> bool:
        self._check_worker(worker_id)
        rng = self._rng(worker_id, round_index, sequence, _TAG_AVAILABLE)
        return bool(rng.random() < self._probs[worker_id])


@_register("clientstate", "cyclic")
class CyclicAvailability(ClientStateModel):
    """Diurnal duty cycles: availability oscillates with the round index.

    The availability probability of worker ``i`` in round ``t`` is::

        p_i(t) = low + (high - low) · (1 + sin(2π(t/period + φ_i))) / 2

    with a per-worker phase ``φ_i ~ U[0, 1)`` drawn once from the model
    seed, so worker duty cycles are staggered rather than synchronized.
    """

    name = "cyclic"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        period: float = 24.0,
        low: float = 0.1,
        high: float = 0.9,
        dropout_prob: float = 0.0,
    ) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=dropout_prob)
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= low <= high <= 1.0:
            raise ValueError(
                f"need 0 <= low <= high <= 1, got low={low}, high={high}"
            )
        self.period = float(period)
        self.low = float(low)
        self.high = float(high)
        self._phases = np.random.default_rng(
            np.random.SeedSequence([self.seed, 0xC9C1])
        ).random(self.num_workers)

    def availability_probability(self, worker_id: int, round_index: int) -> float:
        """The deterministic duty-cycle probability ``p_i(t)``."""
        self._check_worker(worker_id)
        phase = self._phases[worker_id]
        wave = 0.5 * (1.0 + np.sin(2.0 * np.pi * (round_index / self.period + phase)))
        return float(self.low + (self.high - self.low) * wave)

    def available(self, worker_id: int, round_index: int, sequence: int) -> bool:
        p = self.availability_probability(worker_id, round_index)
        rng = self._rng(worker_id, round_index, sequence, _TAG_AVAILABLE)
        return bool(rng.random() < p)


@_register("clientstate", "dropout-rejoin")
class DropoutRejoinModel(ClientStateModel):
    """Mid-round dropout with a cool-down before the worker rejoins.

    A dispatched worker drops mid-round with probability ``dropout_prob``;
    once dropped it stays unavailable for the next ``rejoin_after``
    dispatches of its group before becoming eligible again.  The cool-down
    is tracked per worker in dispatch-sequence units, so the model is
    *stateful*: queries must arrive in the event loop's deterministic
    order (which the grouped trainer guarantees), and two runs of the same
    scenario replay the same trajectory.
    """

    name = "dropout-rejoin"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        dropout_prob: float = 0.1,
        rejoin_after: int = 3,
    ) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=dropout_prob)
        if rejoin_after < 1:
            raise ValueError(f"rejoin_after must be >= 1, got {rejoin_after}")
        self.rejoin_after = int(rejoin_after)
        # Dispatch-sequence number until which each worker is down (-1: up).
        self._down_until = np.full(num_workers, -1, dtype=np.int64)

    def available(self, worker_id: int, round_index: int, sequence: int) -> bool:
        self._check_worker(worker_id)
        return bool(sequence > self._down_until[worker_id])

    def survives(self, worker_id: int, round_index: int, sequence: int) -> bool:
        alive = super().survives(worker_id, round_index, sequence)
        if not alive:
            self._down_until[worker_id] = sequence + self.rejoin_after
        return alive


@_register("clientstate", "partial")
class PartialCompletionModel(ClientStateModel):
    """Workers occasionally return only part of their local round.

    With probability ``partial_prob`` a surviving worker's local update is
    scaled back to a completed fraction ``f ~ U[min_fraction, 1)``: the
    event loop blends its returned model toward the group's base vector,
    ``w ← base + f · (w − base)`` — the straggler finished only ``f`` of
    its local work.  Composes with mid-round dropout via ``dropout_prob``.
    """

    name = "partial"

    def __init__(
        self,
        num_workers: int,
        seed: int = 0,
        partial_prob: float = 0.5,
        min_fraction: float = 0.3,
        dropout_prob: float = 0.0,
    ) -> None:
        super().__init__(num_workers, seed=seed, dropout_prob=dropout_prob)
        if not 0.0 <= partial_prob <= 1.0:
            raise ValueError(f"partial_prob must be in [0, 1], got {partial_prob}")
        if not 0.0 < min_fraction <= 1.0:
            raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
        self.partial_prob = float(partial_prob)
        self.min_fraction = float(min_fraction)

    def completion_fraction(self, worker_id: int, round_index: int, sequence: int) -> float:
        self._check_worker(worker_id)
        if self.partial_prob == 0.0:
            return 1.0
        rng = self._rng(worker_id, round_index, sequence, _TAG_FRACTION)
        if rng.random() >= self.partial_prob:
            return 1.0
        return float(self.min_fraction + (1.0 - self.min_fraction) * rng.random())


def model_names() -> List[str]:
    """Registered client-state model names (see :mod:`repro.registry`)."""
    from .. import registry

    return registry.names("clientstate")
