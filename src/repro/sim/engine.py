"""A small discrete-event simulation engine.

The federated trainers in :mod:`repro.fl` advance a *virtual clock* rather
than wall-clock time: worker local-training durations, OMA upload times and
AirComp symbol times are all model quantities (Section V-A of the paper),
so the reported "training time" axes of Figs. 3-6, 8 and 10 are sums of
these virtual durations.  The engine is a plain priority queue of
:class:`~repro.sim.events.Event` objects plus a monotonically advancing
clock, with handlers registered per event type.

The design deliberately avoids threads/processes: the paper runs 100
"virtual workers" on one workstation and injects artificial waiting to
simulate heterogeneity; a deterministic event queue reproduces exactly the
same schedule while being reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from .events import Event, EventType

__all__ = ["SimulationEngine", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly (e.g. time reversal)."""


class SimulationEngine:
    """Priority-queue driven discrete-event simulator.

    Typical usage::

        engine = SimulationEngine()
        engine.schedule(Event.create(t, EventType.WORKER_READY, worker_id=3))
        engine.on(EventType.WORKER_READY, handler)
        engine.run_until(lambda: done)

    Handlers receive ``(engine, event)`` and may schedule further events.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now: float = 0.0
        self._handlers: Dict[EventType, List[Callable[["SimulationEngine", Event], None]]] = {}
        self._processed: int = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still in the queue."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events processed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def schedule(self, event: Event) -> Event:
        """Add an event to the queue.  Its time must not precede the clock."""
        if event.time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule event at t={event.time} before current time "
                f"t={self._now}"
            )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, type: EventType, **payload) -> Event:
        """Convenience wrapper building and scheduling an event."""
        return self.schedule(Event.create(time, type, **payload))

    def schedule_after(self, delay: float, type: EventType, **payload) -> Event:
        """Schedule an event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("delay must be non-negative")
        return self.schedule_at(self._now + delay, type, **payload)

    def on(
        self, type: EventType, handler: Callable[["SimulationEngine", Event], None]
    ) -> None:
        """Register a handler for an event type (multiple handlers allowed)."""
        self._handlers.setdefault(type, []).append(handler)

    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Pop and process the earliest event; return it (or None if empty)."""
        if not self._queue:
            return None
        event = heapq.heappop(self._queue)
        if event.time < self._now - 1e-12:
            raise SimulationError("event queue produced an out-of-order event")
        self._now = max(self._now, event.time)
        for handler in self._handlers.get(event.type, []):
            handler(self, event)
        self._processed += 1
        return event

    def run_until(
        self,
        stop: Callable[[], bool] | None = None,
        max_events: int | None = None,
        max_time: float | None = None,
    ) -> int:
        """Process events until a stop condition, event cap or time cap.

        Returns the number of events processed by this call.
        """
        count = 0
        while self._queue:
            if stop is not None and stop():
                break
            if max_events is not None and count >= max_events:
                break
            if max_time is not None and self._queue[0].time > max_time:
                break
            self.step()
            count += 1
        return count

    def reset(self) -> None:
        """Clear the queue and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
