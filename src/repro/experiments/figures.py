"""Per-figure experiment drivers.

Each function regenerates the data series behind one figure of the paper's
evaluation section.  They return plain dictionaries / NumPy arrays (no
plotting dependency); the benchmark harness prints them as text tables and
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.config import AirFedGAConfig, GroupingConfig
from ..core.grouping import GroupingProblem, greedy_grouping
from .configs import ExperimentConfig, cnn_mnist_config
from .runner import build_experiment, run_comparison, run_mechanism

__all__ = [
    "loss_accuracy_vs_time",
    "grouping_boxplot_data",
    "xi_sweep",
    "energy_vs_accuracy",
    "scalability_sweep",
]

#: The three AirComp mechanisms compared in Figs. 3-6.
AIRCOMP_MECHANISMS = ("air_fedga", "air_fedavg", "dynamic")

#: All five mechanisms compared in Fig. 10.
ALL_MECHANISMS = ("fedavg", "tifl", "air_fedavg", "dynamic", "air_fedga")


# ----------------------------------------------------------------------
# Figures 3-6: loss / accuracy vs. time
# ----------------------------------------------------------------------
def loss_accuracy_vs_time(
    config: ExperimentConfig,
    mechanisms: Sequence[str] = AIRCOMP_MECHANISMS,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Loss and accuracy traces against simulated time for each mechanism.

    Returns ``{mechanism: {"time": ..., "loss": ..., "accuracy": ...}}``.
    """
    run = run_comparison(config, mechanisms=mechanisms)
    out: Dict[str, Dict[str, np.ndarray]] = {}
    for name, history in run.histories.items():
        out[name] = {
            "time": history.times(),
            "loss": history.losses(),
            "accuracy": history.accuracies(),
        }
    return out


# ----------------------------------------------------------------------
# Figure 7: grouping of heterogeneous workers at ξ = 0.3
# ----------------------------------------------------------------------
def grouping_boxplot_data(
    num_workers: int = 100,
    xi: float = 0.3,
    base_local_time: float = 6.0,
    seed: int = 0,
) -> Dict[int, List[float]]:
    """Per-group lists of member local-training times (the Fig. 7 box plot).

    Uses the paper's population: ``num_workers`` workers with κ ~ U[1, 10]
    and one label each, grouped by Algorithm 3 at the given ξ.
    """
    config = cnn_mnist_config(num_workers=num_workers, seed=seed)
    config = config.scaled(
        config=AirFedGAConfig(grouping=GroupingConfig(xi=xi))
    )
    experiment = build_experiment(config)
    local_times = experiment.latency.nominal_times()
    problem = GroupingProblem(
        data_sizes=experiment.partition.data_sizes(),
        class_counts=experiment.partition.class_counts(),
        local_times=local_times,
        model_dimension=config.latency_model_dimension or 10_000,
        config=config.config,
    )
    result = greedy_grouping(problem)
    data: Dict[int, List[float]] = {}
    # Order groups by their median member time so the box plot reads
    # left-to-right like the paper's Fig. 7.
    ordered = sorted(
        range(len(result.groups)),
        key=lambda g: float(np.median(local_times[result.groups[g]])),
    )
    for rank, g in enumerate(ordered, start=1):
        data[rank] = [float(local_times[w]) for w in result.groups[g]]
    return data


# ----------------------------------------------------------------------
# Figure 8: training time to target accuracy vs. ξ
# ----------------------------------------------------------------------
def xi_sweep(
    config: ExperimentConfig,
    xi_values: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
    accuracy_targets: Sequence[float] = (0.5, 0.6, 0.7),
) -> Dict[float, Dict[float, Optional[float]]]:
    """Time to reach each accuracy target as a function of the grouping slack ξ.

    Returns ``{xi: {target: time or None}}``.  The paper's Fig. 8 shows a
    U-shape: tiny ξ degenerates to fully-asynchronous single-worker groups
    (no AirComp benefit), large ξ recreates the straggler problem.
    """
    results: Dict[float, Dict[float, Optional[float]]] = {}
    for xi in xi_values:
        if xi < 0:
            raise ValueError("xi must be non-negative")
        cfg = config.scaled(
            config=AirFedGAConfig(
                aircomp=config.config.aircomp,
                grouping=GroupingConfig(xi=xi),
                convergence=config.config.convergence,
            )
        )
        history = run_mechanism(cfg, "air_fedga")
        results[xi] = {
            target: history.time_to_accuracy(target) for target in accuracy_targets
        }
        results[xi]["_final_accuracy"] = history.final_accuracy
        results[xi]["_total_time"] = history.total_time
        results[xi]["_num_groups"] = float(
            len({r.group_id for r in history.records if r.group_id >= 0}) or 1
        )
    return results


# ----------------------------------------------------------------------
# Figure 9: aggregation energy vs. target accuracy
# ----------------------------------------------------------------------
def energy_vs_accuracy(
    config: ExperimentConfig,
    accuracy_targets: Sequence[float] = (0.4, 0.5, 0.6),
    mechanisms: Sequence[str] = AIRCOMP_MECHANISMS,
) -> Dict[str, Dict[float, Optional[float]]]:
    """Cumulative transmit energy when each accuracy target is first reached."""
    run = run_comparison(config, mechanisms=mechanisms)
    out: Dict[str, Dict[float, Optional[float]]] = {}
    for name, history in run.histories.items():
        out[name] = {t: history.energy_to_accuracy(t) for t in accuracy_targets}
        out[name]["_final_accuracy"] = history.final_accuracy
        out[name]["_total_energy"] = history.total_energy
    return out


# ----------------------------------------------------------------------
# Figure 10: scalability with the number of workers
# ----------------------------------------------------------------------
def scalability_sweep(
    base_config: ExperimentConfig,
    worker_counts: Sequence[int] = (10, 20, 40),
    mechanisms: Sequence[str] = ALL_MECHANISMS,
    accuracy_target: float = 0.5,
    max_rounds: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[str, Optional[float]]]]:
    """Average single-round time and total training time vs. worker count.

    Returns ``{mechanism: {N: {"avg_round_time": ..., "total_time": ...,
    "time_to_target": ...}}}``.
    """
    results: Dict[str, Dict[int, Dict[str, Optional[float]]]] = {
        m: {} for m in mechanisms
    }
    for n in worker_counts:
        if n < 2:
            raise ValueError("worker counts must be >= 2")
        cfg = base_config.scaled(num_workers=n)
        if max_rounds is not None:
            cfg = cfg.scaled(max_rounds=max_rounds)
        run = run_comparison(cfg, mechanisms=mechanisms)
        for name, history in run.histories.items():
            results[name][n] = {
                "avg_round_time": history.average_round_time(),
                "total_time": history.total_time,
                "time_to_target": history.time_to_accuracy(accuracy_target),
                "final_accuracy": history.final_accuracy,
                "rounds": float(history.total_rounds),
            }
    return results
