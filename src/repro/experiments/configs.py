"""Experiment configurations for every table and figure of the evaluation.

Each figure/table of the paper's Section VI maps to an
:class:`ExperimentConfig` (or a sweep of them) describing the dataset,
model, worker population, heterogeneity, channel and training budget.  The
defaults here are the *benchmark-scale* settings: the same structure as the
paper (100 workers, label-skew Non-IID, κ ∈ [1, 10], 1 MHz band, σ₀² = 1 W,
Ê = 10 J) but with synthetic datasets, scaled-down models and a reduced
round budget so that the whole suite runs on a laptop CPU in minutes.  The
``paper_scale()`` constructors return the full-size settings for users who
want to run closer to the original (hours of CPU time).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional

from .. import registry
from ..core.config import AirFedGAConfig, FaultConfig
from ..data.synthetic import Dataset
from ..nn.models import Model

__all__ = [
    "ExperimentConfig",
    "lr_mnist_config",
    "cnn_mnist_config",
    "cnn_cifar10_config",
    "vgg_imagenet100_config",
    "EXPERIMENT_CONFIGS",
]

#: Paper-scale model dimensions used for the latency/energy model (see
#: FLExperiment.latency_model_dimension).  LR-MNIST: 784*512 + 512*512 +
#: 512*10 + biases ≈ 0.67 M; CNN-MNIST ≈ 0.43 M; CNN-CIFAR ≈ 0.88 M.
#: VGG-16 proper has ≈ 138 M parameters; with the default 64 sub-channels and
#: 0.1 ms symbols that upload alone would take minutes per aggregation, which
#: is inconsistent with the round times the paper reports for ImageNet-100 —
#: the authors' setup evidently provisions proportionally more sub-carriers
#: for the larger model.  We keep the same ratio of upload time to local
#: compute time as the CNN workloads by using a 2 M-entry latency dimension.
PAPER_DIMENSIONS = {
    "lr": 670_730,
    "mnist_cnn": 431_080,
    "cifar_cnn": 878_538,
    "mini_vgg": 2_000_000,
}


@dataclass
class ExperimentConfig:
    """A complete specification of one federated-training simulation."""

    name: str
    dataset_factory: Callable[[], Dataset]
    model_factory: Callable[[], Model]
    flatten_inputs: bool
    num_workers: int = 20
    labels_per_worker: int = 1
    partition_strategy: str = "label-skew"
    dirichlet_alpha: float = 0.5
    base_local_time: float = 6.0
    kappa_min: float = 1.0
    kappa_max: float = 10.0
    learning_rate: float = 0.1
    local_steps: int = 2
    batch_size: int = 32
    max_rounds: int = 60
    max_time: Optional[float] = None
    eval_every: int = 1
    max_eval_samples: int = 256
    latency_model_dimension: Optional[int] = None
    config: AirFedGAConfig = field(default_factory=AirFedGAConfig)
    seed: int = 0
    #: Channel model (registry kind ``"channel"``): ``"rayleigh"``
    #: (default, the paper's block fading) or ``"static"``; extra
    #: constructor parameters go in ``channel_params``.
    channel_kind: str = "rayleigh"
    channel_params: Dict[str, float] = field(default_factory=dict)
    #: Local-training execution engine (see :class:`repro.fl.FLExperiment`):
    #: "auto" (vectorized group-batched when supported), "batched", or
    #: "scalar" (the seed's sequential reference path, benchmark baseline).
    engine: str = "auto"
    #: Device-realism model (registry kind ``"clientstate"``; see
    #: :mod:`repro.sim.clientstate`).  The default ``"always-on"``
    #: disables fault injection; extra constructor parameters go in
    #: ``clientstate_params`` (``num_workers`` and the derived seed
    #: ``seed + 4`` are supplied automatically).
    clientstate_kind: str = "always-on"
    clientstate_params: Dict[str, float] = field(default_factory=dict)
    #: Group-level fault policy (quorum/retry/renormalization); inert
    #: while ``clientstate_kind`` is ``"always-on"``.
    fault: FaultConfig = field(default_factory=FaultConfig)
    #: Worker-data materialization (see :mod:`repro.core.population`):
    #: ``"eager"`` keeps the legacy per-worker copies (bit-identical
    #: histories), ``"lazy"`` serves zero-copy shard views out of the
    #: shared dataset store (O(1) per-worker memory at XL scale).
    materialization: str = "eager"

    def scaled(self, **overrides) -> "ExperimentConfig":
        """Return a copy with some fields overridden (for sweeps)."""
        return replace(self, **overrides)


# ----------------------------------------------------------------------
# The four model/dataset pairs of Figs. 3-6
# ----------------------------------------------------------------------
def lr_mnist_config(
    num_workers: int = 20,
    num_train: int = 2000,
    image_size: int = 16,
    hidden: int = 64,
    max_rounds: int = 60,
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 3: "LR" (two-hidden-layer MLP) on MNIST-shaped data."""
    input_dim = image_size * image_size
    return ExperimentConfig(
        name="lr_mnist",
        dataset_factory=lambda: registry.create(
            "dataset", "synthetic-mnist",
            num_train=num_train, num_test=max(200, num_train // 5),
            image_size=image_size, seed=seed,
        ),
        model_factory=lambda: registry.create(
            "model", "lr",
            input_dim=input_dim, hidden=hidden, num_classes=10, seed=seed,
        ),
        flatten_inputs=True,
        num_workers=num_workers,
        max_rounds=max_rounds,
        latency_model_dimension=PAPER_DIMENSIONS["lr"],
        seed=seed,
    )


def cnn_mnist_config(
    num_workers: int = 20,
    num_train: int = 1200,
    image_size: int = 16,
    scale: float = 0.15,
    max_rounds: int = 40,
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 4 (and Figs. 8-10 base): CNN on MNIST-shaped data."""
    return ExperimentConfig(
        name="cnn_mnist",
        dataset_factory=lambda: registry.create(
            "dataset", "synthetic-mnist",
            num_train=num_train, num_test=max(200, num_train // 5),
            image_size=image_size, seed=seed,
        ),
        model_factory=lambda: registry.create(
            "model", "mnist_cnn",
            image_size=image_size, scale=scale, num_classes=10, seed=seed,
        ),
        flatten_inputs=False,
        num_workers=num_workers,
        max_rounds=max_rounds,
        local_steps=2,
        batch_size=32,
        latency_model_dimension=PAPER_DIMENSIONS["mnist_cnn"],
        seed=seed,
    )


def cnn_cifar10_config(
    num_workers: int = 20,
    num_train: int = 1200,
    image_size: int = 16,
    scale: float = 0.12,
    max_rounds: int = 40,
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 5: CNN on CIFAR-10-shaped data (harder, lower accuracy plateau)."""
    return ExperimentConfig(
        name="cnn_cifar10",
        dataset_factory=lambda: registry.create(
            "dataset", "synthetic-cifar10",
            num_train=num_train, num_test=max(200, num_train // 5),
            image_size=image_size, seed=seed,
        ),
        model_factory=lambda: registry.create(
            "model", "cifar_cnn",
            image_size=image_size, scale=scale, num_classes=10, seed=seed,
        ),
        flatten_inputs=False,
        num_workers=num_workers,
        max_rounds=max_rounds,
        base_local_time=12.0,
        local_steps=2,
        latency_model_dimension=PAPER_DIMENSIONS["cifar_cnn"],
        seed=seed,
    )


def vgg_imagenet100_config(
    num_workers: int = 20,
    num_train: int = 1500,
    image_size: int = 16,
    num_classes: int = 20,
    max_rounds: int = 30,
    seed: int = 0,
) -> ExperimentConfig:
    """Fig. 6: VGG-style network on an ImageNet-100 stand-in.

    The benchmark-scale version uses 20 classes (instead of 100) and a
    MiniVGG so that a full comparison finishes in minutes; the qualitative
    comparison (who converges faster per unit simulated time) is preserved.
    """
    return ExperimentConfig(
        name="vgg_imagenet100",
        dataset_factory=lambda: registry.create(
            "dataset", "synthetic-imagenet100",
            num_train=num_train, num_test=max(200, num_train // 5),
            image_size=image_size, num_classes=num_classes, seed=seed,
        ),
        model_factory=lambda: registry.create(
            "model", "mini_vgg",
            image_size=image_size, num_classes=num_classes,
            base_channels=4, blocks=2, hidden=32, seed=seed,
        ),
        flatten_inputs=False,
        num_workers=num_workers,
        labels_per_worker=max(1, num_classes // num_workers),
        max_rounds=max_rounds,
        base_local_time=30.0,
        local_steps=1,
        latency_model_dimension=PAPER_DIMENSIONS["mini_vgg"],
        seed=seed,
    )


EXPERIMENT_CONFIGS: Dict[str, Callable[..., ExperimentConfig]] = {
    "lr_mnist": lr_mnist_config,
    "cnn_mnist": cnn_mnist_config,
    "cnn_cifar10": cnn_cifar10_config,
    "vgg_imagenet100": vgg_imagenet100_config,
}
