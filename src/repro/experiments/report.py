"""Consolidated sweep reports over streamed JSONL result rows.

:class:`~repro.experiments.sweep.SweepRunner` streams one self-describing
JSON row per grid point (schema:
:data:`~repro.experiments.sweep.SWEEP_SUCCESS_ROW_KEYS`).  This module
turns a finished — or half-finished — results file into one human-readable
document: an overview (points, failures, cache hits, attempts), per-axis
aggregates over every sweep axis found in the rows, device-fault counter
totals, a failure/retry breakdown and the full per-point results table.

The same report renders as GitHub-flavoured **markdown** (default) or a
self-contained **HTML** page; :func:`write_report` picks the format from
the output suffix.  Exposed on the CLI as ``python -m repro.experiments
report results.jsonl [--output report.md|report.html]`` and as the
``--report`` flag of the ``sweep`` subcommand.
"""

from __future__ import annotations

import html
import json
import statistics
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .reporting import format_float, format_markdown_table

__all__ = ["load_rows", "sweep_report", "write_report"]


def load_rows(path: str | Path) -> List[Dict[str, Any]]:
    """Read sweep JSONL rows, ordered by grid index.

    Undecodable lines (a stream torn by SIGKILL mid-write) are skipped;
    when the same grid index appears more than once (an interrupted
    launch resumed into the same file before compaction) the **last**
    occurrence wins, matching the resume reconciliation of
    :class:`~repro.experiments.sweep.SweepRunner`.
    """
    by_index: Dict[Any, Dict[str, Any]] = {}
    extras: List[Dict[str, Any]] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if not isinstance(row, dict):
            continue
        if isinstance(row.get("index"), int):
            by_index[row["index"]] = row
        else:
            extras.append(row)
    rows = [by_index[i] for i in sorted(by_index)]
    return rows + extras


def _succeeded(row: Mapping[str, Any]) -> bool:
    return "summary" in row and "error" not in row


def _axis_order(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    """Sweep axes in first-seen document order across the rows."""
    axes: List[str] = []
    for row in rows:
        for axis in row.get("overrides", {}) or {}:
            if axis not in axes:
                axes.append(axis)
    return axes


def _mean(values: List[float]) -> Optional[float]:
    return statistics.fmean(values) if values else None


# ----------------------------------------------------------------------
# Format-neutral report blocks
# ----------------------------------------------------------------------
def _overview_block(rows: Sequence[Mapping[str, Any]]) -> Tuple[List[str], List[List[Any]]]:
    succeeded = [r for r in rows if _succeeded(r)]
    failed = [r for r in rows if not _succeeded(r)]
    cache_hits = sum(1 for r in rows if r.get("cache_hit"))
    attempts = sum(int(r.get("attempts", 0)) for r in rows)
    retried = sum(1 for r in succeeded if int(r.get("attempts", 0)) > 1)
    cpu_counts = sorted({r.get("cpu_count") for r in rows if r.get("cpu_count")})
    modes = sorted({str(r.get("parallelism_mode")) for r in rows if "parallelism_mode" in r})
    table = [
        ["grid points", len(rows)],
        ["succeeded", len(succeeded)],
        ["failed", len(failed)],
        ["cache hits", cache_hits],
        ["executions (attempts)", attempts],
        ["retried to success", retried],
        ["cpu_count", ", ".join(str(c) for c in cpu_counts) or "-"],
        ["parallelism modes", ", ".join(modes) or "-"],
    ]
    return ["metric", "value"], table


def _axis_block(
    rows: Sequence[Mapping[str, Any]], axis: str
) -> Tuple[List[str], List[List[Any]]]:
    groups: Dict[Any, List[Mapping[str, Any]]] = {}
    order: List[Any] = []
    for row in rows:
        overrides = row.get("overrides", {}) or {}
        if axis not in overrides:
            continue
        value = overrides[axis]
        key = json.dumps(value, sort_keys=True)
        if key not in groups:
            groups[key] = []
            order.append((key, value))
        groups[key].append(row)
    table: List[List[Any]] = []
    for key, value in order:
        members = groups[key]
        ok = [r for r in members if _succeeded(r)]
        accuracies = [float(r["summary"]["final_accuracy"]) for r in ok]
        rounds = [float(r["summary"]["rounds"]) for r in ok]
        times = [float(r["summary"]["total_time_s"]) for r in ok]
        table.append(
            [
                json.dumps(value) if not isinstance(value, str) else value,
                len(members),
                len(members) - len(ok),
                _mean(accuracies),
                max(accuracies) if accuracies else None,
                _mean(rounds),
                _mean(times),
            ]
        )
    headers = [
        axis,
        "points",
        "failed",
        "mean final acc",
        "best final acc",
        "mean rounds",
        "mean sim time (s)",
    ]
    return headers, table


def _faults_block(rows: Sequence[Mapping[str, Any]]) -> Tuple[List[str], List[List[Any]]]:
    counters: Dict[str, int] = {}
    reporting = 0
    for row in rows:
        faults = row.get("faults")
        if not isinstance(faults, Mapping):
            continue
        reporting += 1
        for name, value in faults.items():
            counters[name] = counters.get(name, 0) + int(value)
    table = [[name, total] for name, total in counters.items()]
    table.append(["(rows reporting counters)", reporting])
    return ["fault counter (total)", "count"], table


def _failures_block(rows: Sequence[Mapping[str, Any]]) -> Tuple[List[str], List[List[Any]]]:
    table: List[List[Any]] = []
    for row in rows:
        if _succeeded(row):
            continue
        spec_hash = str(row.get("spec_hash") or "-")
        table.append(
            [
                row.get("index", "-"),
                row.get("scenario", "-"),
                spec_hash[:12],
                int(row.get("attempts", 0)),
                str(row.get("error", "-")),
            ]
        )
    return ["index", "scenario", "spec hash", "attempts", "error"], table


def _results_block(rows: Sequence[Mapping[str, Any]]) -> Tuple[List[str], List[List[Any]]]:
    axes = _axis_order(rows)
    table: List[List[Any]] = []
    for row in rows:
        overrides = row.get("overrides", {}) or {}
        cells: List[Any] = [row.get("index", "-"), row.get("scenario", "-")]
        cells.extend(overrides.get(axis, "-") for axis in axes)
        if _succeeded(row):
            summary = row["summary"]
            cells.extend(
                [
                    int(summary["rounds"]),
                    float(summary["final_accuracy"]),
                    float(summary["final_loss"]),
                    float(summary["total_time_s"]),
                ]
            )
        else:
            cells.extend(["-", None, None, None])
        cells.append("hit" if row.get("cache_hit") else "-")
        cells.append(int(row.get("attempts", 0)))
        table.append(cells)
    headers = (
        ["index", "scenario"]
        + axes
        + ["rounds", "final acc", "final loss", "sim time (s)", "cache", "attempts"]
    )
    return headers, table


def _report_blocks(
    rows: Sequence[Mapping[str, Any]], title: str
) -> List[Tuple[str, Any]]:
    """The format-neutral document: (kind, payload) blocks."""
    blocks: List[Tuple[str, Any]] = [("title", title)]
    blocks.append(("heading", "Overview"))
    blocks.append(("table", _overview_block(rows)))
    axes = _axis_order(rows)
    if axes:
        blocks.append(("heading", "Per-axis aggregates"))
        for axis in axes:
            blocks.append(("subheading", f"Axis `{axis}`"))
            blocks.append(("table", _axis_block(rows, axis)))
    blocks.append(("heading", "Device-fault counters"))
    headers, fault_table = _faults_block(rows)
    if len(fault_table) > 1:
        blocks.append(("table", (headers, fault_table)))
    else:
        blocks.append(("para", "No rows carry fault counters."))
    failure_headers, failure_table = _failures_block(rows)
    blocks.append(("heading", "Failures and retries"))
    if failure_table:
        blocks.append(("table", (failure_headers, failure_table)))
    else:
        blocks.append(("para", "No failed grid points."))
    blocks.append(("heading", "Results"))
    blocks.append(("table", _results_block(rows)))
    return blocks


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def _render_markdown(blocks: List[Tuple[str, Any]]) -> str:
    parts: List[str] = []
    for kind, payload in blocks:
        if kind == "title":
            parts.append(f"# {payload}")
        elif kind == "heading":
            parts.append(f"## {payload}")
        elif kind == "subheading":
            parts.append(f"### {payload}")
        elif kind == "para":
            parts.append(str(payload))
        elif kind == "table":
            headers, table = payload
            parts.append(format_markdown_table(headers, table))
        else:  # pragma: no cover - internal invariant
            raise AssertionError(f"unknown report block {kind!r}")
    return "\n\n".join(parts) + "\n"


def _html_cell(value: Any) -> str:
    if isinstance(value, float) or value is None:
        return html.escape(format_float(value))
    return html.escape(str(value))


def _render_html(blocks: List[Tuple[str, Any]]) -> str:
    title = next((p for k, p in blocks if k == "title"), "Sweep report")
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(str(title))}</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em;max-width:72em}",
        "table{border-collapse:collapse;margin:1em 0}",
        "th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:left}",
        "th{background:#eee}",
        "</style></head><body>",
    ]
    for kind, payload in blocks:
        if kind == "title":
            parts.append(f"<h1>{html.escape(str(payload))}</h1>")
        elif kind == "heading":
            parts.append(f"<h2>{html.escape(str(payload))}</h2>")
        elif kind == "subheading":
            parts.append(f"<h3>{html.escape(str(payload))}</h3>")
        elif kind == "para":
            parts.append(f"<p>{html.escape(str(payload))}</p>")
        elif kind == "table":
            headers, table = payload
            parts.append("<table><thead><tr>")
            parts.extend(f"<th>{_html_cell(h)}</th>" for h in headers)
            parts.append("</tr></thead><tbody>")
            for row in table:
                parts.append(
                    "<tr>" + "".join(f"<td>{_html_cell(c)}</td>" for c in row) + "</tr>"
                )
            parts.append("</tbody></table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def sweep_report(
    rows: Sequence[Mapping[str, Any]],
    fmt: str = "markdown",
    title: str = "Sweep report",
) -> str:
    """Render sweep JSONL rows as one consolidated document.

    ``fmt`` is ``"markdown"`` (GitHub tables) or ``"html"`` (a
    self-contained page).  Sections: overview, per-axis aggregates (one
    table per sweep axis found in the rows' ``overrides``), device-fault
    counter totals, failure/retry breakdown and the full results table.
    """
    if fmt not in ("markdown", "html"):
        raise ValueError(f"fmt must be 'markdown' or 'html', got {fmt!r}")
    if not rows:
        raise ValueError("no sweep rows to report")
    blocks = _report_blocks(rows, title)
    return _render_markdown(blocks) if fmt == "markdown" else _render_html(blocks)


def write_report(
    rows: Sequence[Mapping[str, Any]],
    path: str | Path,
    fmt: Optional[str] = None,
    title: str = "Sweep report",
) -> Path:
    """Write :func:`sweep_report` to ``path``; format from the suffix.

    ``.html``/``.htm`` renders HTML, anything else markdown; an explicit
    ``fmt`` overrides the suffix.
    """
    path = Path(path)
    if fmt is None:
        fmt = "html" if path.suffix.lower() in (".html", ".htm") else "markdown"
    text = sweep_report(rows, fmt=fmt, title=title)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path
