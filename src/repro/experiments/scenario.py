"""Declarative, serializable experiment specifications.

A :class:`Scenario` is a single typed document describing *everything*
about one federated-training simulation: the dataset, its Non-IID
partition, the wireless channel, the edge-heterogeneity timing model, the
mechanism, the training budget and the execution parallelism.  Every
component is named in the generic registry (:mod:`repro.registry`), so
``Scenario.from_dict(json.load(f)).build().run(...)`` fully reproduces a
run from one JSON blob — no code edits, no hand-wired factories.

Compared to the legacy :class:`~repro.experiments.configs.ExperimentConfig`
(which carries opaque ``dataset_factory``/``model_factory`` callables and
is therefore not serializable), a ``Scenario``

* round-trips: ``Scenario.from_dict(s.to_dict()) == s``;
* validates at construction: unknown component names raise
  :class:`~repro.registry.UnknownComponentError` with did-you-mean
  suggestions, unknown mechanism parameters raise ``TypeError`` listing
  the accepted names, unknown section fields raise ``ValueError``;
* builds: :meth:`Scenario.build` returns a ready-to-run trainer and
  :meth:`Scenario.run` executes it under the scenario's budget;
* composes fluently: ``Scenario.default().with_(mechanism="fedavg",
  **{"timing.base_local_time": 2.0})``.

Seed discipline matches :func:`repro.experiments.build_experiment`
exactly (heterogeneity ``seed+1``, latency jitter ``seed+2``, channel
``seed+3``), so a scenario-built run is bit-identical (float64) to the
same run wired through the legacy ``ExperimentConfig`` path — enforced by
``tests/experiments/test_scenario.py``.

Grid sweeps over scenarios (list-valued fields → cross product) are run
by :mod:`repro.experiments.sweep`.
"""

from __future__ import annotations

import dataclasses
import json
import typing
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Type

from .. import registry
from ..core.config import AirFedGAConfig, FaultConfig, ParallelismConfig
from ..core.population import validate_materialization
from ..fl.base import BaseTrainer, FLExperiment
from ..fl.history import TrainingHistory
from ..fl.registry import build_trainer

__all__ = [
    "ComponentSpec",
    "DataSpec",
    "TimingSpec",
    "TrainingSpec",
    "FaultSpec",
    "Scenario",
    "SCENARIO_COMPONENT_KINDS",
]

#: Where each registry kind is reachable from a scenario document: the
#: dotted spec path naming a component of that kind.  The static-analysis
#: suite (rule ``REG003``) checks every registered kind appears here, so a
#: new component family cannot be registered without a route from the
#: declarative Scenario API.
SCENARIO_COMPONENT_KINDS: Dict[str, str] = {
    "data": "dataset",
    "model": "model",
    "partition": "partitioner",
    "channel": "channel",
    "timing.latency": "latency",
    "mechanism": "mechanism",
    "faults.clientstate": "clientstate",
    # Staleness policies have no dedicated section: they are named in the
    # params of staleness-aware mechanisms (e.g. fedasync's ``staleness``).
    "mechanism.params.staleness": "staleness",
}


def _jsonify(value: Any) -> Any:
    """Normalize params to JSON-native containers (tuples → lists).

    Keeps dataclass equality meaningful across a JSON round-trip: a spec
    constructed with a tuple and the same spec re-read from JSON (where
    the tuple came back as a list) compare equal.
    """
    if isinstance(value, tuple):
        return [_jsonify(v) for v in value]
    if isinstance(value, list):
        return [_jsonify(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return value


def _dataclass_from_dict(
    cls: Type[Any], data: Mapping[str, Any], context: str
) -> Any:
    """Reconstruct a (possibly nested) dataclass from a plain mapping.

    Unknown keys raise ``ValueError`` with close-match suggestions, so a
    typo'd field in a hand-written JSON spec fails loudly instead of
    being silently dropped.
    """
    if not isinstance(data, Mapping):
        raise ValueError(f"{context} must be a mapping, got {type(data).__name__}")
    field_map = {f.name: f for f in dataclasses.fields(cls) if f.init}
    unknown = sorted(set(data) - set(field_map))
    if unknown:
        hints = registry._close_matches(unknown[0], list(field_map))
        suffix = f"; did you mean {hints[0]!r}?" if hints else ""
        raise ValueError(
            f"{context} has unknown field(s) {unknown}{suffix} "
            f"(accepted: {sorted(field_map)})"
        )
    types = typing.get_type_hints(cls)
    kwargs: Dict[str, Any] = {}
    for name, value in data.items():
        target = types.get(name)
        if dataclasses.is_dataclass(target) and isinstance(value, Mapping):
            value = _dataclass_from_dict(target, value, f"{context}.{name}")
        kwargs[name] = value
    return cls(**kwargs)


@dataclass
class ComponentSpec:
    """A registry component reference: a name plus constructor parameters."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"component name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.params, Mapping):
            raise ValueError(
                f"component params must be a mapping, got {type(self.params).__name__}"
            )
        self.params = _jsonify(dict(self.params))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def coerce(cls, value: Any, context: str) -> "ComponentSpec":
        """Accept a ``ComponentSpec``, a bare name string, or a mapping."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(name=value)
        if isinstance(value, Mapping):
            spec: "ComponentSpec" = _dataclass_from_dict(cls, value, context)
            return spec
        raise ValueError(
            f"{context} must be a component name, mapping or {cls.__name__}, "
            f"got {type(value).__name__}"
        )


@dataclass
class DataSpec(ComponentSpec):
    """The dataset section: a registered dataset plus data-access switches.

    ``materialization`` selects how workers see their shards (see
    :mod:`repro.core.population`): ``"eager"`` (default) keeps the legacy
    per-worker copies and therefore bit-identical histories, ``"lazy"``
    serves zero-copy views out of the shared dataset store — the XL-scale
    memory mode.  Unknown values fail at construction with did-you-mean
    suggestions.
    """

    name: str = "synthetic-mnist"
    flatten: bool = False
    materialization: str = "eager"

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_materialization(self.materialization)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "params": dict(self.params),
            "flatten": self.flatten,
            "materialization": self.materialization,
        }


@dataclass
class TimingSpec:
    """The timing section: compute latency and edge heterogeneity.

    ``latency`` names a registered latency builder (kind ``"latency"``:
    ``"uniform"`` for the paper's κ ~ U[κ_min, κ_max] model,
    ``"homogeneous"`` for κ = 1).  ``base_local_time`` is the raw
    per-update time ``l̂_i`` in seconds; ``jitter_std`` adds optional
    per-round multiplicative jitter (the paper's model has none).
    """

    latency: str = "uniform"
    base_local_time: float = 6.0
    kappa_min: float = 1.0
    kappa_max: float = 10.0
    jitter_std: float = 0.0

    def __post_init__(self) -> None:
        if self.base_local_time <= 0:
            raise ValueError("base_local_time must be positive")
        if self.jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")


@dataclass
class TrainingSpec:
    """The training section: SGD hyper-parameters and the run budget."""

    learning_rate: float = 0.1
    local_steps: int = 2
    batch_size: int = 32
    max_rounds: int = 60
    max_time: Optional[float] = None
    eval_every: int = 1
    max_eval_samples: int = 256
    latency_model_dimension: Optional[int] = None
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.max_time is not None and self.max_time <= 0:
            raise ValueError("max_time must be positive when given")
        # learning_rate/local_steps/batch_size/eval_every/max_eval_samples/
        # engine are re-validated by FLExperiment at build time; checking
        # the run budget here catches spec typos before any data is built.


@dataclass
class FaultSpec:
    """The faults section: device-realism model plus the group fault policy.

    ``clientstate`` names a registered client-state model (registry kind
    ``"clientstate"``: ``always-on``, ``bernoulli``, ``lognormal``,
    ``cyclic``, ``dropout-rejoin``, ``partial``; see
    :mod:`repro.sim.clientstate`).  The default ``always-on`` disables
    fault injection entirely — histories stay bit-identical to a scenario
    without a faults section.  The remaining fields map one-to-one onto
    :class:`repro.core.FaultConfig` (quorum fraction, retry/backoff
    escalation, survivor-weight renormalization, parking guard).

    The model receives ``num_workers`` and the derived seed ``seed + 4``
    automatically at build time (continuing the scenario's seed
    discipline), so two runs of the same scenario JSON replay identical
    fault trajectories.
    """

    clientstate: ComponentSpec = field(
        default_factory=lambda: ComponentSpec("always-on")
    )
    quorum_fraction: float = 0.5
    max_retries: int = 2
    retry_backoff: float = 1.0
    renormalize_survivors: bool = True
    max_consecutive_failures: int = 25

    def __post_init__(self) -> None:
        self.clientstate = ComponentSpec.coerce(
            self.clientstate, "scenario.faults.clientstate"
        )
        # Validates the policy fields eagerly (quorum fraction range etc.).
        self.to_fault_config()

    def to_fault_config(self) -> FaultConfig:
        """The :class:`~repro.core.FaultConfig` this section describes."""
        return FaultConfig(
            quorum_fraction=self.quorum_fraction,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            renormalize_survivors=self.renormalize_survivors,
            max_consecutive_failures=self.max_consecutive_failures,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clientstate": self.clientstate.to_dict(),
            "quorum_fraction": self.quorum_fraction,
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
            "renormalize_survivors": self.renormalize_survivors,
            "max_consecutive_failures": self.max_consecutive_failures,
        }


@dataclass
class Scenario:
    """A complete, serializable specification of one simulation run.

    Sections
    --------
    ``data``/``model``/``partition``/``channel``/``mechanism``
        Registry component references (:class:`ComponentSpec`): a name in
        the corresponding registry kind plus constructor parameters.
    ``timing``
        The latency/heterogeneity model (:class:`TimingSpec`).
    ``training``
        SGD hyper-parameters and the run budget (:class:`TrainingSpec`).
    ``algorithm``
        The :class:`~repro.core.config.AirFedGAConfig` core-algorithm
        settings (AirComp physical layer, grouping ξ, convergence
        constants, dtype).  Its ``parallelism`` sub-config is *owned by
        the scenario's own* ``parallelism`` *section* and normalized to
        the default here; set parallelism on the scenario, not inside
        ``algorithm``.
    ``parallelism``
        The :class:`~repro.core.config.ParallelismConfig` execution mode.
    ``faults``
        The device-realism layer (:class:`FaultSpec`): a client-state
        model (availability / dropout / partial work) plus the group-level
        quorum-and-retry policy.  Defaults to ``always-on`` (no faults).

    ``num_workers`` and ``seed`` are top-level because nearly every
    section consumes them; the component builders receive them
    automatically (datasets/models get ``seed``, partitions/channels/
    timing get ``num_workers`` plus the derived seeds ``seed+1``..
    ``seed+3`` matching :func:`repro.experiments.build_experiment`).
    """

    name: str = "scenario"
    num_workers: int = 20
    seed: int = 0
    data: DataSpec = field(default_factory=DataSpec)
    model: ComponentSpec = field(default_factory=lambda: ComponentSpec("lr"))
    partition: ComponentSpec = field(default_factory=lambda: ComponentSpec("label-skew"))
    channel: ComponentSpec = field(default_factory=lambda: ComponentSpec("rayleigh"))
    timing: TimingSpec = field(default_factory=TimingSpec)
    mechanism: ComponentSpec = field(default_factory=lambda: ComponentSpec("air_fedga"))
    training: TrainingSpec = field(default_factory=TrainingSpec)
    algorithm: AirFedGAConfig = field(default_factory=AirFedGAConfig)
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    faults: FaultSpec = field(default_factory=FaultSpec)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if isinstance(self.data, Mapping):
            self.data = _dataclass_from_dict(DataSpec, self.data, "scenario.data")
        elif isinstance(self.data, str):
            self.data = DataSpec(name=self.data)
        elif not isinstance(self.data, DataSpec):
            raise ValueError(
                "scenario.data must be a dataset name, mapping or DataSpec, "
                f"got {type(self.data).__name__}"
            )
        self.model = ComponentSpec.coerce(self.model, "scenario.model")
        self.partition = ComponentSpec.coerce(self.partition, "scenario.partition")
        self.channel = ComponentSpec.coerce(self.channel, "scenario.channel")
        self.mechanism = ComponentSpec.coerce(self.mechanism, "scenario.mechanism")
        if isinstance(self.timing, Mapping):
            self.timing = _dataclass_from_dict(TimingSpec, self.timing, "scenario.timing")
        if isinstance(self.training, Mapping):
            self.training = _dataclass_from_dict(
                TrainingSpec, self.training, "scenario.training"
            )
        if isinstance(self.algorithm, Mapping):
            self.algorithm = _dataclass_from_dict(
                AirFedGAConfig, self.algorithm, "scenario.algorithm"
            )
        if isinstance(self.parallelism, Mapping):
            self.parallelism = _dataclass_from_dict(
                ParallelismConfig, self.parallelism, "scenario.parallelism"
            )
        if isinstance(self.faults, Mapping):
            self.faults = _dataclass_from_dict(FaultSpec, self.faults, "scenario.faults")
        elif isinstance(self.faults, str):
            # Shorthand: a bare client-state model name with default policy.
            self.faults = FaultSpec(clientstate=ComponentSpec(self.faults))
        elif not isinstance(self.faults, FaultSpec):
            raise ValueError(
                "scenario.faults must be a client-state name, mapping or "
                f"FaultSpec, got {type(self.faults).__name__}"
            )
        # Parallelism lives in its own section; normalize the copy nested
        # inside the algorithm config so equality and serialization have
        # one source of truth.
        if self.algorithm.parallelism != ParallelismConfig():
            raise ValueError(
                "set execution parallelism on scenario.parallelism, not inside "
                "scenario.algorithm.parallelism (the nested copy is ignored)"
            )
        # Component names must resolve now, not at build time: a typo'd
        # spec fails at construction with did-you-mean suggestions.
        registry.get("dataset", self.data.name)
        registry.get("model", self.model.name)
        registry.get("partitioner", self.partition.name)
        registry.get("channel", self.channel.name)
        registry.get("latency", self.timing.latency)
        clientstate_cls = registry.get("clientstate", self.faults.clientstate.name)
        registry.check_kwargs(
            clientstate_cls,
            dict(self.faults.clientstate.params),
            context=f"client-state model {self.faults.clientstate.name!r}",
            exclude=("num_workers", "seed"),
        )
        trainer_cls = registry.get("mechanism", self.mechanism.name)
        registry.check_kwargs(
            trainer_cls,
            dict(self.mechanism.params),
            context=f"mechanism {self.mechanism.name!r}",
            exclude=("experiment",),
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "Scenario":
        """A small, fast baseline scenario (seconds to run).

        Synthetic-MNIST with the paper's LR model at benchmark-tiny scale,
        label-skew Non-IID, Rayleigh fading, uniform κ ∈ [1, 10] and the
        Air-FedGA mechanism.  Meant as the starting point for
        :meth:`with_` chains and sweeps.
        """
        return cls(
            name="default",
            num_workers=8,
            data=DataSpec(
                name="synthetic-mnist",
                params={"num_train": 256, "num_test": 96, "image_size": 8},
                flatten=True,
            ),
            model=ComponentSpec(
                "lr", {"input_dim": 64, "hidden": 16, "num_classes": 10}
            ),
            training=TrainingSpec(max_rounds=8, max_eval_samples=96),
        )

    def with_(self, **overrides: Any) -> "Scenario":
        """Return a validated copy with fields overridden.

        Keys are scenario fields; nested fields use dotted paths (passed
        via ``**{...}`` unpacking).  Section values may be mappings
        (shallow-merged into the section) or, for component sections, a
        bare name string (replacing the component and resetting its
        params)::

            s = Scenario.default().with_(
                num_workers=16,
                mechanism="tifl",                         # name, params reset
                data={"flatten": True},                   # shallow merge
                **{"timing.base_local_time": 2.0},        # dotted leaf
                **{"mechanism.params": {"num_tiers": 3}},  # dotted section
            )
        """
        spec = self.to_dict()
        top_level = set(spec)
        for key, value in overrides.items():
            parts = key.split(".")
            if parts[0] not in top_level:
                hints = registry._close_matches(parts[0], top_level)
                suffix = f"; did you mean {hints[0]!r}?" if hints else ""
                raise ValueError(f"unknown scenario field {parts[0]!r}{suffix}")
            node: Dict[str, Any] = spec
            for part in parts[:-1]:
                nxt = node.get(part)
                if not isinstance(nxt, dict):
                    raise ValueError(
                        f"cannot descend into {key!r}: {part!r} is not a section"
                    )
                node = nxt
            leaf = parts[-1]
            current = node.get(leaf)
            if isinstance(current, dict) and isinstance(value, str) and "name" in current:
                # Component shorthand: replace the name, reset the params.
                node[leaf] = {**current, "name": value, "params": {}}
            elif isinstance(current, dict) and isinstance(value, Mapping):
                node[leaf] = {**current, **value}
            else:
                node[leaf] = value
        return Scenario.from_dict(spec)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable document fully describing this scenario."""
        algorithm = asdict(self.algorithm)
        # Parallelism is its own top-level section (see class docstring).
        algorithm.pop("parallelism", None)
        return {
            "name": self.name,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "data": self.data.to_dict(),
            "model": self.model.to_dict(),
            "partition": self.partition.to_dict(),
            "channel": self.channel.to_dict(),
            "timing": asdict(self.timing),
            "mechanism": self.mechanism.to_dict(),
            "training": asdict(self.training),
            "algorithm": algorithm,
            "parallelism": asdict(self.parallelism),
            "faults": self.faults.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; missing sections take their defaults."""
        scenario: "Scenario" = _dataclass_from_dict(cls, data, "scenario")
        return scenario

    def to_json(self, path: str | Path | None = None, indent: int = 2) -> str:
        """Serialize to JSON text, optionally writing it to ``path``."""
        text = json.dumps(self.to_dict(), indent=indent)
        if path is not None:
            Path(path).write_text(text + "\n")
        return text

    @classmethod
    def from_json(cls, source: str | Path) -> "Scenario":
        """Load from a JSON file path or a JSON text string."""
        if isinstance(source, Path) or (
            isinstance(source, str) and not source.lstrip().startswith("{")
        ):
            text = Path(source).read_text()
        else:
            text = source
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Building and running
    # ------------------------------------------------------------------
    def _model_factory(self) -> Callable[[], Any]:
        name = self.model.name
        params = {"seed": self.seed, **self.model.params}
        return lambda: registry.create("model", name, **params)

    def build_experiment(self) -> FLExperiment:
        """Materialize the :class:`~repro.fl.FLExperiment` this spec describes.

        Seed discipline is identical to the legacy
        :func:`repro.experiments.build_experiment`: the dataset and model
        use ``seed``, the heterogeneity draw ``seed+1``, the latency
        jitter ``seed+2`` and the channel ``seed+3`` — so a scenario and
        a hand-wired ``ExperimentConfig`` with the same settings produce
        bit-identical runs (float64).
        """
        dataset = registry.create(
            "dataset", self.data.name, **{"seed": self.seed, **self.data.params}
        )
        if self.data.flatten:
            dataset = dataset.flattened()
        partition = registry.create(
            "partitioner",
            self.partition.name,
            dataset,
            num_workers=self.num_workers,
            seed=self.seed,
            **self.partition.params,
        )
        latency = registry.create(
            "latency",
            self.timing.latency,
            num_workers=self.num_workers,
            base_time=self.timing.base_local_time,
            kappa_min=self.timing.kappa_min,
            kappa_max=self.timing.kappa_max,
            jitter_std=self.timing.jitter_std,
            heterogeneity_seed=self.seed + 1,
            seed=self.seed + 2,
        )
        channel = registry.create(
            "channel",
            self.channel.name,
            num_workers=self.num_workers,
            seed=self.seed + 3,
            **self.channel.params,
        )
        # Device-realism layer: the client-state model continues the seed
        # ladder at seed+4.  The always-on model is built too (it validates
        # num_workers) but the trainer's fast path normalizes it away.
        clientstate = registry.create(
            "clientstate",
            self.faults.clientstate.name,
            num_workers=self.num_workers,
            seed=self.seed + 4,
            **self.faults.clientstate.params,
        )
        config = replace(self.algorithm, parallelism=self.parallelism)
        return FLExperiment(
            dataset=dataset,
            partition=partition,
            model_factory=self._model_factory(),
            latency=latency,
            channel=channel,
            config=config,
            learning_rate=self.training.learning_rate,
            local_steps=self.training.local_steps,
            batch_size=self.training.batch_size,
            eval_every=self.training.eval_every,
            max_eval_samples=self.training.max_eval_samples,
            seed=self.seed,
            latency_model_dimension=self.training.latency_model_dimension,
            engine=self.training.engine,
            clientstate=clientstate,
            fault=self.faults.to_fault_config(),
            materialization=self.data.materialization,
        )

    def build(self) -> BaseTrainer:
        """Build the mechanism trainer, ready to ``run()``.

        Trainers are context managers; prefer ``with scenario.build() as
        trainer:`` when parallelism is enabled so pool resources are
        released deterministically.
        """
        return build_trainer(
            self.mechanism.name, self.build_experiment(), **self.mechanism.params
        )

    def run(self) -> TrainingHistory:
        """Build and run under the scenario's budget; returns the history."""
        with self.build() as trainer:
            return trainer.run(
                max_rounds=self.training.max_rounds,
                max_time=self.training.max_time,
            )
