"""Command-line driver for the reproduction experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig3 --output results/fig3
    python -m repro.experiments run table3
    python -m repro.experiments compare lr_mnist --mechanisms air_fedga air_fedavg

``run`` executes the benchmark-scale version of one paper artefact (the same
configurations used by ``benchmarks/``) and writes the resulting series to
JSON (plus per-mechanism CSVs for the figure experiments) so they can be
plotted externally.  ``compare`` runs an ad-hoc mechanism comparison on one
of the four registered workloads.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..fl import MECHANISMS
from .configs import EXPERIMENT_CONFIGS
from .figures import (
    AIRCOMP_MECHANISMS,
    ALL_MECHANISMS,
    energy_vs_accuracy,
    grouping_boxplot_data,
    scalability_sweep,
    xi_sweep,
)
from .runner import run_comparison
from .tables import emd_comparison, mechanism_comparison
from .reporting import format_table

__all__ = ["EXPERIMENTS", "main", "run_experiment"]


def _jsonable(obj):
    """Recursively convert NumPy scalars/arrays so json.dumps accepts them."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    return obj


# ----------------------------------------------------------------------
# Experiment dispatch table
# ----------------------------------------------------------------------
def _figure_comparison(config_name: str, mechanisms: Sequence[str]):
    def run(scale: float = 1.0) -> Dict[str, object]:
        config = EXPERIMENT_CONFIGS[config_name]()
        if config.max_time is None:
            config = config.scaled(max_time=1500.0 * scale)
        run_result = run_comparison(config, mechanisms=mechanisms)
        return {
            name: {
                "time": history.times().tolist(),
                "loss": history.losses().tolist(),
                "accuracy": history.accuracies().tolist(),
                "summary": history.summary(),
            }
            for name, history in run_result.histories.items()
        }

    return run


EXPERIMENTS: Dict[str, Callable[..., Dict[str, object]]] = {
    "fig3": _figure_comparison("lr_mnist", AIRCOMP_MECHANISMS),
    "fig4": _figure_comparison("cnn_mnist", AIRCOMP_MECHANISMS),
    "fig5": _figure_comparison("cnn_cifar10", AIRCOMP_MECHANISMS),
    "fig6": _figure_comparison("vgg_imagenet100", AIRCOMP_MECHANISMS),
    "fig7": lambda scale=1.0: {
        "groups": grouping_boxplot_data(num_workers=int(100 * min(scale, 1.0)) or 20)
    },
    "fig8": lambda scale=1.0: {
        "xi_sweep": xi_sweep(
            EXPERIMENT_CONFIGS["lr_mnist"]().scaled(max_time=1500.0 * scale),
            xi_values=(0.0, 0.3, 1.0),
        )
    },
    "fig9": lambda scale=1.0: {
        "energy": energy_vs_accuracy(
            EXPERIMENT_CONFIGS["cnn_mnist"]().scaled(max_time=1500.0 * scale)
        )
    },
    "fig10": lambda scale=1.0: {
        "scalability": scalability_sweep(
            EXPERIMENT_CONFIGS["lr_mnist"]().scaled(max_time=1000.0 * scale),
            worker_counts=(10, 20, 40),
            mechanisms=ALL_MECHANISMS,
        )
    },
    "table1": lambda scale=1.0: {"mechanisms": mechanism_comparison()},
    "table3": lambda scale=1.0: {"emd": emd_comparison()},
}


def run_experiment(
    name: str, output: Optional[str] = None, scale: float = 1.0
) -> Dict[str, object]:
    """Run one registered experiment and optionally persist its results."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from exc
    if scale <= 0:
        raise ValueError("scale must be positive")
    results = _jsonable(fn(scale=scale))
    if output is not None:
        out_dir = Path(output)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / f"{name}.json").write_text(json.dumps(results, indent=2))
    return results


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments",
        description="Reproduce the tables and figures of the Air-FedGA paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments and workloads")

    run_p = sub.add_parser("run", help="run one experiment (fig3..fig10, table1, table3)")
    run_p.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_p.add_argument("--output", "-o", default=None, help="directory for JSON results")
    run_p.add_argument(
        "--scale", type=float, default=1.0,
        help="time-budget multiplier (>1 runs longer, closer to the paper scale)",
    )

    cmp_p = sub.add_parser("compare", help="compare mechanisms on one workload")
    cmp_p.add_argument("workload", choices=sorted(EXPERIMENT_CONFIGS))
    cmp_p.add_argument(
        "--mechanisms", nargs="+", default=list(AIRCOMP_MECHANISMS),
        # Any registered mechanism is comparable, including the FedProx /
        # FedDyn / FedAsync families beyond the paper's five figures.
        choices=sorted(MECHANISMS),
    )
    cmp_p.add_argument("--max-time", type=float, default=1500.0)
    cmp_p.add_argument("--workers", type=int, default=None)
    cmp_p.add_argument("--output", "-o", default=None)

    bench_p = sub.add_parser(
        "bench",
        help="time the vectorized engine vs the scalar reference path "
        "(appends to BENCH_<label>.json)",
    )
    bench_p.add_argument("--label", default="perf_v1")
    bench_p.add_argument("--output-dir", default=".")
    bench_p.add_argument("--quick", action="store_true")
    bench_p.add_argument("--workers", type=int, nargs="+", default=[10, 50, 200])
    bench_p.add_argument("--xl-only", action="store_true")
    bench_p.add_argument("--xl-workers", type=int, nargs="+", default=[10_000, 100_000])
    bench_p.add_argument("--xl-rounds", type=int, default=None)
    bench_p.add_argument("--xl-rss-budget-mb", type=float, default=None)
    bench_p.add_argument("--xl-jsonl", default=None)
    bench_p.add_argument("--convergence-only", action="store_true")
    bench_p.add_argument("--convergence-rounds", type=int, default=None)
    bench_p.add_argument("--convergence-jsonl", default=None)

    sweep_p = sub.add_parser(
        "sweep",
        help="expand a scenario-grid JSON spec (list-valued fields are sweep "
        "axes) and run every point concurrently, streaming JSONL summaries",
    )
    sweep_p.add_argument("spec", help="path to the sweep spec (Scenario JSON)")
    sweep_p.add_argument(
        "--output", "-o", default="sweep_results.jsonl",
        help="JSONL results file, one row per completed run",
    )
    sweep_p.add_argument(
        "--max-workers", type=int, default=None,
        help="process-pool size (default: min(grid size, cpu count))",
    )
    sweep_p.add_argument(
        "--serial", action="store_true",
        help="run grid points in-process instead of on a process pool",
    )
    sweep_p.add_argument(
        "--resume", action="store_true",
        help="reconcile the existing manifest/JSONL/cache and execute only "
        "missing, failed and in-flight grid points (identical seeds: the "
        "merged results are bit-identical to an uninterrupted run)",
    )
    sweep_p.add_argument(
        "--cache-dir", default=None,
        help="content-addressed run cache directory; completed points found "
        "there are reused and marked cache_hit in their JSONL row",
    )
    sweep_p.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write a consolidated sweep report (markdown, or HTML when "
        "PATH ends in .html) after the sweep finishes",
    )

    report_p = sub.add_parser(
        "report",
        help="consolidate a sweep JSONL results file into a markdown/HTML "
        "report (overview, per-axis aggregates, fault counters, failures)",
    )
    report_p.add_argument("jsonl", help="path to the sweep JSONL results file")
    report_p.add_argument(
        "--output", "-o", default=None,
        help="report path (.html renders HTML, anything else markdown); "
        "default: print markdown to stdout",
    )
    report_p.add_argument(
        "--format", choices=["markdown", "html"], default=None,
        help="force the output format (default: inferred from --output suffix)",
    )
    report_p.add_argument("--title", default="Sweep report")
    return parser


def _command_list() -> str:
    lines = ["Experiments (run):"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name}")
    lines.append("Workloads (compare):")
    for name in sorted(EXPERIMENT_CONFIGS):
        lines.append(f"  {name}")
    return "\n".join(lines)


def _command_compare(args: argparse.Namespace) -> str:
    config = EXPERIMENT_CONFIGS[args.workload]()
    overrides = {"max_time": args.max_time}
    if args.workers is not None:
        overrides["num_workers"] = args.workers
    config = config.scaled(**overrides)
    run = run_comparison(config, mechanisms=args.mechanisms)
    rows = []
    for name, history in run.histories.items():
        rows.append(
            (
                name,
                history.total_rounds,
                history.average_round_time(),
                history.final_accuracy,
                history.total_energy,
            )
        )
        if args.output:
            out_dir = Path(args.output)
            out_dir.mkdir(parents=True, exist_ok=True)
            history.save_json(out_dir / f"{args.workload}_{name}.json")
            history.save_csv(out_dir / f"{args.workload}_{name}.csv")
    return format_table(
        ["mechanism", "rounds", "avg round (s)", "final acc", "energy (J)"],
        rows,
        title=f"Comparison on {args.workload} ({config.num_workers} workers)",
    )


def _command_sweep(args: argparse.Namespace) -> str:
    from .sweep import SweepRunner, sweep_axes

    spec = json.loads(Path(args.spec).read_text())
    axes = sweep_axes(spec)
    runner = SweepRunner(
        spec,
        output=args.output,
        max_workers=args.max_workers,
        mode="serial" if args.serial else "processes",
        cache_dir=args.cache_dir,
        resume=args.resume,
    )
    print(
        f"sweep: {len(runner)} run(s) over {len(axes)} axis(es) "
        f"{sorted(axes) if axes else ''} -> {args.output}"
        f"{' (resuming)' if args.resume else ''}"
    )
    rows = runner.run()
    table_rows = []
    for row in rows:
        if "error" in row:
            table_rows.append(
                (row["scenario"], row.get("mechanism", "?"), "-", "-", "-", row["error"])
            )
            continue
        summary = row["summary"]
        table_rows.append(
            (
                row["scenario"],
                row["mechanism"],
                int(summary["rounds"]),
                f"{summary['final_accuracy']:.3f}",
                "hit" if row.get("cache_hit") else "-",
                row["parallelism_mode"],
            )
        )
    hits = sum(1 for row in rows if row.get("cache_hit"))
    text = format_table(
        ["scenario", "mechanism", "rounds", "final acc", "cache", "parallelism"],
        table_rows,
        title=(
            f"Sweep results ({len(rows)} runs, {hits} cache hit(s), "
            f"cpu_count={rows[0]['cpu_count']})"
        ),
    )
    if args.report:
        from .report import write_report

        path = write_report(rows, args.report, title=f"Sweep report: {args.spec}")
        text += f"\nreport written to {path}"
    return text


def _command_report(args: argparse.Namespace) -> str:
    from .report import load_rows, sweep_report, write_report

    rows = load_rows(args.jsonl)
    if args.output is None:
        return sweep_report(rows, fmt=args.format or "markdown", title=args.title)
    path = write_report(rows, args.output, fmt=args.format, title=args.title)
    return f"report over {len(rows)} row(s) written to {path}"


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by ``python -m repro.experiments``."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_command_list())
        return 0
    if args.command == "run":
        results = run_experiment(args.experiment, output=args.output, scale=args.scale)
        print(json.dumps(results, indent=2)[:2000])
        if args.output:
            print(f"\nfull results written to {Path(args.output) / (args.experiment + '.json')}")
        return 0
    if args.command == "compare":
        print(_command_compare(args))
        return 0
    if args.command == "sweep":
        print(_command_sweep(args))
        return 0
    if args.command == "report":
        print(_command_report(args))
        return 0
    if args.command == "bench":
        from .bench import main as bench_main

        bench_argv = ["--label", args.label, "--output-dir", args.output_dir]
        if args.quick:
            bench_argv.append("--quick")
        bench_argv += ["--workers"] + [str(w) for w in args.workers]
        if args.xl_only:
            bench_argv.append("--xl-only")
        bench_argv += ["--xl-workers"] + [str(w) for w in args.xl_workers]
        if args.xl_rounds is not None:
            bench_argv += ["--xl-rounds", str(args.xl_rounds)]
        if args.xl_rss_budget_mb is not None:
            bench_argv += ["--xl-rss-budget-mb", str(args.xl_rss_budget_mb)]
        if args.xl_jsonl:
            bench_argv += ["--xl-jsonl", args.xl_jsonl]
        if args.convergence_only:
            bench_argv.append("--convergence-only")
        if args.convergence_rounds is not None:
            bench_argv += ["--convergence-rounds", str(args.convergence_rounds)]
        if args.convergence_jsonl:
            bench_argv += ["--convergence-jsonl", args.convergence_jsonl]
        return bench_main(bench_argv)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
