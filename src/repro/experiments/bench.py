"""Performance benchmark harness for the vectorized training/aggregation engine.

Five tiers.  The first four time the *same* simulation twice — once on the
seed's sequential reference path (``engine="scalar"``: per-worker Python
loops, per-member aggregation accumulation, no power-control cache) and
once on the vectorized path (``engine="auto"``: group-batched matmuls,
allocation-free ``α @ A`` aggregation, memoized power control); the fifth
compares the vectorized path against itself with multiprocess group
execution on top:

1. **grouped_round** — one Air-FedGA grouped round on the MLP workload at
   10/50/200 workers (the Fig. 10 scalability axis);
2. **grouped_round_cnn** — the same grouped-round scenario on the fig4 CNN
   workload, exercising the batched Conv2D/MaxPool2D kernels (grouped
   im2col + one GEMM per layer per step for the whole group);
3. **cnn_mnist_mini** — a full fig4-style CNN-MNIST mini-run end to end
   (local training, aggregation, power control and evaluation cadence);
4. **aggregation_micro** — channel-level microbenchmarks of
   ``aircomp_aggregate`` and ``ideal_group_average`` against their
   reference loops at paper-scale model dimensions;
5. **grouped_round_mp** — the single-process batched engine against the
   :class:`~repro.parallel.ProcessGroupExecutor` (worker-process pool +
   shared-memory arenas, ``config.parallelism``);
6. **grouped_round_pipeline** — the process pool against itself with the
   pipelined event loop on top (``parallelism.pipeline``): each round's
   parent-side aggregation overlaps the next ready group's speculative
   training, so the measured delta is the aggregation time hidden behind
   training (see :func:`bench_grouped_round_pipeline`);
7. **mechanism_convergence** — a Table-1-style convergence probe of the
   mechanism families (FedAvg / FedProx / FedDyn / FedAsync / Air-FedGA)
   on one seeded label-skew workload: final loss/accuracy, simulated time
   and wall-clock per mechanism, so successive PRs track *convergence*
   regressions alongside the engine timings.

The ``grouped_round_mp`` / ``grouped_round_pipeline`` rows are annotated
with ``cpu_count`` so every record is self-describing: multiprocess and
pipeline speedups are only meaningful on a multi-core host (the
committed run 3 was recorded on a ``cpu_count: 1`` container and
therefore measures pure dispatch overhead — see docs/PERFORMANCE.md).
Both tiers *refuse* to run a configuration that silently resolved to
serial execution.

Results are appended to ``BENCH_<label>.json`` so successive PRs build a
benchmark trajectory.  Run via ``make bench``,
``python -m repro.experiments bench`` or ``benchmarks/perf/run_bench.py``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..channel.aircomp import (
    AirCompWorkspace,
    aircomp_aggregate,
    aircomp_aggregate_reference,
    ideal_group_average,
    ideal_group_average_reference,
)
from ..core.config import AirFedGAConfig, GroupingConfig, ParallelismConfig
from ..fl.base import FLExperiment
from ..fl.registry import build_trainer
from .configs import cnn_mnist_config, lr_mnist_config
from .runner import build_experiment

__all__ = [
    "bench_grouped_round",
    "bench_grouped_round_cnn",
    "bench_grouped_round_mp",
    "bench_grouped_round_pipeline",
    "bench_grouped_round_xl",
    "bench_cnn_mnist_mini",
    "bench_aggregation_micro",
    "bench_mechanism_convergence",
    "run_bench_suite",
    "write_bench_results",
    "main",
]

ENGINES = ("scalar", "auto")


def _time_grouped_rounds(
    make_config, num_workers: int, rounds_per_group: int, repeats: int
) -> Dict[str, object]:
    """Shared grouped-round timing loop: best-of-N per engine, interleaved.

    ``make_config(engine)`` returns the :class:`ExperimentConfig` to time on
    that engine.  Interleaving the engines across repeats means slow drift
    in machine load biases neither side.
    """
    timings: Dict[str, float] = {engine: float("inf") for engine in ENGINES}
    num_groups = 0
    total_rounds = 0
    for _ in range(repeats):
        for engine in ENGINES:
            experiment = build_experiment(make_config(engine))
            trainer = build_trainer("air_fedga", experiment)
            num_groups = len(trainer.groups)
            total_rounds = max(8, num_groups * rounds_per_group)
            start = time.perf_counter()
            trainer.run(max_rounds=total_rounds)
            timings[engine] = min(
                timings[engine], time.perf_counter() - start
            )
    per_round = {k: v / total_rounds for k, v in timings.items()}
    return {
        "num_workers": num_workers,
        "num_groups": num_groups,
        "rounds_timed": total_rounds,
        "scalar_s_per_round": per_round["scalar"],
        "batched_s_per_round": per_round["auto"],
        "speedup": per_round["scalar"] / per_round["auto"],
    }


def bench_grouped_round(
    num_workers: int, rounds_per_group: int = 3, repeats: int = 3
) -> Dict[str, object]:
    """Time Air-FedGA grouped rounds (scalar vs batched) at one worker count.

    Uses the fig3 benchmark scale (8×8 inputs, 32 hidden units, batch 32,
    5 local steps) with an IID partition so every worker trains the same
    batch geometry, and ξ = 1 so one grouped round aggregates the whole
    population — the configuration where the per-round cost is purest
    local-training + AirComp aggregation.
    """

    def make_config(engine: str):
        return lr_mnist_config(
            num_workers=num_workers,
            num_train=20 * num_workers,
            image_size=8,
            hidden=32,
            max_rounds=10_000,
        ).scaled(
            local_steps=5,
            batch_size=32,
            partition_strategy="iid",
            # Effectively disable per-round evaluation so the timing
            # isolates local training + aggregation (evaluation cost is
            # identical on both engines and would dilute the comparison).
            eval_every=1_000_000,
            max_eval_samples=32,
            engine=engine,
            config=AirFedGAConfig(grouping=GroupingConfig(xi=1.0)),
        )

    return _time_grouped_rounds(make_config, num_workers, rounds_per_group, repeats)


def bench_grouped_round_cnn(
    num_workers: int, rounds_per_group: int = 3, repeats: int = 3
) -> Dict[str, object]:
    """Time Air-FedGA grouped rounds on the fig4 CNN workload.

    Same scenario shape as :func:`bench_grouped_round` (IID partition,
    ξ = 1, evaluation disabled) but with the MNIST CNN — two 5×5 Conv2D
    layers with 2×2 max pooling and a dense head — so the measured delta is
    the batched Conv2D/MaxPool2D kernel path (grouped im2col, one GEMM per
    layer per step for the whole group) against the per-worker scalar
    convolutions.
    """

    def make_config(engine: str):
        return cnn_mnist_config(
            num_workers=num_workers,
            num_train=20 * num_workers,
            image_size=8,
            scale=0.15,
            max_rounds=10_000,
        ).scaled(
            local_steps=5,
            batch_size=32,
            partition_strategy="iid",
            eval_every=1_000_000,
            max_eval_samples=32,
            engine=engine,
            config=AirFedGAConfig(grouping=GroupingConfig(xi=1.0)),
        )

    return _time_grouped_rounds(make_config, num_workers, rounds_per_group, repeats)


def bench_grouped_round_mp(
    num_workers: int,
    rounds_per_group: int = 3,
    repeats: int = 3,
    num_processes: Optional[int] = None,
    parallelism: str = "processes",
) -> Dict[str, object]:
    """Time Air-FedGA grouped rounds: serial batched engine vs process pool.

    Both variants run ``engine="auto"`` on the MLP grouped-round scenario
    of :func:`bench_grouped_round`; the ``mp`` variant additionally sets
    ``config.parallelism`` to a :class:`ProcessGroupExecutor` pool of
    ``num_processes`` workers (default: ``os.cpu_count()``).  Serial and
    multiprocess results are bit-identical in float64, so the measured
    delta is pure execution overhead/parallelism.

    The tier refuses to mislabel a serial run as multiprocess: requesting
    ``parallelism="none"`` raises :class:`ValueError`, and a configuration
    that silently falls back to serial (no batched engine, unsupported
    model, pool failure) raises :class:`RuntimeError` instead of timing
    the serial path under the ``mp`` label.
    """
    if parallelism != "processes":
        raise ValueError(
            "bench_grouped_round_mp times the multiprocess executor; "
            f"parallelism={parallelism!r} would silently measure the serial "
            "path under the 'mp' label — use bench_grouped_round for serial "
            "engine comparisons"
        )
    procs = int(num_processes or os.cpu_count() or 1)

    def make_config(mode: str):
        par = (
            ParallelismConfig(
                mode="processes", num_processes=procs, min_group_size=2
            )
            if mode == "mp"
            else ParallelismConfig(mode="none")
        )
        return lr_mnist_config(
            num_workers=num_workers,
            num_train=20 * num_workers,
            image_size=8,
            hidden=32,
            max_rounds=10_000,
        ).scaled(
            local_steps=5,
            batch_size=32,
            partition_strategy="iid",
            eval_every=1_000_000,
            max_eval_samples=32,
            engine="auto",
            config=AirFedGAConfig(
                grouping=GroupingConfig(xi=1.0), parallelism=par
            ),
        )

    timings = {"serial": float("inf"), "mp": float("inf")}
    num_groups = 0
    total_rounds = 0
    for _ in range(repeats):
        for mode in ("serial", "mp"):
            experiment = build_experiment(make_config(mode))
            with build_trainer("air_fedga", experiment) as trainer:
                # Untimed warm-up: bind the engine's stacked buffers and —
                # on the mp side — force the lazy ProcessPoolExecutor to
                # actually spawn its workers, build their engines and
                # attach the shared-memory arenas (a pool only starts on
                # its first submit, so constructing the executor is not
                # enough).  The warm-up dispatch writes only into the
                # group-stack/arena buffers; trainer state is untouched.
                trainer.local_update_group(
                    trainer.groups[0], trainer.global_vector, 1
                )
                if mode == "mp" and not (
                    trainer.parallelism_active
                    and trainer._executor.dispatches > 0
                ):
                    # Refuse to record a run whose parallelism silently
                    # resolved to "none" (unsupported model, pool failure,
                    # min_group_size gating every group).
                    raise RuntimeError(
                        "grouped_round_mp requested multiprocess execution "
                        "but the trainer resolved to the serial path "
                        f"({trainer._executor_error or 'pool unavailable'}); "
                        "refusing to record a mislabeled trajectory"
                    )
                num_groups = len(trainer.groups)
                total_rounds = max(8, num_groups * rounds_per_group)
                start = time.perf_counter()
                trainer.run(max_rounds=total_rounds)
                timings[mode] = min(timings[mode], time.perf_counter() - start)
                if mode == "mp" and trainer._executor.fallbacks > 0:
                    # A pool that broke mid-run and exhausted its restart
                    # budget executed some rounds in-process; that timing
                    # is not a multiprocess measurement.
                    raise RuntimeError(
                        f"grouped_round_mp pool fell back to in-process "
                        f"execution {trainer._executor.fallbacks} time(s) "
                        "during the timed run; refusing to record a "
                        "mislabeled trajectory"
                    )
    per_round = {k: v / total_rounds for k, v in timings.items()}
    return {
        "num_workers": num_workers,
        "num_groups": num_groups,
        "rounds_timed": total_rounds,
        "num_processes": procs,
        "cpu_count": os.cpu_count(),
        "serial_s_per_round": per_round["serial"],
        "mp_s_per_round": per_round["mp"],
        "speedup": per_round["serial"] / per_round["mp"],
    }


def bench_grouped_round_pipeline(
    num_workers: int,
    rounds_per_group: int = 3,
    repeats: int = 3,
    num_processes: Optional[int] = None,
    parallelism: str = "processes",
) -> Dict[str, object]:
    """Time Air-FedGA grouped rounds: process pool vs pipelined process pool.

    Both variants run ``engine="auto"`` with a
    :class:`~repro.parallel.ProcessGroupExecutor` pool on a *multi-group*
    MLP scenario (ξ = 0.3, so several groups interleave on the event
    queue); the ``pipeline`` variant additionally sets
    ``parallelism.pipeline=True``, overlapping each round's parent-side
    AirComp aggregation with the next ready group's speculative training
    (the wall-clock win is the aggregation time hidden behind training —
    meaningful on a multi-core host, hence the ``cpu_count`` annotation).
    Histories stay bit-identical in float64, so the measured delta is pure
    phase overlap.

    Guards mirror :func:`bench_grouped_round_mp`: requesting
    ``parallelism="none"`` raises :class:`ValueError`; a configuration
    that silently resolves to serial execution, falls back in-process, or
    never gets a speculation accepted raises :class:`RuntimeError` rather
    than recording a mislabeled row.
    """
    if parallelism != "processes":
        raise ValueError(
            "bench_grouped_round_pipeline times the pipelined multiprocess "
            f"executor; parallelism={parallelism!r} would silently measure "
            "a serial path under the 'pipeline' label — use "
            "bench_grouped_round for serial engine comparisons"
        )
    procs = int(num_processes or os.cpu_count() or 1)

    def make_config(mode: str):
        par = ParallelismConfig(
            mode="processes",
            num_processes=procs,
            min_group_size=2,
            pipeline=(mode == "pipeline"),
        )
        return lr_mnist_config(
            num_workers=num_workers,
            num_train=20 * num_workers,
            image_size=8,
            hidden=32,
            max_rounds=10_000,
        ).scaled(
            local_steps=5,
            batch_size=32,
            partition_strategy="iid",
            eval_every=1_000_000,
            max_eval_samples=32,
            engine="auto",
            # ξ = 0.3 (the paper's operating point) so the event queue
            # holds several groups and the lookahead has a next entry to
            # speculate on — with ξ = 1 there is one group and nothing to
            # pipeline.
            config=AirFedGAConfig(
                grouping=GroupingConfig(xi=0.3), parallelism=par
            ),
        )

    timings = {"mp": float("inf"), "pipeline": float("inf")}
    num_groups = 0
    total_rounds = 0
    hits = 0
    recomputes = 0
    for _ in range(repeats):
        for mode in ("mp", "pipeline"):
            experiment = build_experiment(make_config(mode))
            with build_trainer("air_fedga", experiment) as trainer:
                # Untimed warm-up dispatch (see bench_grouped_round_mp):
                # spawns the pool workers, builds their engines and maps
                # the shared-memory arena slots.
                trainer.local_update_group(
                    trainer.groups[0], trainer.global_vector, 1
                )
                if not (
                    trainer.parallelism_active
                    and trainer._executor.dispatches > 0
                ):
                    raise RuntimeError(
                        "grouped_round_pipeline requested multiprocess "
                        "execution but the trainer resolved to the serial "
                        f"path ({trainer._executor_error or 'pool unavailable'}); "
                        "refusing to record a mislabeled trajectory"
                    )
                num_groups = len(trainer.groups)
                total_rounds = max(8, num_groups * rounds_per_group)
                start = time.perf_counter()
                history = trainer.run(max_rounds=total_rounds)
                timings[mode] = min(timings[mode], time.perf_counter() - start)
                if trainer._executor.fallbacks > 0:
                    raise RuntimeError(
                        f"grouped_round_pipeline pool fell back to in-process "
                        f"execution {trainer._executor.fallbacks} time(s) "
                        "during the timed run; refusing to record a "
                        "mislabeled trajectory"
                    )
                if mode == "pipeline":
                    hits = history.pipeline_hits
                    recomputes = history.pipeline_recomputes
                    if hits == 0:
                        raise RuntimeError(
                            "grouped_round_pipeline run accepted no "
                            "speculative result (0 pipeline hits): the "
                            "timing would measure the plain multiprocess "
                            "path under the 'pipeline' label; refusing to "
                            "record a mislabeled trajectory"
                        )
    per_round = {k: v / total_rounds for k, v in timings.items()}
    return {
        "num_workers": num_workers,
        "num_groups": num_groups,
        "rounds_timed": total_rounds,
        "num_processes": procs,
        "cpu_count": os.cpu_count(),
        "mp_s_per_round": per_round["mp"],
        "pipeline_s_per_round": per_round["pipeline"],
        "speedup": per_round["mp"] / per_round["pipeline"],
        "pipeline_hits": hits,
        "pipeline_recomputes": recomputes,
    }


def _build_xl_trainer(num_workers: int, group_size: int, shard_size: int = 64):
    """Construct the partition-less XL Air-FedGA trainer (lazy population).

    The whole point of the tier is that nothing here is O(num_workers) in
    Python objects or sample storage: the dataset is one small shared
    buffer served through :meth:`Population.replicated` (overlapping
    zero-copy windows), worker state lives in the struct-of-arrays
    :class:`~repro.core.population.WorkerStateTable`, and the grouping is
    the O(N) ``contiguous`` strategy (int64 block arrays, no per-worker
    lists anywhere in the event loop).
    """
    from .. import registry
    from ..core.population import Population
    from ..sim.latency import build_uniform_latency

    dataset = registry.create(
        "dataset",
        "synthetic-mnist",
        num_train=2048,
        num_test=256,
        image_size=8,
        seed=0,
    ).flattened()
    latency = build_uniform_latency(
        num_workers=num_workers, base_time=1.0, heterogeneity_seed=1, seed=2
    )
    channel = registry.create(
        "channel", "static", num_workers=num_workers, spread=2.0, seed=3
    )
    population = Population.replicated(
        dataset,
        num_workers=num_workers,
        shard_size=shard_size,
        latency=latency,
    )
    experiment = FLExperiment(
        dataset=dataset,
        partition=None,
        model_factory=lambda: registry.create(
            "model", "lr", input_dim=64, hidden=16, num_classes=10, seed=0
        ),
        latency=latency,
        channel=channel,
        config=AirFedGAConfig(grouping=GroupingConfig(xi=1.0)),
        learning_rate=0.1,
        local_steps=1,
        batch_size=32,
        eval_every=1_000_000,
        max_eval_samples=32,
        seed=0,
        engine="auto",
        population=population,
        materialization="lazy",
    )
    return build_trainer(
        "air_fedga",
        experiment,
        grouping_strategy="contiguous",
        num_groups=max(1, num_workers // group_size),
    )


def _xl_worker(num_workers: int, rounds: int, group_size: int, conn) -> None:
    """Subprocess entry of the XL tier.

    Runs in a fresh ``spawn`` process so ``ru_maxrss`` — a process-lifetime
    high-water mark on Linux — measures exactly this trainer's peak and
    not whatever larger tier ran earlier in the parent.
    """
    import resource

    build_start = time.perf_counter()
    trainer = _build_xl_trainer(num_workers, group_size)
    build_s = time.perf_counter() - build_start
    start = time.perf_counter()
    trainer.run(max_rounds=rounds)
    elapsed = time.perf_counter() - start
    peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    conn.send(
        {
            "num_workers": num_workers,
            "num_groups": len(trainer.groups),
            "group_size": group_size,
            "rounds_timed": rounds,
            "build_s": build_s,
            "s_per_round": elapsed / rounds,
            "rounds_per_sec": rounds / elapsed,
            "peak_rss_mb": peak_kb / 1024.0,
            "state_nbytes": int(trainer.worker_state.nbytes),
            "store_nbytes": int(trainer.population.store.nbytes),
            "materialization": "lazy",
        }
    )
    conn.close()


def bench_grouped_round_xl(
    num_workers: int,
    rounds: Optional[int] = None,
    group_size: int = 64,
    rss_budget_mb: Optional[float] = None,
) -> Dict[str, object]:
    """Time Air-FedGA event-loop rounds at 10k-1M workers, tracking peak RSS.

    Each worker count runs in its own freshly spawned subprocess and
    reports wall-clock per round plus ``getrusage`` peak RSS, so the rows
    are comparable across sizes and across runs.  ``rss_budget_mb`` turns
    the row into an assertion: a peak above the budget raises
    :class:`RuntimeError` instead of recording a regression silently (the
    CI smoke job runs the 10k tier under a 4 GB budget).

    The default round budget shrinks with the worker count (48 rounds at
    10k down to 8 at 1M) so the tier stays a smoke-scale measurement.
    """
    import multiprocessing as mp

    rounds = int(rounds or max(8, min(48, 2_000_000 // max(1, num_workers))))
    ctx = mp.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_xl_worker, args=(num_workers, rounds, group_size, child_conn)
    )
    proc.start()
    child_conn.close()
    try:
        row = parent_conn.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"grouped_round_xl subprocess for {num_workers} workers died "
            f"with exit code {proc.exitcode}"
        ) from None
    finally:
        parent_conn.close()
    proc.join()
    if rss_budget_mb is not None and row["peak_rss_mb"] > rss_budget_mb:
        raise RuntimeError(
            f"grouped_round_xl at {num_workers} workers peaked at "
            f"{row['peak_rss_mb']:.0f} MB RSS, over the "
            f"{rss_budget_mb:.0f} MB budget"
        )
    return row


def bench_cnn_mnist_mini(max_rounds: int = 12) -> Dict[str, object]:
    """Time a fig4-style CNN-MNIST mini-run end to end.

    Unlike the grouped-round tiers this keeps the fig4 label-skew
    partition and round structure; with the batched Conv2D/MaxPool2D
    kernels the ``auto`` engine now group-batches the CNN local training
    on top of the allocation-free aggregation and power-control cache."""
    timings: Dict[str, float] = {}
    for engine in ENGINES:
        config = cnn_mnist_config(
            num_workers=10, num_train=300, image_size=8, scale=0.1,
            max_rounds=max_rounds,
        ).scaled(
            local_steps=2, batch_size=32, eval_every=1_000_000,
            max_eval_samples=32, engine=engine,
        )
        experiment = build_experiment(config)
        trainer = build_trainer("air_fedga", experiment)
        start = time.perf_counter()
        trainer.run(max_rounds=max_rounds)
        timings[engine] = time.perf_counter() - start
    return {
        "max_rounds": max_rounds,
        "scalar_s": timings["scalar"],
        "vectorized_s": timings["auto"],
        "speedup": timings["scalar"] / timings["auto"],
    }


def bench_aggregation_micro(
    dim: int = 200_000, group_size: int = 16, repeats: int = 5
) -> Dict[str, object]:
    """Channel-level microbenchmark: vectorized vs reference aggregation."""
    rng = np.random.default_rng(0)
    models = rng.standard_normal((group_size, dim))
    sizes = rng.uniform(10.0, 100.0, group_size)
    gains = rng.uniform(0.5, 2.0, group_size)
    kwargs = dict(
        data_sizes=sizes, channel_gains=gains,
        sigma_t=1.0, eta_t=1.0, noise_std=0.01,
    )
    workspace = AirCompWorkspace()

    def _time(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    noise_rng = np.random.default_rng(1)
    t_ref_air = _time(
        lambda: aircomp_aggregate_reference(list(models), rng=noise_rng, **kwargs)
    )
    t_vec_air = _time(
        lambda: aircomp_aggregate(models, rng=noise_rng, workspace=workspace, **kwargs)
    )
    avg_out = np.empty(dim)
    t_ref_avg = _time(lambda: ideal_group_average_reference(list(models), sizes))
    t_vec_avg = _time(lambda: ideal_group_average(models, sizes, out=avg_out))
    return {
        "dim": dim,
        "group_size": group_size,
        "aircomp_reference_s": t_ref_air,
        "aircomp_vectorized_s": t_vec_air,
        "aircomp_speedup": t_ref_air / t_vec_air,
        "average_reference_s": t_ref_avg,
        "average_vectorized_s": t_vec_avg,
        "average_speedup": t_ref_avg / t_vec_avg,
    }


#: The mechanism families compared by the convergence tier: the paper's
#: grouped mechanism plus the synchronous-regularized and asynchronous
#: baselines added for the Table-1-style comparison.
MECHANISM_FAMILIES = (
    ("fedavg", {}),
    ("fedprox", {"mu": 0.05}),
    ("feddyn", {"alpha_coef": 0.05}),
    ("fedasync", {}),
    ("air_fedga", {}),
)


def bench_mechanism_convergence(
    max_rounds: int = 20,
    num_workers: int = 10,
    families: Sequence = MECHANISM_FAMILIES,
) -> List[Dict[str, object]]:
    """Convergence probe of the mechanism families on one seeded workload.

    Every family runs the same label-skew LR-MNIST scenario (the fig3
    shape at smoke scale, fixed seed, ``engine="auto"``) for
    ``max_rounds`` global rounds — FedAsync counts per-update commits as
    rounds, so all rows spend a comparable number of local-training
    dispatches.  Rows record the convergence endpoints (first/final loss,
    final accuracy), the simulated round clock and the wall-clock cost,
    plus the mean recorded staleness (non-zero only for the asynchronous
    mechanisms).  Unlike the timing tiers this is a *trajectory* record:
    a change in ``final_loss`` at fixed seed means the mechanism's math
    changed, not just its speed.
    """
    rows: List[Dict[str, object]] = []
    for name, params in families:
        config = lr_mnist_config(
            num_workers=num_workers,
            num_train=30 * num_workers,
            image_size=8,
            hidden=16,
            max_rounds=max_rounds,
        ).scaled(
            local_steps=2,
            batch_size=16,
            eval_every=1,
            max_eval_samples=64,
            engine="auto",
        )
        experiment = build_experiment(config)
        trainer = build_trainer(name, experiment, **params)
        start = time.perf_counter()
        history = trainer.run(max_rounds=max_rounds)
        wall = time.perf_counter() - start
        losses = [v for v in history.losses() if np.isfinite(v)]
        staleness = [
            r.staleness for r in history.records if r.num_participants > 0
        ]
        rows.append(
            {
                "mechanism": name,
                "params": dict(params),
                "num_workers": num_workers,
                "rounds": history.total_rounds,
                "initial_loss": float(losses[0]),
                "final_loss": float(losses[-1]),
                "final_accuracy": float(history.final_accuracy),
                "sim_time_s": float(history.total_time),
                "wall_s": wall,
                "mean_staleness": float(np.mean(staleness)) if staleness else 0.0,
            }
        )
    return rows


# ----------------------------------------------------------------------
def run_bench_suite(
    quick: bool = False,
    worker_counts: Sequence[int] = (10, 50, 200),
    num_processes: Optional[int] = None,
    xl_worker_counts: Sequence[int] = (10_000, 100_000),
    xl_rounds: Optional[int] = None,
    xl_rss_budget_mb: Optional[float] = None,
) -> Dict[str, object]:
    """Run all eight tiers and return one results record."""
    if quick:
        worker_counts = tuple(w for w in worker_counts if w <= 50) or (10,)
        xl_worker_counts = tuple(w for w in xl_worker_counts if w <= 10_000) or (
            10_000,
        )
    rounds_per_group = 1 if quick else 3
    repeats = 1 if quick else 3
    grouped = [
        bench_grouped_round(w, rounds_per_group=rounds_per_group, repeats=repeats)
        for w in worker_counts
    ]
    grouped_cnn = [
        bench_grouped_round_cnn(w, rounds_per_group=rounds_per_group, repeats=repeats)
        for w in worker_counts
    ]
    grouped_mp = [
        bench_grouped_round_mp(
            w,
            rounds_per_group=rounds_per_group,
            repeats=repeats,
            num_processes=num_processes,
        )
        for w in worker_counts
    ]
    grouped_pipeline = [
        bench_grouped_round_pipeline(
            w,
            rounds_per_group=rounds_per_group,
            repeats=repeats,
            num_processes=num_processes,
        )
        for w in worker_counts
    ]
    grouped_xl = [
        bench_grouped_round_xl(
            w, rounds=xl_rounds, rss_budget_mb=xl_rss_budget_mb
        )
        for w in xl_worker_counts
    ]
    cnn = bench_cnn_mnist_mini(max_rounds=4 if quick else 12)
    micro = bench_aggregation_micro(
        dim=50_000 if quick else 200_000, repeats=3 if quick else 5
    )
    convergence = bench_mechanism_convergence(max_rounds=8 if quick else 20)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "quick": quick,
        "grouped_round": grouped,
        "grouped_round_cnn": grouped_cnn,
        "grouped_round_mp": grouped_mp,
        "grouped_round_pipeline": grouped_pipeline,
        "grouped_round_xl": grouped_xl,
        "cnn_mnist_mini": cnn,
        "aggregation_micro": micro,
        "mechanism_convergence": convergence,
    }


def write_bench_results(
    record: Dict[str, object], label: str = "perf_v1", output_dir: str | Path = "."
) -> Path:
    """Append one benchmark record to ``BENCH_<label>.json``."""
    path = Path(output_dir) / f"BENCH_{label}.json"
    if path.exists():
        data = json.loads(path.read_text())
        if not isinstance(data.get("runs"), list):
            data = {"label": label, "runs": []}
    else:
        data = {"label": label, "runs": []}
    data["runs"].append(record)
    path.write_text(json.dumps(data, indent=2))
    return path


def format_bench_summary(record: Dict[str, object]) -> str:
    lines = ["Perf benchmark summary (scalar reference vs vectorized engine):"]
    for key, label in (
        ("grouped_round", "grouped round (MLP)"),
        ("grouped_round_cnn", "grouped round (CNN)"),
    ):
        for row in record.get(key, []):
            lines.append(
                f"  {label}, {row['num_workers']:4d} workers "
                f"({row['num_groups']} groups): "
                f"{row['scalar_s_per_round'] * 1e3:8.1f} ms -> "
                f"{row['batched_s_per_round'] * 1e3:8.1f} ms  "
                f"({row['speedup']:.2f}x)"
            )
    for row in record.get("grouped_round_mp", []):
        lines.append(
            f"  grouped round (MLP, serial vs {row['num_processes']}-process pool "
            f"on {row['cpu_count']} cores), {row['num_workers']:4d} workers "
            f"({row['num_groups']} groups): "
            f"{row['serial_s_per_round'] * 1e3:8.1f} ms -> "
            f"{row['mp_s_per_round'] * 1e3:8.1f} ms  "
            f"({row['speedup']:.2f}x)"
        )
    for row in record.get("grouped_round_pipeline", []):
        lines.append(
            f"  grouped round (MLP, {row['num_processes']}-process pool vs "
            f"pipelined, on {row['cpu_count']} cores), "
            f"{row['num_workers']:4d} workers ({row['num_groups']} groups): "
            f"{row['mp_s_per_round'] * 1e3:8.1f} ms -> "
            f"{row['pipeline_s_per_round'] * 1e3:8.1f} ms  "
            f"({row['speedup']:.2f}x, {row['pipeline_hits']} hits / "
            f"{row['pipeline_recomputes']} recomputes)"
        )
    for row in record.get("grouped_round_xl", []):
        lines.append(
            f"  grouped round XL (lazy population), "
            f"{row['num_workers']:>9,d} workers ({row['num_groups']} groups "
            f"of {row['group_size']}): "
            f"{row['s_per_round'] * 1e3:8.1f} ms/round "
            f"({row['rounds_per_sec']:.1f} rounds/s), "
            f"peak RSS {row['peak_rss_mb']:.0f} MB, "
            f"build {row['build_s']:.2f} s"
        )
    cnn = record.get("cnn_mnist_mini")
    if cnn:
        lines.append(
            f"  CNN-MNIST mini-run ({cnn['max_rounds']} rounds): "
            f"{cnn['scalar_s']:.2f} s -> {cnn['vectorized_s']:.2f} s "
            f"({cnn['speedup']:.2f}x)"
        )
    micro = record.get("aggregation_micro")
    if micro:
        lines.append(
            f"  aircomp_aggregate micro (q={micro['dim']}, G={micro['group_size']}): "
            f"{micro['aircomp_speedup']:.2f}x; ideal average: "
            f"{micro['average_speedup']:.2f}x"
        )
    for row in record.get("mechanism_convergence", []):
        params = ", ".join(f"{k}={v}" for k, v in row["params"].items())
        lines.append(
            f"  convergence {row['mechanism']:>10s}"
            f"({params}): loss {row['initial_loss']:.3f} -> "
            f"{row['final_loss']:.3f}, acc {row['final_accuracy']:.3f} "
            f"in {row['rounds']} rounds "
            f"(sim {row['sim_time_s']:.0f} s, wall {row['wall_s']:.2f} s, "
            f"mean staleness {row['mean_staleness']:.1f})"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.experiments.bench",
        description="Time the vectorized engine against the scalar reference path.",
    )
    parser.add_argument("--label", default="perf_v1", help="suffix of BENCH_<label>.json")
    parser.add_argument("--output-dir", default=".", help="where to write the JSON")
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller sizes / fewer repeats (CI smoke mode)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=[10, 50, 200],
        help="worker counts for the grouped-round tier",
    )
    parser.add_argument(
        "--processes", type=int, default=None,
        help="pool size for the grouped_round_mp tier (default: cpu count)",
    )
    parser.add_argument(
        "--xl-only", action="store_true",
        help="run only the grouped_round_xl tier (CI smoke / scale probes)",
    )
    parser.add_argument(
        "--xl-workers", type=int, nargs="+", default=[10_000, 100_000],
        help="worker counts for the grouped_round_xl tier",
    )
    parser.add_argument(
        "--xl-rounds", type=int, default=None,
        help="rounds per XL size (default scales down with the worker count)",
    )
    parser.add_argument(
        "--xl-rss-budget-mb", type=float, default=None,
        help="fail if any XL row's peak RSS exceeds this many MB",
    )
    parser.add_argument(
        "--xl-jsonl", default=None,
        help="also write the XL rows to this JSONL file (CI artifact)",
    )
    parser.add_argument(
        "--convergence-only", action="store_true",
        help="run only the mechanism_convergence tier (CI smoke job)",
    )
    parser.add_argument(
        "--convergence-rounds", type=int, default=None,
        help="rounds for the mechanism_convergence tier (default 20, 8 with --quick)",
    )
    parser.add_argument(
        "--convergence-jsonl", default=None,
        help="also write the convergence rows to this JSONL file (CI artifact)",
    )
    args = parser.parse_args(argv)
    if args.xl_only:
        record: Dict[str, object] = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "quick": args.quick,
            "grouped_round_xl": [
                bench_grouped_round_xl(
                    w,
                    rounds=args.xl_rounds,
                    rss_budget_mb=args.xl_rss_budget_mb,
                )
                for w in args.xl_workers
            ],
        }
    elif args.convergence_only:
        record = {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "quick": args.quick,
            "mechanism_convergence": bench_mechanism_convergence(
                max_rounds=args.convergence_rounds
                or (8 if args.quick else 20)
            ),
        }
    else:
        record = run_bench_suite(
            quick=args.quick,
            worker_counts=tuple(args.workers),
            num_processes=args.processes,
            xl_worker_counts=tuple(args.xl_workers),
            xl_rounds=args.xl_rounds,
            xl_rss_budget_mb=args.xl_rss_budget_mb,
        )
    if args.xl_jsonl:
        jsonl_path = Path(args.xl_jsonl)
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        with jsonl_path.open("w") as fh:
            for row in record.get("grouped_round_xl", []):
                fh.write(json.dumps(row) + "\n")
        print(f"wrote XL rows to {jsonl_path}")
    if args.convergence_jsonl:
        jsonl_path = Path(args.convergence_jsonl)
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        with jsonl_path.open("w") as fh:
            for row in record.get("mechanism_convergence", []):
                fh.write(json.dumps(row) + "\n")
        print(f"wrote convergence rows to {jsonl_path}")
    path = write_bench_results(record, label=args.label, output_dir=args.output_dir)
    print(format_bench_summary(record))
    print(f"appended results to {path}")
    return 0
