"""Plain-text reporting helpers used by the benchmark harness.

The paper reports results as figures; this reproduction prints the same
series as aligned text tables so they can be diffed, logged by
pytest-benchmark, and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "format_series",
    "format_float",
    "format_mapping",
]


def format_float(value: Optional[float], precision: int = 3) -> str:
    """Format a possibly-missing float for table output."""
    if value is None:
        return "-"
    if isinstance(value, float) and (value != value):  # NaN
        return "nan"
    if isinstance(value, float) and value == float("inf"):
        return "inf"
    return f"{value:.{precision}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        rendered_rows.append(
            [
                format_float(cell, precision) if isinstance(cell, float) or cell is None
                else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows)) if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 3,
) -> str:
    """Render rows as a GitHub-flavoured markdown table.

    Cell formatting matches :func:`format_table` (floats through
    :func:`format_float`, ``None`` as ``-``); pipes in cell text are
    escaped so a value can never break the table structure.  Used by the
    sweep report generator (:mod:`repro.experiments.report`).
    """
    if not headers:
        raise ValueError("headers must be non-empty")

    def cell(value: object) -> str:
        if isinstance(value, float) or value is None:
            text = format_float(value, precision)
        else:
            text = str(value)
        return text.replace("|", "\\|")

    lines = ["| " + " | ".join(cell(h) for h in headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Mapping[str, Iterable[float]]],
    x_key: str = "time",
    y_key: str = "accuracy",
    max_points: int = 10,
    precision: int = 3,
) -> str:
    """Render {name: {x_key: [...], y_key: [...]}} curves as text."""
    lines: List[str] = []
    for name, data in series.items():
        xs = list(data[x_key])
        ys = list(data[y_key])
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r} has mismatched x/y lengths")
        step = max(1, len(xs) // max_points)
        pts = ", ".join(
            f"({format_float(float(x), 1)}, {format_float(float(y), precision)})"
            for x, y in list(zip(xs, ys))[::step]
        )
        lines.append(f"{name}: {pts}")
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], title: str | None = None) -> str:
    """Render a flat mapping as 'key: value' lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in mapping.items():
        if isinstance(value, float):
            lines.append(f"  {key}: {format_float(value)}")
        else:
            lines.append(f"  {key}: {value}")
    return "\n".join(lines)
