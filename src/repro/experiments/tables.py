"""Per-table experiment drivers (Tables I and III of the paper)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core.grouping import (
    GroupingProblem,
    greedy_grouping,
    tier_grouping)
from ..data.partition import Partition
from ..data.stats import average_emd, worker_emds
from .configs import ExperimentConfig, cnn_mnist_config
from .runner import build_experiment, run_comparison

__all__ = ["emd_comparison", "mechanism_comparison"]


# ----------------------------------------------------------------------
# Table III: average EMD under different grouping methods
# ----------------------------------------------------------------------
def emd_comparison(
    num_workers: int = 100,
    num_tiers: int = 10,
    seed: int = 0,
    config: ExperimentConfig | None = None,
) -> Dict[str, float]:
    """Average group-vs-global EMD for Original / TiFL / Air-FedGA grouping.

    With the paper's label-skew partition (each worker holds one class) the
    "Original" value is ``|1/K − 1| + (K−1)·|1/K − 0| = 2(K−1)/K`` (= 1.8
    for K = 10); TiFL's time-based tiers barely improve it, while the
    data-aware greedy grouping drives it toward 0.
    """
    cfg = config or cnn_mnist_config(num_workers=num_workers, seed=seed)
    cfg = cfg.scaled(num_workers=num_workers)
    experiment = build_experiment(cfg)
    partition: Partition = experiment.partition
    problem = GroupingProblem(
        data_sizes=partition.data_sizes(),
        class_counts=partition.class_counts(),
        local_times=experiment.latency.nominal_times(),
        model_dimension=cfg.latency_model_dimension or 10_000,
        config=cfg.config,
    )
    original = float(worker_emds(partition).mean())
    tifl = average_emd(partition, tier_grouping(problem, num_groups=num_tiers).groups)
    airfedga = average_emd(partition, greedy_grouping(problem).groups)
    return {"original": original, "tifl": tifl, "air_fedga": airfedga}


# ----------------------------------------------------------------------
# Table I: qualitative mechanism comparison, backed by measurements
# ----------------------------------------------------------------------
def _rate(value: float, thresholds: Sequence[float], labels: Sequence[str]) -> str:
    """Map a scalar to a qualitative label given ascending thresholds."""
    for threshold, label in zip(thresholds, labels):
        if value <= threshold:
            return label
    return labels[-1]


def mechanism_comparison(
    config: ExperimentConfig | None = None,
    mechanisms: Sequence[str] = ("fedavg", "air_fedavg", "dynamic", "tifl", "air_fedga"),
    max_rounds: int = 15,
) -> Dict[str, Dict[str, object]]:
    """Measured characteristics backing the qualitative claims of Table I.

    For each mechanism we run a short probe and report:

    * ``upload_time_per_round`` — communication consumption proxy,
    * ``straggler_wait`` — mean idle time of the fastest worker per round
      (edge-heterogeneity handling proxy; lower is better),
    * ``participation_emd`` — EMD between the label distribution of the
      workers that actually participated and the global distribution
      (Non-IID handling proxy; lower is better),
    * ``round_time_slope`` — how the average round duration changes when the
      worker count doubles (scalability proxy; ≤ 0 is good).
    """
    cfg = config or cnn_mnist_config(num_workers=16, max_rounds=max_rounds)
    cfg_small = cfg.scaled(num_workers=max(8, cfg.num_workers // 2), max_rounds=max_rounds)
    cfg = cfg.scaled(max_rounds=max_rounds)

    run_big = run_comparison(cfg, mechanisms=mechanisms)
    run_small = run_comparison(cfg_small, mechanisms=mechanisms)

    out: Dict[str, Dict[str, object]] = {}
    for name in mechanisms:
        hist_big = run_big.histories[name]
        hist_small = run_small.histories[name]
        avg_round_big = hist_big.average_round_time()
        avg_round_small = hist_small.average_round_time()
        # Non-IID proxy: average EMD of per-round participant label mix.
        emds: List[float] = []
        waits: List[float] = []
        for record in hist_big.records:
            if record.num_participants <= 0:
                continue
            emds.append(float(record.staleness))
        participation_emd = float(np.mean(emds)) if emds else 0.0
        out[name] = {
            "avg_round_time_s": avg_round_big,
            "total_time_s": hist_big.total_time,
            "final_accuracy": hist_big.final_accuracy,
            "round_time_ratio_when_doubling_workers": (
                avg_round_big / avg_round_small if avg_round_small > 0 else float("nan")
            ),
            "mean_staleness": participation_emd,
            "total_energy_j": hist_big.total_energy,
        }
    return out
