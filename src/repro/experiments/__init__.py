"""Experiment harness reproducing the paper's tables and figures."""

from .configs import (
    EXPERIMENT_CONFIGS,
    ExperimentConfig,
    cnn_cifar10_config,
    cnn_mnist_config,
    lr_mnist_config,
    vgg_imagenet100_config,
)
from .runner import ExperimentRun, build_experiment, run_comparison, run_mechanism
from .scenario import ComponentSpec, DataSpec, FaultSpec, Scenario, TimingSpec, TrainingSpec
from .runcache import RunCache, canonical_spec, spec_hash
from .sweep import SweepManifest, SweepRunner, expand_grid, sweep_axes, sweep_points
from .report import load_rows, sweep_report, write_report
from .figures import (
    ALL_MECHANISMS,
    AIRCOMP_MECHANISMS,
    energy_vs_accuracy,
    grouping_boxplot_data,
    loss_accuracy_vs_time,
    scalability_sweep,
    xi_sweep,
)
from .tables import emd_comparison, mechanism_comparison
from .reporting import format_float, format_mapping, format_series, format_table
from .cli import EXPERIMENTS, run_experiment
from .bench import (
    bench_aggregation_micro,
    bench_cnn_mnist_mini,
    bench_grouped_round,
    run_bench_suite,
    write_bench_results,
)

__all__ = [
    "ExperimentConfig",
    "EXPERIMENT_CONFIGS",
    "lr_mnist_config",
    "cnn_mnist_config",
    "cnn_cifar10_config",
    "vgg_imagenet100_config",
    "ExperimentRun",
    "build_experiment",
    "run_mechanism",
    "run_comparison",
    "Scenario",
    "ComponentSpec",
    "DataSpec",
    "TimingSpec",
    "TrainingSpec",
    "FaultSpec",
    "RunCache",
    "canonical_spec",
    "spec_hash",
    "SweepManifest",
    "SweepRunner",
    "expand_grid",
    "sweep_axes",
    "sweep_points",
    "load_rows",
    "sweep_report",
    "write_report",
    "loss_accuracy_vs_time",
    "grouping_boxplot_data",
    "xi_sweep",
    "energy_vs_accuracy",
    "scalability_sweep",
    "AIRCOMP_MECHANISMS",
    "ALL_MECHANISMS",
    "emd_comparison",
    "mechanism_comparison",
    "format_table",
    "format_series",
    "format_mapping",
    "format_float",
    "EXPERIMENTS",
    "run_experiment",
    "bench_grouped_round",
    "bench_cnn_mnist_mini",
    "bench_aggregation_micro",
    "run_bench_suite",
    "write_bench_results",
]
