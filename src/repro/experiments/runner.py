"""Experiment runner: build an FLExperiment from a config and run mechanisms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


from .. import registry
from ..data.partition import Partition
from ..data.synthetic import Dataset
from ..fl.base import FLExperiment
from ..fl.history import TrainingHistory
from ..fl.registry import build_trainer
from ..sim.latency import HeterogeneityModel, LatencyTable
from .configs import ExperimentConfig

__all__ = ["ExperimentRun", "build_experiment", "run_mechanism", "run_comparison"]


@dataclass
class ExperimentRun:
    """The result of running one or more mechanisms on one configuration."""

    config: ExperimentConfig
    histories: Dict[str, TrainingHistory] = field(default_factory=dict)

    def summary_rows(self) -> List[Dict[str, float]]:
        return [h.summary() for h in self.histories.values()]

    def time_to_accuracy(self, target: float) -> Dict[str, Optional[float]]:
        return {
            name: h.time_to_accuracy(target) for name, h in self.histories.items()
        }


#: Per-strategy keyword arguments sourced from :class:`ExperimentConfig`
#: fields (the registry builders take them by name).
_PARTITION_EXTRAS = {
    "label-skew": lambda config: {"labels_per_worker": config.labels_per_worker},
    "dirichlet": lambda config: {"alpha": config.dirichlet_alpha},
}


def _build_partition(config: ExperimentConfig, dataset: Dataset) -> Partition:
    """Build the configured partition via the ``"partitioner"`` registry.

    Unknown strategies raise :class:`~repro.registry.UnknownComponentError`
    (a ``KeyError``) with close-match suggestions.
    """
    builder = registry.get("partitioner", config.partition_strategy)
    extras = _PARTITION_EXTRAS.get(config.partition_strategy, lambda _: {})(config)
    return builder(
        dataset, num_workers=config.num_workers, seed=config.seed, **extras
    )


def build_experiment(config: ExperimentConfig) -> FLExperiment:
    """Materialize an :class:`FLExperiment` from a declarative config."""
    dataset = config.dataset_factory()
    if config.flatten_inputs:
        dataset = dataset.flattened()
    partition = _build_partition(config, dataset)
    heterogeneity = HeterogeneityModel(
        num_workers=config.num_workers,
        kappa_min=config.kappa_min,
        kappa_max=config.kappa_max,
        seed=config.seed + 1,
    )
    latency = LatencyTable(
        num_workers=config.num_workers,
        base_time=config.base_local_time,
        heterogeneity=heterogeneity,
        seed=config.seed + 2,
    )
    channel = registry.create(
        "channel",
        config.channel_kind,
        num_workers=config.num_workers,
        seed=config.seed + 3,
        **config.channel_params,
    )
    # Device-realism layer: the client-state model continues the seed
    # ladder at seed+4 (matching Scenario.build_experiment).
    clientstate = registry.create(
        "clientstate",
        config.clientstate_kind,
        num_workers=config.num_workers,
        seed=config.seed + 4,
        **config.clientstate_params,
    )
    return FLExperiment(
        dataset=dataset,
        partition=partition,
        model_factory=config.model_factory,
        latency=latency,
        channel=channel,
        config=config.config,
        learning_rate=config.learning_rate,
        local_steps=config.local_steps,
        batch_size=config.batch_size,
        eval_every=config.eval_every,
        max_eval_samples=config.max_eval_samples,
        seed=config.seed,
        latency_model_dimension=config.latency_model_dimension,
        engine=config.engine,
        clientstate=clientstate,
        fault=config.fault,
        materialization=config.materialization,
    )


def run_mechanism(
    config: ExperimentConfig, mechanism: str, **trainer_kwargs
) -> TrainingHistory:
    """Run a single mechanism on a configuration and return its history."""
    experiment = build_experiment(config)
    trainer = build_trainer(mechanism, experiment, **trainer_kwargs)
    return trainer.run(max_rounds=config.max_rounds, max_time=config.max_time)


def run_comparison(
    config: ExperimentConfig,
    mechanisms: Sequence[str] = ("air_fedga", "air_fedavg", "dynamic"),
    trainer_kwargs: Optional[Dict[str, Dict]] = None,
) -> ExperimentRun:
    """Run several mechanisms on the *same* configuration (Figs. 3-6 style).

    Every mechanism gets a freshly built experiment with identical data,
    partition, heterogeneity and channel (same seeds), so the comparison
    isolates the mechanism itself.
    """
    trainer_kwargs = trainer_kwargs or {}
    run = ExperimentRun(config=config)
    for name in mechanisms:
        history = run_mechanism(config, name, **trainer_kwargs.get(name, {}))
        run.histories[name] = history
    return run
