"""Content-addressed cache of completed scenario runs.

Every resolved :class:`~repro.experiments.scenario.Scenario` document has
a canonical form (:func:`canonical_spec`: shorthand expanded, defaults
filled in, the display ``name`` dropped) and therefore a stable
content address (:func:`spec_hash`: SHA-256 over version-salted canonical
JSON).  Two specs hash equal **iff** they describe the same simulation —
dict key order, ``ComponentSpec`` shorthand vs expanded form, and the
grid-point naming applied by :func:`~repro.experiments.sweep.sweep_points`
are all normalized away, while changing any resolved leaf (a seed, a
fault parameter, ``data.materialization``, …) changes the hash.

:class:`RunCache` keys a directory of completed run summaries by that
hash: re-launching a sweep against the same cache directory skips every
grid point whose result is already known, and
:class:`~repro.experiments.sweep.SweepRunner` records the reuse as
``cache_hit: true`` on the emitted JSONL row.  Only *successful* rows are
cached — error rows always re-execute.  Entries are version-salted with
:data:`CACHE_VERSION`, so bumping it (when row semantics change) simply
orphans old entries instead of serving stale shapes.

All cache and manifest writes go through :func:`atomic_write_json`
(temp file + ``os.replace`` in the target directory), so a sweep killed
mid-write can never leave a torn JSON document behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional

__all__ = [
    "CACHE_VERSION",
    "RunCache",
    "atomic_write_json",
    "canonical_spec",
    "grid_hash",
    "spec_hash",
]

#: Salt mixed into every :func:`spec_hash`.  Bump when the meaning of a
#: cached row changes (summary semantics, seed discipline, …): old cache
#: entries then simply never hit again.
CACHE_VERSION = "sweep-cache-v1"

#: Row keys that describe a point's position in one particular grid, not
#: the simulation itself; they are stripped before caching and rebuilt
#: from the hitting grid point.
_PER_GRID_KEYS = ("index", "scenario", "overrides", "attempts", "cache_hit")


def atomic_write_json(path: Path, document: Mapping[str, Any], indent: int = 2) -> Path:
    """Write ``document`` to ``path`` atomically (temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, indent=indent)
            handle.write("\n")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def canonical_spec(spec: Any) -> Dict[str, Any]:
    """The canonical resolved document of a scenario spec.

    Accepts a :class:`~repro.experiments.scenario.Scenario` or any mapping
    it can be built from (shorthand component names, missing sections).
    Resolution through the Scenario constructor expands every shorthand
    and fills every default, so equivalent specs canonicalize identically.
    The display ``name`` is dropped: it labels a run (``grid#3``) but does
    not change what is simulated.
    """
    from .scenario import Scenario  # local import: scenario imports stay acyclic

    scenario = spec if isinstance(spec, Scenario) else Scenario.from_dict(spec)
    document = scenario.to_dict()
    document.pop("name", None)
    return document


def spec_hash(spec: Any) -> str:
    """The content address of a resolved scenario spec (SHA-256 hex).

    Invariants (enforced by ``tests/experiments/test_runcache.py``):

    * independent of dict key order and of shorthand vs expanded
      ``ComponentSpec`` forms (both canonicalize identically);
    * independent of the scenario ``name``;
    * changes whenever any resolved leaf changes — including ``faults``
      and ``data.materialization``;
    * salted with :data:`CACHE_VERSION`.
    """
    payload = json.dumps(
        {"version": CACHE_VERSION, "spec": canonical_spec(spec)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def grid_hash(point_hashes: Iterable[str]) -> str:
    """One address for a whole expanded grid (order-sensitive).

    A sweep manifest stores this so ``--resume`` can refuse to merge
    progress from a *different* grid (edited spec file, reordered axes)
    instead of silently mixing results.
    """
    payload = "\n".join(point_hashes)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RunCache:
    """A directory of completed run rows keyed by :func:`spec_hash`.

    Layout: ``root/<hash[:2]>/<hash>.json`` (two-level fan-out keeps
    directories small on thousand-point grids).  Each entry stores the
    grid-independent part of one successful JSONL row plus the hash and
    cache version it was written under; :meth:`get` re-validates both, so
    a corrupted or version-skewed entry reads as a miss, never as a wrong
    result.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, hash_: str) -> Path:
        """Where the entry for ``hash_`` lives (whether or not it exists)."""
        return self.root / hash_[:2] / f"{hash_}.json"

    def get(self, hash_: str) -> Optional[Dict[str, Any]]:
        """The cached grid-independent row for ``hash_``, or ``None``."""
        path = self.path_for(hash_)
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("cache_version") != CACHE_VERSION:
            return None
        if entry.get("spec_hash") != hash_:
            return None
        row = entry.get("row")
        if not isinstance(row, dict) or "summary" not in row:
            return None
        return dict(row)

    def put(self, hash_: str, row: Mapping[str, Any]) -> Path:
        """Cache one successful sweep row under ``hash_`` (atomic write).

        Error rows are rejected: a failure must re-execute on the next
        launch, never be replayed from cache.
        """
        if "summary" not in row or "error" in row:
            raise ValueError("only successful rows (with a 'summary') are cacheable")
        payload = {k: v for k, v in row.items() if k not in _PER_GRID_KEYS}
        return atomic_write_json(
            self.path_for(hash_),
            {"cache_version": CACHE_VERSION, "spec_hash": hash_, "row": payload},
        )

    def __contains__(self, hash_: str) -> bool:
        return self.get(hash_) is not None

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
