"""Concurrent, resumable scenario-grid sweeps with streamed JSONL results.

A *sweep spec* is a scenario document (:meth:`Scenario.to_dict` shape, or
any subset of it) in which any scalar leaf may instead hold a **list of
values**; every list is a sweep axis and the grid is their cross product::

    {
      "name": "xi-vs-seed",
      "seed": [0, 1, 2],
      "algorithm": {"grouping": {"xi": [0.0, 0.3, 1.0]}},
      ...
    }

expands to 9 scenarios.  :func:`sweep_axes` lists the axes,
:func:`expand_grid` materializes the scenarios and :class:`SweepRunner`
executes them — concurrently on a process pool (scenarios are
independent simulations, so they parallelize perfectly) — streaming one
JSON line per completed run to a results file.

**Durability.**  Three cooperating pieces make big grids restartable:

* every row carries the point's resolved ``spec_hash``
  (:func:`~repro.experiments.runcache.spec_hash` — content address of the
  canonical resolved scenario), success and error rows alike, so later
  launches can tell *which simulation* a row belongs to;
* a **sweep manifest** (:class:`SweepManifest`) is checkpointed atomically
  alongside the JSONL stream: grid hash, per-point status
  (pending/running/done/failed) and cumulative attempt counts;
* with ``resume=True`` (CLI ``--resume``) the runner reconciles manifest +
  JSONL + run cache and re-executes **only** missing, failed and in-flight
  points.  Seeds live in the spec, so re-executed points are bit-identical
  (float64) to an uninterrupted run; after a resumed run the JSONL is
  compacted to exactly one row per grid point, in grid order.

An optional content-addressed **run cache**
(:class:`~repro.experiments.runcache.RunCache`, ``cache_dir=``) shares
completed summaries *across* sweeps: any point whose resolved spec hash
is already cached is emitted immediately with ``cache_hit: true`` and
``attempts: 0``.

Every row is self-describing for downstream tooling
(:mod:`repro.experiments.report`): see :data:`SWEEP_ROW_KEYS` /
:data:`SWEEP_SUCCESS_ROW_KEYS` / :data:`SWEEP_ERROR_ROW_KEYS` — the
documented, golden-tested JSONL schema.

Exposed on the CLI as ``python -m repro.experiments sweep spec.json``
(``--resume``, ``--cache-dir``, ``--report``).
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .runcache import RunCache, atomic_write_json, grid_hash, spec_hash
from .scenario import Scenario

__all__ = [
    "SWEEP_ERROR_ROW_KEYS",
    "SWEEP_ROW_KEYS",
    "SWEEP_SUCCESS_ROW_KEYS",
    "SweepManifest",
    "SweepRunner",
    "expand_grid",
    "sweep_axes",
    "sweep_points",
]

#: Keys present on **every** JSONL row (success, error or cache hit).
#: ``attempts`` counts executions consumed *this launch* (0 for a cache
#: hit); ``cache_hit`` is true when the row was served from the run
#: cache.  Golden-tested by ``tests/experiments/test_sweep.py``.
SWEEP_ROW_KEYS = frozenset(
    {"index", "scenario", "spec_hash", "overrides", "cpu_count", "attempts", "cache_hit"}
)

#: Additional keys on successful rows (the documented report-tooling
#: surface: per-run summary, pipeline and device-fault counters, resolved
#: execution mode).
SWEEP_SUCCESS_ROW_KEYS = SWEEP_ROW_KEYS | frozenset(
    {
        "mechanism",
        "engine",
        "parallelism_configured",
        "parallelism_mode",
        "pipeline",
        "summary",
        "pipeline_hits",
        "pipeline_recomputes",
        "faults",
    }
)

#: Additional keys on rows whose point failed every attempt.  The
#: ``spec_hash`` (inherited from :data:`SWEEP_ROW_KEYS`) is what lets a
#: later ``--resume`` distinguish "failed, retry me" from "never started".
SWEEP_ERROR_ROW_KEYS = SWEEP_ROW_KEYS | frozenset(
    {"error", "traceback", "parallelism_mode"}
)


def _find_axes(node: Mapping[str, Any], prefix: str = "") -> List[Tuple[str, List[Any]]]:
    axes: List[Tuple[str, List[Any]]] = []
    for key, value in node.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            axes.extend(_find_axes(value, prefix=f"{path}."))
        elif isinstance(value, list):
            axes.append((path, list(value)))
    return axes


def _set_leaf(node: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    for part in parts[:-1]:
        node = node[part]
    node[parts[-1]] = value


def sweep_axes(spec: Mapping[str, Any]) -> Dict[str, List[Any]]:
    """The sweep axes of a spec: dotted leaf path → list of values.

    Axis order follows document order, which fixes the expansion order of
    :func:`expand_grid` (last axis varies fastest).
    """
    return dict(_find_axes(spec))


def sweep_points(spec: Mapping[str, Any]) -> List[Tuple[Scenario, Dict[str, Any]]]:
    """Expand a sweep spec into ``(scenario, axis-values)`` grid points.

    Every list-valued leaf becomes an axis; the grid is the cross
    product.  A spec with no lists yields a single point.  Each scenario
    is named ``{base}#{i}`` (grid index ``i``) so JSONL rows are
    distinguishable, and each is validated at construction — a typo
    anywhere in the spec fails before any run starts.
    """
    axes = _find_axes(spec)
    base_name = str(spec.get("name", "scenario"))
    points: List[Tuple[Scenario, Dict[str, Any]]] = []
    value_lists = [values for _, values in axes]
    for index, combo in enumerate(itertools.product(*value_lists)):
        doc = copy.deepcopy(dict(spec))
        overrides = {path: value for (path, _), value in zip(axes, combo)}
        for path, value in overrides.items():
            _set_leaf(doc, path, value)
        doc["name"] = f"{base_name}#{index}" if axes else base_name
        points.append((Scenario.from_dict(doc), overrides))
    return points


def expand_grid(spec: Mapping[str, Any]) -> List[Scenario]:
    """The scenarios of a sweep spec's grid (see :func:`sweep_points`)."""
    return [scenario for scenario, _ in sweep_points(spec)]


def _execute_point(
    index: int,
    scenario_dict: Dict[str, Any],
    overrides: Dict[str, Any],
    retries: int = 1,
    retry_backoff: float = 0.5,
    point_hash: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one grid point; returns its JSONL row.  Must stay module-level
    (and take only JSON-native arguments) so process pools can pickle it.

    Transient failures (a pool worker OOM-killed, a flaky shared-memory
    init, …) are retried ``retries`` times with ``retry_backoff`` seconds
    of real-time backoff before the point is given up on; the emitted
    error row then carries the exception *and* its full traceback string
    so a failed sweep is debuggable from the JSONL alone.  ``attempts``
    records how many executions the row consumed either way, and
    ``point_hash`` (the resolved :func:`~repro.experiments.runcache
    .spec_hash`, computed by the parent where the spec is known valid) is
    stamped on success **and** error rows so ``--resume`` can match rows
    back to grid points.
    """
    row: Dict[str, Any] = {
        "index": index,
        "scenario": str(scenario_dict.get("name", "scenario")),
        "spec_hash": point_hash,
        "overrides": overrides,
        "cpu_count": os.cpu_count(),
        "cache_hit": False,
    }
    for attempt in range(retries + 1):
        row["attempts"] = attempt + 1
        try:
            # Inside the try: a pool worker re-validates the spec, and e.g. a
            # component registered only in the parent process must yield an
            # error row, not abort the sweep.
            scenario = Scenario.from_dict(scenario_dict)
            row["mechanism"] = scenario.mechanism.name
            row["engine"] = scenario.training.engine
            row["parallelism_configured"] = scenario.parallelism.mode
            row["pipeline"] = scenario.parallelism.pipeline
            with scenario.build() as trainer:
                history = trainer.run(
                    max_rounds=scenario.training.max_rounds,
                    max_time=scenario.training.max_time,
                )
                # Resolved *inside* the context: close() tears the pool down.
                row["parallelism_mode"] = (
                    "processes" if trainer.parallelism_active else "none"
                )
            row["summary"] = history.summary()
            row["pipeline_hits"] = history.pipeline_hits
            row["pipeline_recomputes"] = history.pipeline_recomputes
            row["faults"] = history.fault_counters()
            row.pop("error", None)
            row.pop("traceback", None)
            break
        except Exception as exc:  # one failed point must not sink the sweep
            row["error"] = f"{type(exc).__name__}: {exc}"
            row["traceback"] = traceback.format_exc()
            row["parallelism_mode"] = row.get("parallelism_mode", "none")
            if attempt < retries and retry_backoff > 0:
                time.sleep(retry_backoff * (attempt + 1))
    return row


def _read_jsonl_rows(path: Path) -> List[Dict[str, Any]]:
    """Parse a JSONL file, skipping undecodable lines.

    A sweep killed mid-write (SIGKILL between ``write`` and ``flush``)
    can leave a torn final line; tolerating it is what makes the stream
    safely resumable.
    """
    rows: List[Dict[str, Any]] = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except ValueError:
            continue
        if isinstance(row, dict):
            rows.append(row)
    return rows


MANIFEST_VERSION = 1


class SweepManifest:
    """Atomic sidecar checkpoint of a sweep's per-point progress.

    Written next to the JSONL stream (``results.jsonl`` →
    ``results.manifest.json``) and rewritten atomically
    (:func:`~repro.experiments.runcache.atomic_write_json`) on every
    status change, so a SIGKILL at any instant leaves either the previous
    or the next complete manifest — never a torn one.

    The document records the :func:`~repro.experiments.runcache.grid_hash`
    of the expanded grid plus, per point: grid ``index``, display
    ``name``, resolved ``spec_hash``, ``status`` (``pending`` /
    ``running`` / ``done`` / ``failed``), **cumulative** ``attempts``
    across launches, ``cache_hit`` and (for failed points) a short
    ``error`` string.  On ``--resume`` the manifest's grid hash guards
    against merging progress from a different grid, and its attempt
    counts let a point that failed every retry in a previous launch be
    distinguished from one that never started.
    """

    def __init__(
        self,
        path: Path,
        grid_hash: str,
        points: List[Dict[str, Any]],
    ) -> None:
        self.path = Path(path)
        self.grid_hash = grid_hash
        self.points = points

    @classmethod
    def fresh(
        cls,
        path: str | Path,
        grid_hash: str,
        names: Sequence[str],
        hashes: Sequence[str],
    ) -> "SweepManifest":
        """A new all-pending manifest for an expanded grid."""
        points = [
            {
                "index": index,
                "name": str(name),
                "spec_hash": hash_,
                "status": "pending",
                "attempts": 0,
                "cache_hit": False,
            }
            for index, (name, hash_) in enumerate(zip(names, hashes))
        ]
        return cls(Path(path), grid_hash, points)

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest":
        """Read a manifest written by :meth:`save`; validates the version."""
        path = Path(path)
        document = json.loads(path.read_text())
        if document.get("version") != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported sweep manifest version {document.get('version')!r} "
                f"in {path} (expected {MANIFEST_VERSION})"
            )
        points = document.get("points")
        if not isinstance(points, list):
            raise ValueError(f"sweep manifest {path} has no point list")
        return cls(path, str(document.get("grid_hash", "")), points)

    def to_dict(self) -> Dict[str, Any]:
        done = sum(1 for p in self.points if p.get("status") == "done")
        failed = sum(1 for p in self.points if p.get("status") == "failed")
        return {
            "version": MANIFEST_VERSION,
            "grid_hash": self.grid_hash,
            "total": len(self.points),
            "done": done,
            "failed": failed,
            "points": self.points,
        }

    def save(self) -> Path:
        """Atomically checkpoint the manifest to :attr:`path`."""
        return atomic_write_json(self.path, self.to_dict())

    def mark(
        self,
        index: int,
        status: str,
        attempts: Optional[int] = None,
        cache_hit: Optional[bool] = None,
        error: Optional[str] = None,
        save: bool = True,
    ) -> None:
        """Update one point's status (and checkpoint unless ``save=False``)."""
        point = self.points[index]
        point["status"] = status
        if attempts is not None:
            point["attempts"] = int(attempts)
        if cache_hit is not None:
            point["cache_hit"] = bool(cache_hit)
        if error is not None:
            point["error"] = str(error)
        elif status == "done":
            point.pop("error", None)
        if save:
            self.save()

    def attempts(self, index: int) -> int:
        return int(self.points[index].get("attempts", 0))

    def status(self, index: int) -> str:
        return str(self.points[index].get("status", "pending"))


class SweepRunner:
    """Expand a scenario grid and execute it, streaming JSONL summaries.

    Parameters
    ----------
    spec:
        A sweep spec mapping (list-valued leaves are axes), or an already
        expanded sequence of :class:`Scenario` objects.
    output:
        Path of the JSONL results file (one row per completed run,
        written and flushed as runs finish — a crashed sweep keeps every
        completed row).  ``None`` collects rows in memory only.
    max_workers:
        Process-pool size; ``None`` uses ``min(grid size, cpu_count)``.
    mode:
        ``"processes"`` (default) runs grid points concurrently on a
        ``concurrent.futures.ProcessPoolExecutor``; ``"serial"`` runs
        them in-process (useful under doctest or when the scenarios
        themselves use ``parallelism.mode="processes"`` — avoid nesting
        pools).
    start_method:
        ``multiprocessing`` start method for the pool (``"fork"``
        default, matching :class:`~repro.core.config.ParallelismConfig`).
    retries:
        How many times a failed grid point is re-executed (with real-time
        backoff) before its error row — carrying the exception and the
        full traceback string — is emitted.  Default 1: one retry absorbs
        transient infrastructure failures without masking real bugs.
    retry_backoff:
        Seconds slept before the first retry (scaled linearly for later
        attempts); 0 disables the sleep.
    cache_dir:
        Root of a content-addressed :class:`~repro.experiments.runcache
        .RunCache`.  Points whose resolved spec hash is already cached
        are emitted immediately (``cache_hit: true``, ``attempts: 0``);
        every newly successful point is written back to the cache.
        ``None`` (default) disables caching.
    resume:
        Reconcile an interrupted sweep instead of restarting it: reuse
        every successful row of the existing JSONL whose ``spec_hash``
        matches the grid, then execute only the missing / failed /
        in-flight points (identical seeds ⇒ bit-identical float64
        summaries).  Requires ``output``; refuses (``ValueError``) when
        the existing manifest's grid hash does not match this spec.  With
        nothing to reconcile (first launch) it behaves like a fresh run.
    manifest:
        Path of the sweep manifest; default ``output`` with the suffix
        replaced by ``.manifest.json`` (``None`` only when ``output`` is
        ``None``, which disables manifest checkpointing).
    """

    def __init__(
        self,
        spec: Mapping[str, Any] | Sequence[Scenario],
        output: str | Path | None = None,
        max_workers: Optional[int] = None,
        mode: str = "processes",
        start_method: str = "fork",
        retries: int = 1,
        retry_backoff: float = 0.5,
        cache_dir: str | Path | None = None,
        resume: bool = False,
        manifest: str | Path | None = None,
    ) -> None:
        if mode not in ("processes", "serial"):
            raise ValueError(f"mode must be 'processes' or 'serial', got {mode!r}")
        if start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be 'fork', 'spawn' or 'forkserver', "
                f"got {start_method!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if isinstance(spec, Mapping):
            self.points = sweep_points(spec)
        else:
            self.points = [(scenario, {}) for scenario in spec]
        if not self.points:
            raise ValueError("sweep grid is empty")
        self.output = Path(output) if output is not None else None
        if resume and self.output is None:
            raise ValueError("resume=True requires an output path to reconcile")
        self.max_workers = max_workers
        self.mode = mode
        self.start_method = start_method
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.resume = resume
        if manifest is not None:
            self.manifest_path: Optional[Path] = Path(manifest)
        elif self.output is not None:
            self.manifest_path = self.output.with_suffix(".manifest.json")
        else:
            self.manifest_path = None
        #: Resolved content address of every grid point, in grid order.
        self.point_hashes = [spec_hash(scenario) for scenario, _ in self.points]
        #: Content address of the whole expanded grid.
        self.grid_hash = grid_hash(self.point_hashes)

    def __len__(self) -> int:
        return len(self.points)

    # ------------------------------------------------------------------
    # Resume reconciliation
    # ------------------------------------------------------------------
    def _reconcile(self) -> Tuple[Dict[int, Dict[str, Any]], Dict[int, int]]:
        """Merge manifest + JSONL into (reusable rows, prior attempt counts).

        The JSONL stream is the ground truth for *completed* work: a row
        is reused iff it carries a ``summary`` and its ``spec_hash``
        matches the grid point at its index (rows from older schema
        versions or foreign grids are ignored and re-executed).  The
        manifest contributes cumulative attempt counts and the grid-hash
        guard; error rows contribute their attempt counts, which is how a
        point that failed every retry is distinguished from one that
        never started.
        """
        reused: Dict[int, Dict[str, Any]] = {}
        prior_attempts: Dict[int, int] = {}
        if self.manifest_path is not None and self.manifest_path.exists():
            previous = SweepManifest.load(self.manifest_path)
            if previous.grid_hash and previous.grid_hash != self.grid_hash:
                raise ValueError(
                    f"cannot resume: manifest {self.manifest_path} was written "
                    f"for a different grid (grid hash {previous.grid_hash[:12]}… "
                    f"≠ {self.grid_hash[:12]}…); the spec or its expansion "
                    "changed — start a fresh output instead"
                )
            for point in previous.points:
                index = point.get("index")
                if isinstance(index, int) and 0 <= index < len(self.points):
                    prior_attempts[index] = int(point.get("attempts", 0))
        if self.output is not None and self.output.exists():
            for row in _read_jsonl_rows(self.output):
                index = row.get("index")
                if not isinstance(index, int) or not 0 <= index < len(self.points):
                    continue
                if row.get("spec_hash") != self.point_hashes[index]:
                    continue
                if "summary" in row and "error" not in row:
                    reused[index] = row
                else:
                    prior_attempts[index] = max(
                        prior_attempts.get(index, 0), int(row.get("attempts", 0))
                    )
        return reused, prior_attempts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> List[Dict[str, Any]]:
        """Execute every grid point; returns the rows ordered by grid index."""
        cache = RunCache(self.cache_dir) if self.cache_dir is not None else None
        reused: Dict[int, Dict[str, Any]] = {}
        prior_attempts: Dict[int, int] = {}
        if self.resume:
            reused, prior_attempts = self._reconcile()

        manifest: Optional[SweepManifest] = None
        if self.manifest_path is not None:
            manifest = SweepManifest.fresh(
                self.manifest_path,
                self.grid_hash,
                [scenario.name for scenario, _ in self.points],
                self.point_hashes,
            )
            for index, attempts in prior_attempts.items():
                manifest.points[index]["attempts"] = attempts
            for index, row in reused.items():
                manifest.mark(
                    index,
                    "done",
                    attempts=max(prior_attempts.get(index, 0), row.get("attempts", 0)),
                    cache_hit=bool(row.get("cache_hit")),
                    save=False,
                )
            manifest.save()

        appending = bool(self.resume and self.output is not None and self.output.exists())
        handle = None
        if self.output is not None:
            self.output.parent.mkdir(parents=True, exist_ok=True)
            handle = self.output.open("a" if appending else "w")
        rows: List[Dict[str, Any]] = list(reused.values())

        def emit(row: Dict[str, Any]) -> None:
            rows.append(row)
            if handle is not None:
                handle.write(json.dumps(row) + "\n")
                handle.flush()
            if cache is not None and "summary" in row and not row.get("cache_hit"):
                cache.put(row["spec_hash"], row)
            if manifest is not None:
                failed = "error" in row
                manifest.mark(
                    row["index"],
                    "failed" if failed else "done",
                    attempts=prior_attempts.get(row["index"], 0)
                    + int(row.get("attempts", 0)),
                    cache_hit=bool(row.get("cache_hit")),
                    error=row.get("error"),
                )

        payloads = []
        for index, (scenario, overrides) in enumerate(self.points):
            if index in reused:
                continue
            point_hash = self.point_hashes[index]
            if cache is not None:
                hit = cache.get(point_hash)
                if hit is not None:
                    emit(
                        {
                            **hit,
                            "index": index,
                            "scenario": scenario.name,
                            "spec_hash": point_hash,
                            "overrides": overrides,
                            "attempts": 0,
                            "cache_hit": True,
                        }
                    )
                    continue
            payloads.append(
                (
                    index,
                    scenario.to_dict(),
                    overrides,
                    self.retries,
                    self.retry_backoff,
                    point_hash,
                )
            )

        try:
            if self.mode == "serial" or len(payloads) == 1:
                for payload in payloads:
                    if manifest is not None:
                        manifest.mark(payload[0], "running")
                    emit(_execute_point(*payload))
            elif payloads:
                if manifest is not None:
                    for payload in payloads:
                        manifest.mark(payload[0], "running", save=False)
                    manifest.save()
                self._run_pool(payloads, emit)
        finally:
            if handle is not None:
                handle.close()
        rows = sorted(rows, key=lambda r: r["index"])
        if appending:
            # A resumed stream may hold superseded rows (an error row whose
            # point has now succeeded, duplicates from an earlier torn
            # launch); compact to exactly one row per grid point.
            self._compact(rows)
        return rows

    def _compact(self, rows: List[Dict[str, Any]]) -> None:
        """Atomically rewrite the JSONL as one row per point, grid order."""
        assert self.output is not None
        tmp = self.output.with_name(self.output.name + ".tmp")
        with tmp.open("w") as handle:
            for row in rows:
                handle.write(json.dumps(row) + "\n")
        os.replace(tmp, self.output)

    def _run_pool(self, payloads, emit) -> None:
        import multiprocessing

        workers = self.max_workers or min(len(payloads), os.cpu_count() or 1)
        workers = min(workers, len(payloads))
        try:
            context = multiprocessing.get_context(self.start_method)
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (ValueError, OSError):
            # Start method unavailable on this platform: degrade to serial
            # rather than fail the sweep.
            for payload in payloads:
                emit(_execute_point(*payload))
            return
        with pool:
            pending = {pool.submit(_execute_point, *payload) for payload in payloads}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Stream rows as runs finish so partial sweeps are useful.
                for future in done:
                    emit(future.result())
