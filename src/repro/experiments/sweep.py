"""Concurrent scenario-grid sweeps with streamed JSONL results.

A *sweep spec* is a scenario document (:meth:`Scenario.to_dict` shape, or
any subset of it) in which any scalar leaf may instead hold a **list of
values**; every list is a sweep axis and the grid is their cross product::

    {
      "name": "xi-vs-seed",
      "seed": [0, 1, 2],
      "algorithm": {"grouping": {"xi": [0.0, 0.3, 1.0]}},
      ...
    }

expands to 9 scenarios.  :func:`sweep_axes` lists the axes,
:func:`expand_grid` materializes the scenarios and :class:`SweepRunner`
executes them — concurrently on a process pool (scenarios are
independent simulations, so they parallelize perfectly) — streaming one
JSON line per completed run to a results file.  Every row carries the
run's :meth:`~repro.fl.TrainingHistory.summary`, the sweep-axis values
that produced it, the host ``cpu_count`` and the *resolved* parallelism
mode (what the trainer actually used, which may be ``"none"`` when a
requested process pool was unavailable), so results files are
self-describing for later multi-core analysis.

Exposed on the CLI as ``python -m repro.experiments sweep spec.json``.
"""

from __future__ import annotations

import copy
import itertools
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .scenario import Scenario

__all__ = ["SweepRunner", "expand_grid", "sweep_axes", "sweep_points"]


def _find_axes(node: Mapping[str, Any], prefix: str = "") -> List[Tuple[str, List[Any]]]:
    axes: List[Tuple[str, List[Any]]] = []
    for key, value in node.items():
        path = f"{prefix}{key}"
        if isinstance(value, Mapping):
            axes.extend(_find_axes(value, prefix=f"{path}."))
        elif isinstance(value, list):
            axes.append((path, list(value)))
    return axes


def _set_leaf(node: Dict[str, Any], path: str, value: Any) -> None:
    parts = path.split(".")
    for part in parts[:-1]:
        node = node[part]
    node[parts[-1]] = value


def sweep_axes(spec: Mapping[str, Any]) -> Dict[str, List[Any]]:
    """The sweep axes of a spec: dotted leaf path → list of values.

    Axis order follows document order, which fixes the expansion order of
    :func:`expand_grid` (last axis varies fastest).
    """
    return dict(_find_axes(spec))


def sweep_points(spec: Mapping[str, Any]) -> List[Tuple[Scenario, Dict[str, Any]]]:
    """Expand a sweep spec into ``(scenario, axis-values)`` grid points.

    Every list-valued leaf becomes an axis; the grid is the cross
    product.  A spec with no lists yields a single point.  Each scenario
    is named ``{base}#{i}`` (grid index ``i``) so JSONL rows are
    distinguishable, and each is validated at construction — a typo
    anywhere in the spec fails before any run starts.
    """
    axes = _find_axes(spec)
    base_name = str(spec.get("name", "scenario"))
    points: List[Tuple[Scenario, Dict[str, Any]]] = []
    value_lists = [values for _, values in axes]
    for index, combo in enumerate(itertools.product(*value_lists)):
        doc = copy.deepcopy(dict(spec))
        overrides = {path: value for (path, _), value in zip(axes, combo)}
        for path, value in overrides.items():
            _set_leaf(doc, path, value)
        doc["name"] = f"{base_name}#{index}" if axes else base_name
        points.append((Scenario.from_dict(doc), overrides))
    return points


def expand_grid(spec: Mapping[str, Any]) -> List[Scenario]:
    """The scenarios of a sweep spec's grid (see :func:`sweep_points`)."""
    return [scenario for scenario, _ in sweep_points(spec)]


def _execute_point(
    index: int,
    scenario_dict: Dict[str, Any],
    overrides: Dict[str, Any],
    retries: int = 1,
    retry_backoff: float = 0.5,
) -> Dict[str, Any]:
    """Run one grid point; returns its JSONL row.  Must stay module-level
    (and take only JSON-native arguments) so process pools can pickle it.

    Transient failures (a pool worker OOM-killed, a flaky shared-memory
    init, …) are retried ``retries`` times with ``retry_backoff`` seconds
    of real-time backoff before the point is given up on; the emitted
    error row then carries the exception *and* its full traceback string
    so a failed sweep is debuggable from the JSONL alone.  ``attempts``
    records how many executions the row consumed either way.
    """
    row: Dict[str, Any] = {
        "index": index,
        "scenario": str(scenario_dict.get("name", "scenario")),
        "overrides": overrides,
        "cpu_count": os.cpu_count(),
    }
    for attempt in range(retries + 1):
        row["attempts"] = attempt + 1
        try:
            # Inside the try: a pool worker re-validates the spec, and e.g. a
            # component registered only in the parent process must yield an
            # error row, not abort the sweep.
            scenario = Scenario.from_dict(scenario_dict)
            row["mechanism"] = scenario.mechanism.name
            row["engine"] = scenario.training.engine
            row["parallelism_configured"] = scenario.parallelism.mode
            row["pipeline"] = scenario.parallelism.pipeline
            with scenario.build() as trainer:
                history = trainer.run(
                    max_rounds=scenario.training.max_rounds,
                    max_time=scenario.training.max_time,
                )
                # Resolved *inside* the context: close() tears the pool down.
                row["parallelism_mode"] = (
                    "processes" if trainer.parallelism_active else "none"
                )
            row["summary"] = history.summary()
            row["pipeline_hits"] = history.pipeline_hits
            row["pipeline_recomputes"] = history.pipeline_recomputes
            row["faults"] = history.fault_counters()
            row.pop("error", None)
            row.pop("traceback", None)
            break
        except Exception as exc:  # one failed point must not sink the sweep
            row["error"] = f"{type(exc).__name__}: {exc}"
            row["traceback"] = traceback.format_exc()
            row["parallelism_mode"] = row.get("parallelism_mode", "none")
            if attempt < retries and retry_backoff > 0:
                time.sleep(retry_backoff * (attempt + 1))
    return row


class SweepRunner:
    """Expand a scenario grid and execute it, streaming JSONL summaries.

    Parameters
    ----------
    spec:
        A sweep spec mapping (list-valued leaves are axes), or an already
        expanded sequence of :class:`Scenario` objects.
    output:
        Path of the JSONL results file (one row per completed run,
        written and flushed as runs finish — a crashed sweep keeps every
        completed row).  ``None`` collects rows in memory only.
    max_workers:
        Process-pool size; ``None`` uses ``min(grid size, cpu_count)``.
    mode:
        ``"processes"`` (default) runs grid points concurrently on a
        ``concurrent.futures.ProcessPoolExecutor``; ``"serial"`` runs
        them in-process (useful under doctest or when the scenarios
        themselves use ``parallelism.mode="processes"`` — avoid nesting
        pools).
    start_method:
        ``multiprocessing`` start method for the pool (``"fork"``
        default, matching :class:`~repro.core.config.ParallelismConfig`).
    retries:
        How many times a failed grid point is re-executed (with real-time
        backoff) before its error row — carrying the exception and the
        full traceback string — is emitted.  Default 1: one retry absorbs
        transient infrastructure failures without masking real bugs.
    retry_backoff:
        Seconds slept before the first retry (scaled linearly for later
        attempts); 0 disables the sleep.
    """

    def __init__(
        self,
        spec: Mapping[str, Any] | Sequence[Scenario],
        output: str | Path | None = None,
        max_workers: Optional[int] = None,
        mode: str = "processes",
        start_method: str = "fork",
        retries: int = 1,
        retry_backoff: float = 0.5,
    ) -> None:
        if mode not in ("processes", "serial"):
            raise ValueError(f"mode must be 'processes' or 'serial', got {mode!r}")
        if start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be 'fork', 'spawn' or 'forkserver', "
                f"got {start_method!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1 when given")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        if isinstance(spec, Mapping):
            self.points = sweep_points(spec)
        else:
            self.points = [(scenario, {}) for scenario in spec]
        if not self.points:
            raise ValueError("sweep grid is empty")
        self.output = Path(output) if output is not None else None
        self.max_workers = max_workers
        self.mode = mode
        self.start_method = start_method
        self.retries = retries
        self.retry_backoff = retry_backoff

    def __len__(self) -> int:
        return len(self.points)

    def run(self) -> List[Dict[str, Any]]:
        """Execute every grid point; returns the rows ordered by grid index."""
        payloads = [
            (index, scenario.to_dict(), overrides, self.retries, self.retry_backoff)
            for index, (scenario, overrides) in enumerate(self.points)
        ]
        handle = None
        if self.output is not None:
            self.output.parent.mkdir(parents=True, exist_ok=True)
            handle = self.output.open("w")
        rows: List[Dict[str, Any]] = []

        def emit(row: Dict[str, Any]) -> None:
            rows.append(row)
            if handle is not None:
                handle.write(json.dumps(row) + "\n")
                handle.flush()

        try:
            if self.mode == "serial" or len(payloads) == 1:
                for payload in payloads:
                    emit(_execute_point(*payload))
            else:
                self._run_pool(payloads, emit)
        finally:
            if handle is not None:
                handle.close()
        return sorted(rows, key=lambda r: r["index"])

    def _run_pool(self, payloads, emit) -> None:
        import multiprocessing

        workers = self.max_workers or min(len(payloads), os.cpu_count() or 1)
        workers = min(workers, len(payloads))
        try:
            context = multiprocessing.get_context(self.start_method)
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        except (ValueError, OSError):
            # Start method unavailable on this platform: degrade to serial
            # rather than fail the sweep.
            for payload in payloads:
                emit(_execute_point(*payload))
            return
        with pool:
            pending = {pool.submit(_execute_point, *payload) for payload in payloads}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                # Stream rows as runs finish so partial sweeps are useful.
                for future in done:
                    emit(future.result())
