"""repro: reproduction of Air-FedGA (IPDPS 2025).

Air-FedGA is a grouping asynchronous federated learning mechanism that uses
over-the-air computation (AirComp) for intra-group model aggregation while
groups update the global model asynchronously.  This package contains:

* :mod:`repro.core` -- the mechanism (Algorithm 1), power control
  (Algorithm 2), worker grouping (Algorithm 3) and the convergence analysis
  (Theorem 1);
* :mod:`repro.nn` -- a NumPy neural-network substrate (layers, models,
  losses, SGD) standing in for PyTorch;
* :mod:`repro.data` -- synthetic datasets, federated partitioners and
  label-distribution statistics (EMD);
* :mod:`repro.channel` -- the wireless substrate: block fading, AirComp
  superposition over a noisy MAC, OMA latency models and energy accounting;
* :mod:`repro.sim` -- a discrete-event simulator and the edge-heterogeneity
  latency model;
* :mod:`repro.fl` -- runnable trainers for Air-FedGA and the four baselines
  (FedAvg, TiFL, Air-FedAvg, Dynamic);
* :mod:`repro.experiments` -- the harness reproducing every table and figure
  of the paper's evaluation section, plus the declarative
  :class:`~repro.experiments.scenario.Scenario` spec and concurrent
  :class:`~repro.experiments.sweep.SweepRunner` grid sweeps;
* :mod:`repro.registry` -- the generic component registry (datasets,
  partitioners, channels, latency models, mechanisms, models by name)
  behind the Scenario API.
"""

from . import channel, core, data, fl, nn, registry, sim

__version__ = "1.0.0"

__all__ = ["channel", "core", "data", "fl", "nn", "registry", "sim", "__version__"]
