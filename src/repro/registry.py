"""Generic component registry: every swappable piece of an experiment by name.

The paper's evaluation crosses datasets, Non-IID partitions, channel
models, edge-heterogeneity settings and mechanisms.  Historically each of
those families had its own ad-hoc dict (``MECHANISMS``,
``DATASET_REGISTRY``, ``PARTITIONERS``, …) with slightly different lookup
code and bare ``KeyError`` messages.  This module unifies them behind one
small registry keyed by *component kind*:

========================  ==========================================
kind                      examples
========================  ==========================================
``"dataset"``             ``synthetic-mnist``, ``synthetic-cifar10``
``"partitioner"``         ``iid``, ``label-skew``, ``dirichlet``
``"channel"``             ``rayleigh``, ``static``
``"latency"``             ``uniform``, ``homogeneous``
``"mechanism"``           ``fedavg``, ``tifl``, …, ``air_fedga``
``"model"``               ``lr``, ``mnist_cnn``, ``cifar_cnn``, ``mini_vgg``
``"clientstate"``         ``always-on``, ``bernoulli``, ``dropout-rejoin``
``"staleness"``           ``constant``, ``hinge``, ``polynomial``
========================  ==========================================

Components self-register at import time via the :func:`register`
decorator; lookups lazily import the standard component modules first, so
``repro.registry.get("mechanism", "air_fedga")`` works without importing
anything else by hand.  Unknown names raise
:class:`UnknownComponentError` — a ``KeyError`` subclass whose message
carries ``difflib`` close-match suggestions ("did you mean …?").

The declarative :class:`repro.experiments.scenario.Scenario` spec is the
main consumer: every section of a scenario names a component of one kind,
so a whole experiment is reproducible from one JSON document.

>>> from repro import registry
>>> registry.get("mechanism", "fedavg").__name__
'FedAvgTrainer'
>>> try:
...     registry.get("mechanism", "air_fedgaa")
... except registry.UnknownComponentError as exc:
...     print(exc)
unknown mechanism 'air_fedgaa'; did you mean 'air_fedga' or 'air_fedavg' or 'fedavg'? (available: ['air_fedavg', 'air_fedga', 'dynamic', 'fedavg', 'tifl'])
"""

from __future__ import annotations

import difflib
import importlib
import inspect
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "COMPONENT_KINDS",
    "UnknownComponentError",
    "register",
    "get",
    "create",
    "names",
    "kinds",
    "as_dict",
    "accepted_parameters",
    "check_kwargs",
]

#: The component kinds populated by the standard library modules.  The
#: registry itself accepts any kind string; these are the ones a
#: :class:`~repro.experiments.scenario.Scenario` is built from.
COMPONENT_KINDS: Tuple[str, ...] = (
    "dataset",
    "partitioner",
    "channel",
    "latency",
    "mechanism",
    "model",
    "clientstate",
    "staleness",
)

#: Human-facing labels used in error messages (kept identical to the
#: wording of the legacy per-family registries so existing callers that
#: match on the message keep working).
_KIND_LABELS: Dict[str, str] = {
    "partitioner": "partition strategy",
    "channel": "channel kind",
    "latency": "latency model",
    "clientstate": "client-state model",
    "staleness": "staleness policy",
}

#: Modules whose import populates the standard kinds (each calls
#: :func:`register` at import time).  Imported lazily on first lookup so
#: ``import repro.registry`` alone stays dependency-free.
_COMPONENT_MODULES: Tuple[str, ...] = (
    "repro.data.synthetic",
    "repro.data.partition",
    "repro.channel.fading",
    "repro.sim.latency",
    "repro.sim.clientstate",
    "repro.nn.models",
    "repro.fl.registry",
    "repro.fl.staleness",
)

_REGISTRY: Dict[str, Dict[str, Callable[..., Any]]] = {}
_populated = False


class UnknownComponentError(KeyError):
    """Lookup of a component name that is not registered for its kind.

    Subclasses :class:`KeyError` for backward compatibility with the
    legacy per-family registries.  Carries the ``kind``, the requested
    ``name``, the ``available`` names and ``difflib`` close-match
    ``suggestions``; the message spells all of that out.
    """

    def __init__(self, kind: str, name: str, available: Sequence[str]) -> None:
        self.kind = kind
        self.name = name
        self.available = sorted(available)
        self.suggestions = difflib.get_close_matches(
            name, self.available, n=3, cutoff=0.4
        )
        label = _KIND_LABELS.get(kind, kind)
        message = f"unknown {label} {name!r}"
        if self.suggestions:
            pretty = " or ".join(repr(s) for s in self.suggestions)
            message += f"; did you mean {pretty}?"
        message += f" (available: {self.available})"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def _ensure_populated() -> None:
    global _populated
    if _populated:
        return
    _populated = True
    for module in _COMPONENT_MODULES:
        importlib.import_module(module)


def register(
    kind: str, name: str, *, overwrite: bool = False
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering a component factory under ``(kind, name)``.

    The factory may be a class or a function; it is returned unchanged so
    the decorator composes with normal definitions::

        @register("channel", "rayleigh")
        @dataclass
        class RayleighFading(ChannelModel): ...

    Re-registering an existing name raises ``ValueError`` unless
    ``overwrite=True`` (useful in tests and for user plug-ins shadowing a
    built-in).
    """
    if not kind or not isinstance(kind, str):
        raise ValueError(f"component kind must be a non-empty string, got {kind!r}")
    if not name or not isinstance(name, str):
        raise ValueError(f"component name must be a non-empty string, got {name!r}")

    def decorator(factory: Callable[..., Any]) -> Callable[..., Any]:
        namespace = _REGISTRY.setdefault(kind, {})
        if name in namespace and namespace[name] is not factory and not overwrite:
            raise ValueError(
                f"{_KIND_LABELS.get(kind, kind)} {name!r} is already registered "
                f"(to {namespace[name]!r}); pass overwrite=True to replace it"
            )
        namespace[name] = factory
        return factory

    return decorator


def get(kind: str, name: str) -> Callable[..., Any]:
    """Look up a component factory; raises :class:`UnknownComponentError`."""
    _ensure_populated()
    namespace = _REGISTRY.get(kind, {})
    try:
        return namespace[name]
    except KeyError:
        raise UnknownComponentError(kind, name, list(namespace)) from None


def create(kind: str, name: str, *args: Any, **kwargs: Any) -> Any:
    """Look up and call a component factory in one step."""
    return get(kind, name)(*args, **kwargs)


def names(kind: str) -> List[str]:
    """Sorted names registered for one kind (empty list for unknown kinds)."""
    _ensure_populated()
    return sorted(_REGISTRY.get(kind, {}))


def kinds() -> List[str]:
    """Sorted list of kinds with at least one registered component."""
    _ensure_populated()
    return sorted(k for k, v in _REGISTRY.items() if v)


def as_dict(kind: str) -> Dict[str, Callable[..., Any]]:
    """Snapshot of one kind's ``{name: factory}`` mapping (a copy)."""
    _ensure_populated()
    return dict(_REGISTRY.get(kind, {}))


# ----------------------------------------------------------------------
# Keyword-argument validation for component factories
# ----------------------------------------------------------------------
def accepted_parameters(
    factory: Callable[..., Any], *, exclude: Sequence[str] = ()
) -> Tuple[List[str], bool]:
    """The keyword parameters a factory accepts.

    Returns ``(names, has_var_keyword)`` where ``names`` excludes ``self``
    and anything in ``exclude`` (e.g. positionally supplied arguments like
    the trainer's ``experiment``), and ``has_var_keyword`` reports a
    ``**kwargs`` catch-all (in which case any name is accepted).
    """
    target = factory.__init__ if inspect.isclass(factory) else factory
    signature = inspect.signature(target)
    accepted: List[str] = []
    has_var_keyword = False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            has_var_keyword = True
            continue
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        ):
            if parameter.name != "self" and parameter.name not in exclude:
                accepted.append(parameter.name)
    return accepted, has_var_keyword


def check_kwargs(
    factory: Callable[..., Any],
    kwargs: Dict[str, Any],
    *,
    context: str,
    exclude: Sequence[str] = (),
) -> None:
    """Raise ``TypeError`` when ``kwargs`` contains names the factory rejects.

    Calling a trainer class with a typo'd keyword used to fail deep inside
    the constructor chain; this surfaces the mistake at the registry
    boundary with the full list of accepted parameter names.  Factories
    with a ``**kwargs`` catch-all are not checked (any name may be valid).
    """
    accepted, has_var_keyword = accepted_parameters(factory, exclude=exclude)
    if has_var_keyword:
        return
    unknown = sorted(set(kwargs) - set(accepted))
    if unknown:
        pretty = ", ".join(repr(u) for u in unknown)
        raise TypeError(
            f"{context} got unexpected keyword argument(s) {pretty}; "
            f"accepted parameters: {sorted(accepted)}"
        )


def _close_matches(name: str, candidates: Iterable[str]) -> List[str]:
    """difflib close matches, shared by scenario-field validation."""
    return difflib.get_close_matches(name, list(candidates), n=3, cutoff=0.4)
