"""Partitioning of a dataset across federated workers.

The paper (Section VI-A2) implements Non-IID data with the *label-skew*
method: the MNIST samples labelled '0' go to workers v1-v10, labelled '1' to
v11-v20, and so on.  We implement that scheme exactly, plus the two other
standard partitioners used in the FL literature (IID and Dirichlet label
skew) for the ablation benchmarks.

A partition is represented by :class:`Partition`, mapping each worker index
to the indices of its training samples; per-worker and per-class size
statistics (the α_i, d_i^k quantities of Table II) are exposed directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..registry import get as _get_component
from ..registry import register as _register
from .synthetic import Dataset

__all__ = [
    "Partition",
    "partition_iid",
    "partition_label_skew",
    "partition_dirichlet",
    "PARTITIONERS",
    "make_partition",
]


class _WorkerIndices(list):
    """``Partition.indices`` with a deprecated per-worker integer accessor.

    Iteration, ``len``, and slicing behave exactly like a list of int64
    arrays.  Integer indexing — the per-worker touchpoint the population
    refactor retires — still works but emits a :class:`DeprecationWarning`
    pointing at :meth:`Partition.worker_indices` /
    :meth:`~repro.core.population.Population.shard`.
    """

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            warnings.warn(
                "Partition.indices[worker] is deprecated; use "
                "Partition.worker_indices(worker) or Population.shard(worker) "
                "instead",
                DeprecationWarning,
                stacklevel=2,
            )
        return super().__getitem__(key)


@dataclass
class Partition:
    """Assignment of training-sample indices to workers.

    Attributes
    ----------
    indices:
        ``indices[i]`` is the integer index array of worker ``i``'s samples.
    num_classes:
        Number of classes in the underlying dataset.
    labels:
        The full training label array (needed to compute per-class counts).
    """

    indices: List[np.ndarray]
    num_classes: int
    labels: np.ndarray
    name: str = "custom"
    _class_counts: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.indices = _WorkerIndices(
            np.asarray(ix, dtype=np.int64) for ix in self.indices
        )
        self.labels = np.asarray(self.labels, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self.indices)

    def worker_indices(self, worker: int) -> np.ndarray:
        return list.__getitem__(self.indices, worker)

    def data_sizes(self) -> np.ndarray:
        """Per-worker data sizes ``d_i`` (Table II)."""
        return np.array([ix.size for ix in self.indices], dtype=np.int64)

    @property
    def total_size(self) -> int:
        """Total data size ``D``."""
        return int(self.data_sizes().sum())

    def proportions(self) -> np.ndarray:
        """Per-worker proportions ``α_i = d_i / D``."""
        sizes = self.data_sizes().astype(np.float64)
        total = sizes.sum()
        if total == 0:
            raise ValueError("partition is empty")
        return sizes / total

    def class_counts(self) -> np.ndarray:
        """Matrix of per-worker per-class sample counts ``d_i^k``.

        Shape ``(num_workers, num_classes)``.  Cached after first call.
        Computed with one flattened ``bincount`` over ``worker·K + label``
        keys instead of a per-worker Python loop (integer counts, so the
        result is unchanged; the loop was super-linear in wall time at
        10k+ workers).
        """
        if self._class_counts is None:
            sizes = self.data_sizes()
            n, k = self.num_workers, self.num_classes
            if sizes.sum() == 0:
                self._class_counts = np.zeros((n, k), dtype=np.int64)
                return self._class_counts
            flat = np.concatenate([ix for ix in self.indices if ix.size])
            assigned = self.labels[flat]
            if assigned.size and (assigned.min() < 0 or assigned.max() >= k):
                raise ValueError("partition labels out of range for num_classes")
            owners = np.repeat(np.arange(n, dtype=np.int64), sizes)
            self._class_counts = np.bincount(
                owners * k + assigned, minlength=n * k
            ).reshape(n, k)
        return self._class_counts

    def class_distribution(self) -> np.ndarray:
        """Per-worker label distributions ``α_i^k = d_i^k / d_i``.

        Workers with no data get a uniform distribution by convention.
        """
        counts = self.class_counts().astype(np.float64)
        sizes = counts.sum(axis=1, keepdims=True)
        dist = np.full_like(counts, 1.0 / self.num_classes)
        nonzero = sizes[:, 0] > 0
        dist[nonzero] = counts[nonzero] / sizes[nonzero]
        return dist

    def global_distribution(self) -> np.ndarray:
        """Global label distribution ``λ_k`` over all assigned samples."""
        counts = self.class_counts().sum(axis=0).astype(np.float64)
        total = counts.sum()
        if total == 0:
            raise ValueError("partition is empty")
        return counts / total

    def validate(self, allow_overlap: bool = False) -> None:
        """Check structural invariants (disjointness, index bounds)."""
        n = self.labels.shape[0]
        seen: set[int] = set()
        for i, ix in enumerate(self.indices):
            if ix.size and (ix.min() < 0 or ix.max() >= n):
                raise ValueError(f"worker {i} has out-of-range sample indices")
            if not allow_overlap:
                overlap = seen.intersection(ix.tolist())
                if overlap:
                    raise ValueError(
                        f"worker {i} shares samples with earlier workers: "
                        f"{sorted(overlap)[:5]}..."
                    )
                seen.update(ix.tolist())


# ----------------------------------------------------------------------
# Partition strategies
# ----------------------------------------------------------------------
@_register("partitioner", "iid")
def partition_iid(
    dataset: Dataset, num_workers: int, seed: int = 0
) -> Partition:
    """Shuffle and split the training set evenly across workers."""
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(dataset.num_train)
    chunks = np.array_split(order, num_workers)
    return Partition(
        indices=list(chunks),
        num_classes=dataset.num_classes,
        labels=dataset.y_train,
        name="iid",
    )


@_register("partitioner", "label-skew")
def partition_label_skew(
    dataset: Dataset,
    num_workers: int,
    labels_per_worker: int = 1,
    seed: int = 0,
) -> Partition:
    """The paper's label-skew partition.

    With ``labels_per_worker=1`` and 100 workers over a 10-class dataset this
    reproduces the paper's setup exactly: the samples of class ``k`` are
    split evenly among the block of workers assigned to class ``k``
    (workers ``v_{10k+1} .. v_{10(k+1)}`` for MNIST).

    For class counts that do not divide the worker count evenly, workers are
    assigned classes round-robin so every worker holds data from exactly
    ``labels_per_worker`` classes where possible.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if labels_per_worker < 1:
        raise ValueError("labels_per_worker must be >= 1")
    rng = np.random.default_rng(seed)
    k = dataset.num_classes
    labels = dataset.y_train

    # For each class, collect and shuffle its sample indices.
    class_pools: List[np.ndarray] = []
    for c in range(k):
        pool = np.flatnonzero(labels == c)
        class_pools.append(rng.permutation(pool))

    # Assign classes to workers: worker i receives classes
    # {(i * labels_per_worker + j) mod K} so that consecutive blocks of
    # workers share a class exactly like the paper's v1-v10 / v11-v20 blocks
    # when labels_per_worker == 1 and num_workers is a multiple of K.
    assignments: List[List[int]] = []
    for i in range(num_workers):
        base = (i * labels_per_worker * k) // num_workers
        classes = [(base + j) % k for j in range(labels_per_worker)]
        assignments.append(classes)

    # When there are fewer workers than classes some classes would otherwise
    # be left out entirely; hand the orphan classes out round-robin so every
    # sample is assigned (with N >= K, the paper's regime, this is a no-op).
    assigned_classes = {c for classes in assignments for c in classes}
    orphans = [c for c in range(k) if c not in assigned_classes]
    for j, c in enumerate(orphans):
        assignments[j % num_workers].append(c)

    # Count how many workers want each class, then split the class pool into
    # that many shards.
    demand = np.zeros(k, dtype=np.int64)
    for classes in assignments:
        for c in classes:
            demand[c] += 1
    shards: Dict[int, List[np.ndarray]] = {}
    for c in range(k):
        if demand[c] == 0:
            shards[c] = []
        else:
            shards[c] = list(np.array_split(class_pools[c], demand[c]))

    cursor = {c: 0 for c in range(k)}
    indices: List[np.ndarray] = []
    for classes in assignments:
        parts = []
        for c in classes:
            if cursor[c] < len(shards[c]):
                parts.append(shards[c][cursor[c]])
                cursor[c] += 1
        if parts:
            indices.append(np.concatenate(parts))
        else:
            indices.append(np.empty(0, dtype=np.int64))

    return Partition(
        indices=indices,
        num_classes=k,
        labels=labels,
        name=f"label-skew-{labels_per_worker}",
    )


@_register("partitioner", "dirichlet")
def partition_dirichlet(
    dataset: Dataset,
    num_workers: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_samples: int = 1,
) -> Partition:
    """Dirichlet label-skew partition (Hsu et al. style).

    Per class, sample a worker-share vector from ``Dirichlet(alpha)`` and
    split the class samples proportionally.  Smaller ``alpha`` means more
    skew.  Every worker is guaranteed at least ``min_samples`` samples by
    re-drawing until the constraint is met (bounded retries).
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    k = dataset.num_classes
    labels = dataset.y_train
    n = labels.shape[0]
    if n < num_workers * min_samples:
        raise ValueError("not enough samples to satisfy min_samples per worker")

    for _attempt in range(50):
        buckets: List[List[int]] = [[] for _ in range(num_workers)]
        for c in range(k):
            pool = rng.permutation(np.flatnonzero(labels == c))
            if pool.size == 0:
                continue
            shares = rng.dirichlet(np.full(num_workers, alpha))
            # Convert shares into cumulative cut points over the pool.
            cuts = (np.cumsum(shares)[:-1] * pool.size).astype(np.int64)
            pieces = np.split(pool, cuts)
            for i, piece in enumerate(pieces):
                buckets[i].extend(piece.tolist())
        sizes = np.array([len(b) for b in buckets])
        if sizes.min() >= min_samples:
            break
    else:
        raise RuntimeError(
            "failed to draw a Dirichlet partition meeting the minimum size "
            "constraint; increase alpha or dataset size"
        )

    indices = [np.array(sorted(b), dtype=np.int64) for b in buckets]
    return Partition(
        indices=indices,
        num_classes=k,
        labels=labels,
        name=f"dirichlet-{alpha}",
    )


#: Deprecation shim: the ``"partitioner"`` kind now lives in
#: :mod:`repro.registry`; this dict mirrors it for legacy callers.
PARTITIONERS = {
    "iid": partition_iid,
    "label-skew": partition_label_skew,
    "dirichlet": partition_dirichlet,
}


def make_partition(
    strategy: str, dataset: Dataset, num_workers: int, seed: int = 0, **kwargs
) -> Partition:
    """Build a partition by strategy name (``iid``/``label-skew``/``dirichlet``).

    Unknown strategies raise :class:`~repro.registry.UnknownComponentError`
    (a ``KeyError``) with close-match suggestions.
    """
    fn = _get_component("partitioner", strategy)
    return fn(dataset, num_workers, seed=seed, **kwargs)
