"""Dataset substrate: synthetic datasets, federated partitioning, statistics."""

from .synthetic import (
    DATASET_REGISTRY,
    Dataset,
    SyntheticImageConfig,
    load_dataset,
    make_cifar10_like,
    make_imagenet100_like,
    make_mnist_like,
    make_synthetic_images,
)
from .partition import (
    PARTITIONERS,
    Partition,
    make_partition,
    partition_dirichlet,
    partition_iid,
    partition_label_skew,
)
from .stats import (
    average_emd,
    emd,
    group_class_counts,
    group_data_sizes,
    group_distributions,
    group_emds,
    worker_emds,
)

__all__ = [
    "Dataset",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_mnist_like",
    "make_cifar10_like",
    "make_imagenet100_like",
    "DATASET_REGISTRY",
    "load_dataset",
    "Partition",
    "partition_iid",
    "partition_label_skew",
    "partition_dirichlet",
    "PARTITIONERS",
    "make_partition",
    "emd",
    "group_class_counts",
    "group_data_sizes",
    "group_distributions",
    "group_emds",
    "average_emd",
    "worker_emds",
]
