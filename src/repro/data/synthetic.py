"""Synthetic classification datasets standing in for MNIST / CIFAR-10 / ImageNet-100.

The evaluation in the paper uses three image datasets.  This repository has
no network access and no GPU, so we generate synthetic datasets with the
same *structural* properties that matter to the federated mechanism:

* the same number of classes (10, 10, 100),
* image-shaped samples (``(1, 28, 28)``, ``(3, 32, 32)``, configurable),
* learnable class structure: each class has a Gaussian prototype in pixel
  space plus per-sample noise and a smooth spatial correlation, so the
  models in :mod:`repro.nn` genuinely learn (accuracy rises well above
  chance) and the loss curves behave like real training curves,
* a held-out test split drawn from the same distribution.

Everything is deterministic given the seed, which the experiment harness
relies on for reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..registry import get as _get_component
from ..registry import register as _register

__all__ = [
    "Dataset",
    "SyntheticImageConfig",
    "make_synthetic_images",
    "make_mnist_like",
    "make_cifar10_like",
    "make_imagenet100_like",
    "DATASET_REGISTRY",
    "load_dataset",
]


@dataclass
class Dataset:
    """An in-memory classification dataset with train and test splits.

    Attributes
    ----------
    name:
        Registry name (e.g. ``"synthetic-mnist"``).
    x_train, y_train, x_test, y_test:
        Features are ``float64`` arrays; images have shape
        ``(N, C, H, W)`` and flat datasets ``(N, D)``.  Labels are ``int64``.
    num_classes:
        Number of distinct labels.
    """

    name: str
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if self.x_train.shape[0] != self.y_train.shape[0]:
            raise ValueError("train features/labels length mismatch")
        if self.x_test.shape[0] != self.y_test.shape[0]:
            raise ValueError("test features/labels length mismatch")

    @property
    def num_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.x_test.shape[0])

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        return tuple(self.x_train.shape[1:])

    def flattened(self) -> "Dataset":
        """Return a copy with samples flattened to vectors (for MLP models)."""
        return Dataset(
            name=self.name + "-flat",
            x_train=self.x_train.reshape(self.num_train, -1),
            y_train=self.y_train,
            x_test=self.x_test.reshape(self.num_test, -1),
            y_test=self.y_test,
            num_classes=self.num_classes,
        )

    def subset(self, indices: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Training subset (features, labels) selected by index array."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.x_train[indices], self.y_train[indices]


@dataclass
class SyntheticImageConfig:
    """Configuration for :func:`make_synthetic_images`."""

    num_classes: int = 10
    num_train: int = 2000
    num_test: int = 400
    channels: int = 1
    image_size: int = 28
    noise_std: float = 0.6
    prototype_scale: float = 1.5
    smoothing: int = 3
    seed: int = 0


def _smooth(images: np.ndarray, window: int) -> np.ndarray:
    """Apply a cheap separable box filter along the spatial axes.

    Real images have strong local spatial correlation; adding it to the
    synthetic data makes convolutional models meaningfully better than
    pixel-independent ones, which keeps the CNN-vs-LR comparisons in the
    benchmarks qualitatively faithful.
    """
    if window <= 1:
        return images
    kernel = np.ones(window) / window
    # Convolve along H then W using FFT-free cumulative sums for speed.
    out = images
    for axis in (-2, -1):
        out = np.apply_along_axis(
            lambda m: np.convolve(m, kernel, mode="same"), axis, out
        )
    return out


def make_synthetic_images(config: SyntheticImageConfig, name: str) -> Dataset:
    """Generate a synthetic image classification dataset.

    Each class ``k`` gets a random low-frequency prototype image; samples of
    class ``k`` are ``prototype_k + noise`` (then lightly smoothed and
    standardized).  Class priors are uniform.
    """
    cfg = config
    if cfg.num_classes < 2:
        raise ValueError("need at least two classes")
    if cfg.num_train < cfg.num_classes:
        raise ValueError("need at least one training sample per class")
    rng = np.random.default_rng(cfg.seed)
    shape = (cfg.channels, cfg.image_size, cfg.image_size)

    prototypes = rng.standard_normal((cfg.num_classes, *shape)) * cfg.prototype_scale
    prototypes = _smooth(prototypes, cfg.smoothing * 2 + 1)

    def _draw(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, cfg.num_classes, size=n)
        noise = rng.standard_normal((n, *shape)) * cfg.noise_std
        images = prototypes[labels] + _smooth(noise, cfg.smoothing)
        return images.astype(np.float64), labels.astype(np.int64)

    x_train, y_train = _draw(cfg.num_train)
    x_test, y_test = _draw(cfg.num_test)

    # Standardize with the training statistics only (no test leakage).
    mean = x_train.mean()
    std = x_train.std() + 1e-8
    x_train = (x_train - mean) / std
    x_test = (x_test - mean) / std

    return Dataset(
        name=name,
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        num_classes=cfg.num_classes,
    )


@_register("dataset", "synthetic-mnist")
def make_mnist_like(
    num_train: int = 2000,
    num_test: int = 400,
    image_size: int = 28,
    seed: int = 0,
) -> Dataset:
    """10-class single-channel dataset shaped like MNIST."""
    cfg = SyntheticImageConfig(
        num_classes=10,
        num_train=num_train,
        num_test=num_test,
        channels=1,
        image_size=image_size,
        seed=seed,
    )
    return make_synthetic_images(cfg, "synthetic-mnist")


@_register("dataset", "synthetic-cifar10")
def make_cifar10_like(
    num_train: int = 2000,
    num_test: int = 400,
    image_size: int = 32,
    seed: int = 0,
) -> Dataset:
    """10-class three-channel dataset shaped like CIFAR-10.

    CIFAR-10 is harder than MNIST; we reflect that by using a higher noise
    level so accuracy saturates lower and later, as in the paper's Fig. 5.
    """
    cfg = SyntheticImageConfig(
        num_classes=10,
        num_train=num_train,
        num_test=num_test,
        channels=3,
        image_size=image_size,
        noise_std=1.2,
        prototype_scale=1.2,
        seed=seed,
    )
    return make_synthetic_images(cfg, "synthetic-cifar10")


@_register("dataset", "synthetic-imagenet100")
def make_imagenet100_like(
    num_train: int = 3000,
    num_test: int = 500,
    image_size: int = 32,
    num_classes: int = 100,
    seed: int = 0,
) -> Dataset:
    """100-class three-channel dataset standing in for ImageNet-100.

    Image resolution is reduced (default 32x32) so the MiniVGG substitute
    trains in a pure-NumPy substrate; the class count matches the paper.
    """
    cfg = SyntheticImageConfig(
        num_classes=num_classes,
        num_train=num_train,
        num_test=num_test,
        channels=3,
        image_size=image_size,
        noise_std=1.0,
        prototype_scale=1.3,
        seed=seed,
    )
    return make_synthetic_images(cfg, "synthetic-imagenet100")


#: Deprecation shim: the ``"dataset"`` kind now lives in
#: :mod:`repro.registry`; this dict mirrors it for legacy callers.
DATASET_REGISTRY = {
    "synthetic-mnist": make_mnist_like,
    "synthetic-cifar10": make_cifar10_like,
    "synthetic-imagenet100": make_imagenet100_like,
}


def load_dataset(name: str, **kwargs) -> Dataset:
    """Load a dataset by registry name.

    Unknown names raise :class:`~repro.registry.UnknownComponentError`
    (a ``KeyError``) with close-match suggestions.
    """
    return _get_component("dataset", name)(**kwargs)
