"""Label-distribution statistics: EMD and grouping-level aggregates.

The convergence bound of Theorem 1 depends on the earth mover distance
(EMD, Eq. (11)) between each group's label distribution β_j^k and the global
label distribution λ_k:

    Λ_j = EMD(D, D_j) = Σ_k | λ_k − β_j^k |.

Table III of the paper reports the *average* EMD across groups for three
grouping strategies (Original = every worker its own group, TiFL, Air-FedGA).
These helpers compute all the ingredients from a :class:`~repro.data.partition.Partition`
plus a group assignment.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .partition import Partition

__all__ = [
    "emd",
    "group_class_counts",
    "group_distributions",
    "group_data_sizes",
    "group_emds",
    "average_emd",
    "worker_emds",
]


def emd(p: np.ndarray, q: np.ndarray) -> float:
    """Earth mover distance between two discrete label distributions.

    Following Eq. (11) of the paper (and Zhao et al. 2018), this is the L1
    distance between the probability vectors, not the transport-problem EMD.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError(f"distribution shapes differ: {p.shape} vs {q.shape}")
    if p.ndim != 1:
        raise ValueError("distributions must be 1-D")
    for name, v in (("p", p), ("q", q)):
        if np.any(v < -1e-12):
            raise ValueError(f"{name} has negative entries")
        total = v.sum()
        if total <= 0:
            raise ValueError(f"{name} does not sum to a positive value")
    p = p / p.sum()
    q = q / q.sum()
    return float(np.abs(p - q).sum())


def _validate_groups(groups: Sequence[Sequence[int]], num_workers: int) -> None:
    seen: set[int] = set()
    for g, members in enumerate(groups):
        for w in members:
            if not 0 <= w < num_workers:
                raise ValueError(f"group {g} references invalid worker {w}")
            if w in seen:
                raise ValueError(f"worker {w} appears in more than one group")
            seen.add(w)


def group_class_counts(
    partition: Partition, groups: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-group per-class sample counts ``D_j^k`` (shape: groups x classes)."""
    _validate_groups(groups, partition.num_workers)
    worker_counts = partition.class_counts()
    out = np.zeros((len(groups), partition.num_classes), dtype=np.int64)
    for g, members in enumerate(groups):
        if members:
            out[g] = worker_counts[np.asarray(list(members), dtype=np.int64)].sum(axis=0)
    return out


def group_data_sizes(
    partition: Partition, groups: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-group data sizes ``D_j``."""
    return group_class_counts(partition, groups).sum(axis=1)


def group_distributions(
    partition: Partition, groups: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-group label distributions ``β_j^k`` (uniform for empty groups)."""
    counts = group_class_counts(partition, groups).astype(np.float64)
    sizes = counts.sum(axis=1, keepdims=True)
    dist = np.full_like(counts, 1.0 / partition.num_classes)
    nonzero = sizes[:, 0] > 0
    dist[nonzero] = counts[nonzero] / sizes[nonzero]
    return dist


def group_emds(
    partition: Partition, groups: Sequence[Sequence[int]]
) -> np.ndarray:
    """Per-group EMD values ``Λ_j`` against the global distribution."""
    global_dist = partition.global_distribution()
    dists = group_distributions(partition, groups)
    return np.abs(dists - global_dist).sum(axis=1)


def average_emd(
    partition: Partition, groups: Sequence[Sequence[int]]
) -> float:
    """Average EMD across groups (the quantity reported in Table III)."""
    if len(groups) == 0:
        raise ValueError("no groups given")
    return float(group_emds(partition, groups).mean())


def worker_emds(partition: Partition) -> np.ndarray:
    """Per-worker EMD against the global distribution.

    This corresponds to the "Original" column of Table III, where every
    worker is its own group.
    """
    singleton_groups: List[List[int]] = [[i] for i in range(partition.num_workers)]
    return group_emds(partition, singleton_groups)
