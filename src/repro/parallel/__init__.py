"""Multiprocess group-parallel execution (see ``docs/ARCHITECTURE.md``).

Air-FedGA's grouping-asynchronous schedule makes groups independent
between global commits, and within one group every member's local SGD is
independent by construction.  This package exploits the second property:
:class:`ProcessGroupExecutor` shards a group's intra-group training round
across a persistent pool of worker processes, moving stacked parameter
tensors through ``multiprocessing.shared_memory`` arenas so that no model
state is pickled per round, while reproducing the serial
:class:`~repro.nn.batched.BatchedWorkerEngine` call geometry exactly —
results are bit-identical to the serial event loop in float64.

Enable it through the config knob::

    AirFedGAConfig(parallelism=ParallelismConfig(mode="processes"))

With ``ParallelismConfig(pipeline=True)`` the grouped event loop
additionally *overlaps* its phases: :meth:`ProcessGroupExecutor.submit_group`
dispatches the next ready group's shards without blocking (returning a
:class:`GroupFuture` whose arena slot coexists with the committing
group's), so the pool trains while the parent process aggregates — see
``docs/ARCHITECTURE.md``, "Pipelined event loop".
"""

from .executor import GroupFuture, ProcessGroupExecutor, UnsupportedModelError

__all__ = ["GroupFuture", "ProcessGroupExecutor", "UnsupportedModelError"]
