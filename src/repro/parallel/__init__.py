"""Multiprocess group-parallel execution (see ``docs/ARCHITECTURE.md``).

Air-FedGA's grouping-asynchronous schedule makes groups independent
between global commits, and within one group every member's local SGD is
independent by construction.  This package exploits the second property:
:class:`ProcessGroupExecutor` shards a group's intra-group training round
across a persistent pool of worker processes, moving stacked parameter
tensors through ``multiprocessing.shared_memory`` arenas so that no model
state is pickled per round, while reproducing the serial
:class:`~repro.nn.batched.BatchedWorkerEngine` call geometry exactly —
results are bit-identical to the serial event loop in float64.

Enable it through the config knob::

    AirFedGAConfig(parallelism=ParallelismConfig(mode="processes"))
"""

from .executor import ProcessGroupExecutor, UnsupportedModelError

__all__ = ["ProcessGroupExecutor", "UnsupportedModelError"]
