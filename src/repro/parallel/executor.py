"""Process-pool group executor: multi-core intra-group local training.

One grouped round trains ``G`` independent per-worker SGD runs from the
same base model.  The serial :class:`~repro.nn.batched.BatchedWorkerEngine`
already fuses them into leading-group-axis tensor ops inside one process;
:class:`ProcessGroupExecutor` adds the next multiplicative axis by
splitting the group into contiguous *shards* and running each shard's
batched engine on a persistent worker process.

Data flow (see ``docs/ARCHITECTURE.md`` for the diagram):

* **pool lifecycle** — a :class:`concurrent.futures.ProcessPoolExecutor`
  is spawned once per trainer; each worker process builds its own engine
  from a picklable :class:`~repro.nn.batched.EngineSpec` in its
  initializer (with the default ``fork`` start method nothing is pickled
  at all; with ``spawn`` the spec and training data are pickled exactly
  once at start-up, never per round);
* **shared-memory arena** — the group's base vector and the stacked
  ``(G, q)`` result live in ``multiprocessing.shared_memory`` segments;
  workers map them as NumPy views
  (:func:`~repro.nn.batched.shared_stack_view`) and write their shard's
  rows in place, so a round moves model state through page-cache-free
  shared mappings instead of pickles or pipes;
* **result reduction ordering** — shards are contiguous row ranges of the
  group, so the parent reassembles the stack by construction; the
  subsequent AirComp aggregation, power control and channel-noise draws
  all stay in the parent process and consume their RNG streams in the
  serial order.

Determinism: per-worker mini-batch streams are derived from
``SeedSequence([seed, worker_id, round_index, tag])`` — a *keyed* spawn of
the experiment seed that is independent of which pool process trains the
worker — and shards replicate the serial engine's padding/tiling geometry
(``pad_to`` pins ragged shards to the full group's batch dimension; conv
shards align to the engine's group tile).  Result: float64 runs are
bit-identical to the serial event loop, tested in
``tests/parallel/test_process_executor.py``.
"""

from __future__ import annotations

import os
import weakref
from collections import deque
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
)
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.batched import (
    BatchedWorkerEngine,
    EngineSpec,
    model_shard_safe,
    shared_stack_view,
)
from ..nn.models import Model

__all__ = ["GroupFuture", "ProcessGroupExecutor", "UnsupportedModelError"]


class UnsupportedModelError(ValueError):
    """The model cannot be sharded across processes (no batched engine, or
    active Dropout whose group-spanning RNG stream cannot be split)."""


# ----------------------------------------------------------------------
# Worker-process side.  Module-level state + functions: the pool pickles
# only small task tuples per dispatch (ids, row offset, round index).
# ----------------------------------------------------------------------
class _WorkerState:
    def __init__(
        self,
        engine: BatchedWorkerEngine,
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        base_shms: List[SharedMemory],
        out_shms: List[SharedMemory],
        bases: List[np.ndarray],
        outs: List[np.ndarray],
        hyper: Dict[str, object],
    ) -> None:
        self.engine = engine
        self.worker_data = worker_data
        self.base_shms = base_shms
        self.out_shms = out_shms
        self.bases = bases
        self.outs = outs
        self.hyper = hyper


_STATE: Optional[_WorkerState] = None


def _attach(name: str) -> SharedMemory:
    # The parent owns (and unlinks) the segments; the resource tracker is
    # shared across the process tree, so attaching here must neither
    # register nor unregister the name — SharedMemory(name=...) re-adding
    # it to the tracker's set is a no-op, and the parent's unlink clears
    # it exactly once.
    return SharedMemory(name=name)


def _init_worker(
    spec: EngineSpec,
    worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
    base_names: List[str],
    out_names: List[str],
    out_rows: int,
    dimension: int,
    dtype_str: str,
    hyper: Dict[str, object],
) -> None:
    global _STATE
    dtype = np.dtype(dtype_str)
    base_shms = [_attach(name) for name in base_names]
    out_shms = [_attach(name) for name in out_names]
    bases = [
        np.frombuffer(shm.buf, dtype=dtype, count=dimension) for shm in base_shms
    ]
    outs = [
        shared_stack_view(shm.buf, out_rows, dimension, dtype) for shm in out_shms
    ]
    _STATE = _WorkerState(
        engine=spec.build(),
        worker_data=worker_data,
        base_shms=base_shms,
        out_shms=out_shms,
        bases=bases,
        outs=outs,
        hyper=hyper,
    )


def _run_shard(
    slot: int, row0: int, ids: List[int], round_index: int, pad_to: Optional[int]
) -> int:
    """Train one contiguous shard of a group into its arena-slot rows."""
    st = _STATE
    assert st is not None, "pool worker used before initialization"
    st.engine.run_group(
        ids,
        [st.worker_data[w] for w in ids],
        st.bases[slot],
        round_index,
        learning_rate=st.hyper["learning_rate"],
        local_steps=st.hyper["local_steps"],
        batch_size=st.hyper["batch_size"],
        seed=st.hyper["seed"],
        out=st.outs[slot][row0 : row0 + len(ids)],
        pad_to=pad_to,
    )
    return row0


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
#: Shared-memory objects whose mapping could not be closed because NumPy
#: views of it were still alive at teardown.  Keeping them referenced here
#: (after unlinking the name) stops SharedMemory.__del__ from retrying the
#: close and spraying BufferErrors at interpreter exit; the OS reclaims
#: the mapping when the process ends.
_PARKED_SEGMENTS: List[SharedMemory] = []


def _cleanup(holder: Dict[str, object]) -> None:
    """Finalizer shared by close()/GC/atexit: idempotent teardown."""
    pool = holder.pop("pool", None)
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
    views = holder.pop("views", None)
    if views is not None:
        # Drop the arena views first so the mmap has no exported pointers
        # left (unless a caller still holds a donated stack view).
        views.clear()
    for key in ("base_shms", "out_shms"):
        shms = holder.pop(key, None)
        if shms is None:
            continue
        for shm in shms:
            try:
                shm.unlink()
            except Exception:
                pass
            try:
                shm.close()
            except BufferError:
                _PARKED_SEGMENTS.append(shm)
            except Exception:
                pass


class GroupFuture:
    """Handle to one in-flight :meth:`ProcessGroupExecutor.submit_group`.

    The dispatch owns one arena *slot* (a base-vector segment plus a
    ``(rows, q)`` result segment) until :meth:`release` is called, so a
    consumer may aggregate straight out of :meth:`result`'s donated view
    while a later dispatch trains into a different slot — this is what the
    pipelined event loop relies on (``config.parallelism.pipeline``).

    Lifecycle: ``result()`` blocks until the shard tasks finish (applying
    the executor's pool-crash recovery: respawn + resubmit up to
    ``max_restarts`` times, then an in-process fallback run — results never
    change, see :class:`ProcessGroupExecutor`); ``release()`` returns the
    slot to the executor's free list, invalidating the view at the *next*
    dispatch, not immediately; ``discard()`` abandons a speculative result
    (waiting for the pool to go quiet so the slot is safe to reuse).
    """

    def __init__(
        self,
        executor: "ProcessGroupExecutor",
        slot: int,
        ids: List[int],
        round_index: int,
        pad_to: Optional[int],
        shards: List[Tuple[int, int]],
        futures: List[Future],
    ) -> None:
        self._executor = executor
        self.slot = slot
        self.worker_ids = ids
        self.round_index = round_index
        self._pad_to = pad_to
        self._shards = shards
        self._futures = futures
        self._result: Optional[np.ndarray] = None
        self._released = False

    def done(self) -> bool:
        """Whether every shard task has finished (successfully or not)."""
        if self._futures is None:
            return False  # submission failed; result() will resubmit
        return all(f.done() for f in self._futures)

    def result(self) -> np.ndarray:
        """Wait for the dispatch and return the ``(G, q)`` arena-slot view.

        The view stays valid until :meth:`release` frees the slot *and* a
        later dispatch reuses it.  Pool crashes are recovered exactly like
        the synchronous path: the pool is respawned and the shards
        resubmitted up to ``max_restarts`` times, then the round runs on
        the in-process fallback engine — bit-identical either way.
        """
        if self._result is not None:
            return self._result
        if self._released:
            raise RuntimeError("GroupFuture.result() called after release()")
        ex = self._executor
        done = False
        # Total submission attempts (the one made at submit time included)
        # is max_restarts + 1, matching the synchronous contract.  A failed
        # submit in submit_group already consumed attempt #1.
        attempts = ex.max_restarts + (0 if self._futures is None else 1)
        while True:
            if self._futures is not None:
                attempts -= 1
                try:
                    for f in self._futures:
                        f.result()
                    done = True
                    break
                except (BrokenExecutor, CancelledError):
                    # CancelledError: a sibling in-flight dispatch hit the
                    # broken pool first and its respawn cancelled our
                    # still-pending shard tasks — same recovery applies.
                    ex.restarts += 1
                    ex._respawn_pool()
                    self._futures = None
            if attempts <= 0:
                break
            self._futures = ex._try_submit_shards(
                self.slot, self._shards, self.worker_ids, self.round_index,
                self._pad_to,
            )
            if self._futures is None:
                attempts -= 1
                ex.restarts += 1
                ex._respawn_pool()
        if not done:
            # The broken pool's processes are gone (the respawn shut the
            # remains down), so the slot has no concurrent writer left.
            ex._run_fallback(self.slot, self.worker_ids, self.round_index)
        self._result = ex._slot_out_view(self.slot)[: len(self.worker_ids)]
        return self._result

    def release(self) -> None:
        """Return the arena slot to the executor's free list (idempotent).

        Call only once the result has been consumed (or via
        :meth:`discard` for an unconsumed speculative result); the donated
        view is overwritten by the next dispatch that acquires the slot.
        """
        if self._released:
            return
        self._released = True
        self._executor._release_slot(self.slot)

    def discard(self) -> None:
        """Abandon the dispatch: wait for its tasks, swallow errors, release.

        Used by the pipelined event loop when a speculative result turns
        out invalid.  Waiting (rather than cancelling) is what makes the
        slot safe to reuse — a pool worker may already be writing into it.
        """
        if self._released:
            return
        for f in self._futures or ():
            try:
                f.result()
            except Exception:
                pass
        self.release()


class ProcessGroupExecutor:
    """Schedules intra-group training rounds onto a worker-process pool.

    Parameters
    ----------
    model:
        The trainer's model; validated for batched-engine support and
        shard safety (raises :class:`UnsupportedModelError` otherwise).
    worker_data:
        Per-worker ``(x, y)`` training subsets, indexed by worker id.
    learning_rate, local_steps, batch_size, seed:
        The worker-side SGD hyper-parameters (fixed per experiment).
    num_processes:
        Pool size; ``None`` uses ``os.cpu_count()``.
    start_method:
        ``"fork"`` (default; zero-copy inheritance), ``"spawn"`` or
        ``"forkserver"``.
    max_restarts:
        Pool-crash recovery budget *per dispatch*: a dispatch that hits a
        broken pool respawns it and retries this many times, then falls
        back to an in-process engine run, so a crashed worker never loses
        a round or changes its result.
    num_slots:
        Number of independent shared-memory arena slots (each one base
        segment plus one ``rows × q`` result segment).  The default 1
        reproduces the synchronous contract (a result view is valid until
        the next dispatch); the pipelined event loop uses
        ``config.parallelism.max_inflight`` slots so the committing
        group's stack and a speculatively trained group's stack coexist.
    """

    def __init__(
        self,
        model: Model,
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        *,
        learning_rate: float,
        local_steps: int,
        batch_size: int,
        seed: int,
        num_processes: Optional[int] = None,
        start_method: str = "fork",
        max_restarts: int = 1,
        num_slots: int = 1,
    ) -> None:
        # build_spec first: it produces the accurate diagnostic for
        # non-sequential / kernel-less / parameter-less models; the
        # shard-safety check then only ever fires for actual Dropout.
        try:
            self._spec = BatchedWorkerEngine.build_spec(model)
        except ValueError as exc:
            raise UnsupportedModelError(str(exc)) from exc
        if not model_shard_safe(model):
            raise UnsupportedModelError(
                "model contains active Dropout layers; their worker-major "
                "RNG stream spans the whole group and cannot be sharded "
                "across processes (train it with parallelism mode 'none')"
            )
        probe = self._spec.build()
        self.dimension = probe.dimension
        self.dtype = np.dtype(probe.dtype)
        self.group_tile = probe.group_tile
        # The probe doubles as the crash-recovery fallback engine (its
        # stacked buffers are only allocated on first use).
        self._fallback_engine: BatchedWorkerEngine = probe
        self._worker_data = list(worker_data)
        self._batch_size = int(batch_size)
        self._hyper: Dict[str, object] = {
            "learning_rate": float(learning_rate),
            "local_steps": int(local_steps),
            "batch_size": int(batch_size),
            "seed": int(seed),
        }
        self.num_processes = int(num_processes or os.cpu_count() or 1)
        self.start_method = start_method
        self.max_restarts = int(max_restarts)
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        self.num_slots = int(num_slots)
        #: Dispatch statistics (pool respawns and in-process fallbacks are
        #: how crash recovery is observed from tests and benchmarks).
        self.dispatches = 0
        self.restarts = 0
        self.fallbacks = 0

        rows = len(self._worker_data)
        itemsize = self.dtype.itemsize
        self._rows = rows
        self._holder: Dict[str, object] = {}
        base_shms = [
            SharedMemory(create=True, size=max(1, self.dimension * itemsize))
            for _ in range(self.num_slots)
        ]
        out_shms = [
            SharedMemory(create=True, size=max(1, rows * self.dimension * itemsize))
            for _ in range(self.num_slots)
        ]
        self._holder["base_shms"] = base_shms
        self._holder["out_shms"] = out_shms
        # The arena views live in the holder (not on self) so _cleanup can
        # drop them before closing the mappings in every teardown path.
        # Layout: one (base, out) view pair per slot, interleaved.
        views: List[np.ndarray] = []
        for b, o in zip(base_shms, out_shms):
            views.append(np.frombuffer(b.buf, dtype=self.dtype, count=self.dimension))
            views.append(shared_stack_view(o.buf, rows, self.dimension, self.dtype))
        self._holder["views"] = views
        # Free-slot queue, FIFO: a just-released slot goes to the *back*,
        # so the slot whose donated view a caller may still be reading is
        # reused last.  With num_slots >= 2 and at most one speculative
        # dispatch outstanding, this keeps a slot's data intact from its
        # release through the aggregation that reads it.
        self._free_slots: Deque[int] = deque(range(self.num_slots))
        #: Slot of the most recent completed synchronous dispatch (what the
        #: donated :meth:`stack` view refers to).
        self._last_slot = 0
        self._finalizer = weakref.finalize(self, _cleanup, self._holder)
        self._spawn_pool()

    def _slot_base_view(self, slot: int) -> np.ndarray:
        return self._holder["views"][2 * slot]

    def _slot_out_view(self, slot: int) -> np.ndarray:
        return self._holder["views"][2 * slot + 1]

    # ------------------------------------------------------------------
    def _spawn_pool(self) -> None:
        self._holder["pool"] = ProcessPoolExecutor(
            max_workers=self.num_processes,
            mp_context=get_context(self.start_method),
            initializer=_init_worker,
            initargs=(
                self._spec,
                self._worker_data,
                [shm.name for shm in self._holder["base_shms"]],
                [shm.name for shm in self._holder["out_shms"]],
                self._rows,
                self.dimension,
                self.dtype.str,
                self._hyper,
            ),
        )

    def _respawn_pool(self) -> None:
        """Replace a broken pool (shut the remains down, spawn a fresh one)."""
        pool = self._pool
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self._spawn_pool()

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self._holder.get("pool")

    @property
    def closed(self) -> bool:
        return "pool" not in self._holder

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool processes (empty before the first dispatch
        when the pool spawns workers on demand)."""
        pool = self._pool
        if pool is None:
            return []
        return [p.pid for p in getattr(pool, "_processes", {}).values()]

    # ------------------------------------------------------------------
    def _plan_shards(
        self, ids: Sequence[int]
    ) -> Tuple[List[Tuple[int, int]], Optional[int]]:
        """Split ``ids`` into contiguous ``(start, stop)`` shards.

        Two rules keep sharded execution bit-identical to the serial call:

        * convolutional engines tile groups internally
          (``group_tile``), so shard boundaries must fall on tile
          multiples — each shard then re-tiles into exactly the serial
          call's tiles;
        * untiled (dense) engines run the whole group as one padded
          tensor, so every shard is pinned to the *group's* padded batch
          dimension via ``pad_to``.
        """
        n = len(ids)
        tile = self.group_tile
        if tile is not None and n > tile:
            units = (n + tile - 1) // tile
            shards = min(self.num_processes, units)
            per, extra = divmod(units, shards)
            bounds, start = [], 0
            for s in range(shards):
                take = (per + (1 if s < extra else 0)) * tile
                stop = min(n, start + take)
                bounds.append((start, stop))
                start = stop
            return [b for b in bounds if b[0] < b[1]], None
        shards = min(self.num_processes, n)
        per, extra = divmod(n, shards)
        bounds, start = [], 0
        for s in range(shards):
            stop = start + per + (1 if s < extra else 0)
            bounds.append((start, stop))
            start = stop
        batches = [
            min(self._batch_size, self._worker_data[w][0].shape[0]) for w in ids
        ]
        active = [b for b in batches if b > 0]
        pad_to = max(active) if active else None
        return [b for b in bounds if b[0] < b[1]], pad_to

    # ------------------------------------------------------------------
    # Arena-slot bookkeeping
    # ------------------------------------------------------------------
    @property
    def free_slots(self) -> int:
        """Number of arena slots available for a new dispatch."""
        return len(self._free_slots)

    def _acquire_slot(self) -> int:
        if not self._free_slots:
            raise RuntimeError(
                "no free arena slot: every in-flight GroupFuture must be "
                "released before another dispatch (raise "
                "parallelism.max_inflight to hold more results at once)"
            )
        return self._free_slots.popleft()

    def _release_slot(self, slot: int) -> None:
        self._free_slots.append(slot)

    def stack(self, group_size: int) -> np.ndarray:
        """Donated ``(G, q)`` view into the shared result arena.

        The trainer uses this as its group stack so worker processes write
        updated models directly into the memory the aggregation reads —
        the round performs no result copy at all.  Refers to the slot of
        the most recent synchronous :meth:`run_group` dispatch and is
        reused by a later dispatch, matching the trainer's own
        buffer-reuse contract.
        """
        if self.closed:
            raise RuntimeError("executor is closed")
        if group_size > self._rows:
            raise ValueError(
                f"group of {group_size} exceeds the arena ({self._rows} rows)"
            )
        return self._slot_out_view(self._last_slot)[:group_size]

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _try_submit_shards(
        self,
        slot: int,
        shards: List[Tuple[int, int]],
        ids: List[int],
        round_index: int,
        pad_to: Optional[int],
    ) -> Optional[List[Future]]:
        """Submit one shard task per range; ``None`` if the pool is broken."""
        pool = self._pool
        try:
            return [
                pool.submit(
                    _run_shard, slot, start, ids[start:stop], round_index, pad_to
                )
                for start, stop in shards
            ]
        except BrokenExecutor:
            return None

    def _run_fallback(self, slot: int, ids: List[int], round_index: int) -> None:
        """Last line of defence: run the round in-process.  Same engine,
        same geometry (full group, serial call tree) — the result is
        identical, only the parallelism is lost for this dispatch."""
        self.fallbacks += 1
        self._fallback_engine.run_group(
            ids,
            [self._worker_data[w] for w in ids],
            self._slot_base_view(slot),
            round_index,
            learning_rate=self._hyper["learning_rate"],
            local_steps=self._hyper["local_steps"],
            batch_size=self._hyper["batch_size"],
            seed=self._hyper["seed"],
            out=self._slot_out_view(slot)[: len(ids)],
        )

    def submit_group(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
    ) -> GroupFuture:
        """Dispatch a group's local round without waiting for the result.

        The base vector is copied into a private arena slot *now*, so the
        caller may keep mutating its buffers while the pool trains; the
        returned :class:`GroupFuture` yields the stacked ``(G, q)`` result
        and holds the slot until released.  At most ``num_slots``
        dispatches may be in flight; the pipelined event loop holds two
        (the committing group and the speculative one).
        """
        if self.closed:
            raise RuntimeError("executor is closed")
        ids = list(worker_ids)
        if len(ids) == 0:
            raise ValueError("at least one worker required")
        if len(ids) > self._rows:
            raise ValueError(
                f"group of {len(ids)} exceeds the arena ({self._rows} rows)"
            )
        slot = self._acquire_slot()
        np.copyto(self._slot_base_view(slot), base_vector)
        shards, pad_to = self._plan_shards(ids)
        self.dispatches += 1
        futures = self._try_submit_shards(slot, shards, ids, round_index, pad_to)
        if futures is None:
            # Broken pool at submit time: respawn now so the resubmission
            # budget in GroupFuture.result() starts from a live pool.
            self.restarts += 1
            self._respawn_pool()
        return GroupFuture(self, slot, ids, round_index, pad_to, shards, futures)

    def run_group(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Train the group's local round on the pool; return the ``(G, q)``
        stack (the donated arena view unless ``out`` is supplied)."""
        future = self.submit_group(worker_ids, base_vector, round_index)
        try:
            result = future.result()
        finally:
            # FIFO slot reuse keeps the donated view intact until the next
            # dispatch even though the slot is already back on the free list.
            self._last_slot = future.slot
            future.release()
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the shared-memory arenas."""
        _cleanup(self._holder)

    def __enter__(self) -> "ProcessGroupExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
