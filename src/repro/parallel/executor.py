"""Process-pool group executor: multi-core intra-group local training.

One grouped round trains ``G`` independent per-worker SGD runs from the
same base model.  The serial :class:`~repro.nn.batched.BatchedWorkerEngine`
already fuses them into leading-group-axis tensor ops inside one process;
:class:`ProcessGroupExecutor` adds the next multiplicative axis by
splitting the group into contiguous *shards* and running each shard's
batched engine on a persistent worker process.

Data flow (see ``docs/ARCHITECTURE.md`` for the diagram):

* **pool lifecycle** — a :class:`concurrent.futures.ProcessPoolExecutor`
  is spawned once per trainer; each worker process builds its own engine
  from a picklable :class:`~repro.nn.batched.EngineSpec` in its
  initializer (with the default ``fork`` start method nothing is pickled
  at all; with ``spawn`` the spec and training data are pickled exactly
  once at start-up, never per round);
* **shared-memory arena** — the group's base vector and the stacked
  ``(G, q)`` result live in ``multiprocessing.shared_memory`` segments;
  workers map them as NumPy views
  (:func:`~repro.nn.batched.shared_stack_view`) and write their shard's
  rows in place, so a round moves model state through page-cache-free
  shared mappings instead of pickles or pipes;
* **result reduction ordering** — shards are contiguous row ranges of the
  group, so the parent reassembles the stack by construction; the
  subsequent AirComp aggregation, power control and channel-noise draws
  all stay in the parent process and consume their RNG streams in the
  serial order.

Determinism: per-worker mini-batch streams are derived from
``SeedSequence([seed, worker_id, round_index, tag])`` — a *keyed* spawn of
the experiment seed that is independent of which pool process trains the
worker — and shards replicate the serial engine's padding/tiling geometry
(``pad_to`` pins ragged shards to the full group's batch dimension; conv
shards align to the engine's group tile).  Result: float64 runs are
bit-identical to the serial event loop, tested in
``tests/parallel/test_process_executor.py``.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.batched import (
    BatchedWorkerEngine,
    EngineSpec,
    model_shard_safe,
    shared_stack_view,
)
from ..nn.models import Model

__all__ = ["ProcessGroupExecutor", "UnsupportedModelError"]


class UnsupportedModelError(ValueError):
    """The model cannot be sharded across processes (no batched engine, or
    active Dropout whose group-spanning RNG stream cannot be split)."""


# ----------------------------------------------------------------------
# Worker-process side.  Module-level state + functions: the pool pickles
# only small task tuples per dispatch (ids, row offset, round index).
# ----------------------------------------------------------------------
class _WorkerState:
    def __init__(
        self,
        engine: BatchedWorkerEngine,
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        base_shm: SharedMemory,
        out_shm: SharedMemory,
        base: np.ndarray,
        out: np.ndarray,
        hyper: Dict[str, object],
    ) -> None:
        self.engine = engine
        self.worker_data = worker_data
        self.base_shm = base_shm
        self.out_shm = out_shm
        self.base = base
        self.out = out
        self.hyper = hyper


_STATE: Optional[_WorkerState] = None


def _attach(name: str) -> SharedMemory:
    # The parent owns (and unlinks) the segments; the resource tracker is
    # shared across the process tree, so attaching here must neither
    # register nor unregister the name — SharedMemory(name=...) re-adding
    # it to the tracker's set is a no-op, and the parent's unlink clears
    # it exactly once.
    return SharedMemory(name=name)


def _init_worker(
    spec: EngineSpec,
    worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
    base_name: str,
    out_name: str,
    out_rows: int,
    dimension: int,
    dtype_str: str,
    hyper: Dict[str, object],
) -> None:
    global _STATE
    dtype = np.dtype(dtype_str)
    base_shm = _attach(base_name)
    out_shm = _attach(out_name)
    base = np.frombuffer(base_shm.buf, dtype=dtype, count=dimension)
    out = shared_stack_view(out_shm.buf, out_rows, dimension, dtype)
    _STATE = _WorkerState(
        engine=spec.build(),
        worker_data=worker_data,
        base_shm=base_shm,
        out_shm=out_shm,
        base=base,
        out=out,
        hyper=hyper,
    )


def _run_shard(
    row0: int, ids: List[int], round_index: int, pad_to: Optional[int]
) -> int:
    """Train one contiguous shard of a group into its arena rows."""
    st = _STATE
    assert st is not None, "pool worker used before initialization"
    st.engine.run_group(
        ids,
        [st.worker_data[w] for w in ids],
        st.base,
        round_index,
        learning_rate=st.hyper["learning_rate"],
        local_steps=st.hyper["local_steps"],
        batch_size=st.hyper["batch_size"],
        seed=st.hyper["seed"],
        out=st.out[row0 : row0 + len(ids)],
        pad_to=pad_to,
    )
    return row0


# ----------------------------------------------------------------------
# Parent side.
# ----------------------------------------------------------------------
#: Shared-memory objects whose mapping could not be closed because NumPy
#: views of it were still alive at teardown.  Keeping them referenced here
#: (after unlinking the name) stops SharedMemory.__del__ from retrying the
#: close and spraying BufferErrors at interpreter exit; the OS reclaims
#: the mapping when the process ends.
_PARKED_SEGMENTS: List[SharedMemory] = []


def _cleanup(holder: Dict[str, object]) -> None:
    """Finalizer shared by close()/GC/atexit: idempotent teardown."""
    pool = holder.pop("pool", None)
    if pool is not None:
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:
            pass
    views = holder.pop("views", None)
    if views is not None:
        # Drop the arena views first so the mmap has no exported pointers
        # left (unless a caller still holds a donated stack view).
        views.clear()
    for key in ("base_shm", "out_shm"):
        shm = holder.pop(key, None)
        if shm is None:
            continue
        try:
            shm.unlink()
        except Exception:
            pass
        try:
            shm.close()
        except BufferError:
            _PARKED_SEGMENTS.append(shm)
        except Exception:
            pass


class ProcessGroupExecutor:
    """Schedules intra-group training rounds onto a worker-process pool.

    Parameters
    ----------
    model:
        The trainer's model; validated for batched-engine support and
        shard safety (raises :class:`UnsupportedModelError` otherwise).
    worker_data:
        Per-worker ``(x, y)`` training subsets, indexed by worker id.
    learning_rate, local_steps, batch_size, seed:
        The worker-side SGD hyper-parameters (fixed per experiment).
    num_processes:
        Pool size; ``None`` uses ``os.cpu_count()``.
    start_method:
        ``"fork"`` (default; zero-copy inheritance), ``"spawn"`` or
        ``"forkserver"``.
    max_restarts:
        Pool-crash recovery budget *per dispatch*: a dispatch that hits a
        broken pool respawns it and retries this many times, then falls
        back to an in-process engine run, so a crashed worker never loses
        a round or changes its result.
    """

    def __init__(
        self,
        model: Model,
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        *,
        learning_rate: float,
        local_steps: int,
        batch_size: int,
        seed: int,
        num_processes: Optional[int] = None,
        start_method: str = "fork",
        max_restarts: int = 1,
    ) -> None:
        # build_spec first: it produces the accurate diagnostic for
        # non-sequential / kernel-less / parameter-less models; the
        # shard-safety check then only ever fires for actual Dropout.
        try:
            self._spec = BatchedWorkerEngine.build_spec(model)
        except ValueError as exc:
            raise UnsupportedModelError(str(exc)) from exc
        if not model_shard_safe(model):
            raise UnsupportedModelError(
                "model contains active Dropout layers; their worker-major "
                "RNG stream spans the whole group and cannot be sharded "
                "across processes (train it with parallelism mode 'none')"
            )
        probe = self._spec.build()
        self.dimension = probe.dimension
        self.dtype = np.dtype(probe.dtype)
        self.group_tile = probe.group_tile
        # The probe doubles as the crash-recovery fallback engine (its
        # stacked buffers are only allocated on first use).
        self._fallback_engine: BatchedWorkerEngine = probe
        self._worker_data = list(worker_data)
        self._batch_size = int(batch_size)
        self._hyper: Dict[str, object] = {
            "learning_rate": float(learning_rate),
            "local_steps": int(local_steps),
            "batch_size": int(batch_size),
            "seed": int(seed),
        }
        self.num_processes = int(num_processes or os.cpu_count() or 1)
        self.start_method = start_method
        self.max_restarts = int(max_restarts)
        #: Dispatch statistics (pool respawns and in-process fallbacks are
        #: how crash recovery is observed from tests and benchmarks).
        self.dispatches = 0
        self.restarts = 0
        self.fallbacks = 0

        rows = len(self._worker_data)
        itemsize = self.dtype.itemsize
        self._rows = rows
        self._holder: Dict[str, object] = {}
        base_shm = SharedMemory(create=True, size=max(1, self.dimension * itemsize))
        out_shm = SharedMemory(
            create=True, size=max(1, rows * self.dimension * itemsize)
        )
        self._holder["base_shm"] = base_shm
        self._holder["out_shm"] = out_shm
        # The arena views live in the holder (not on self) so _cleanup can
        # drop them before closing the mappings in every teardown path.
        self._holder["views"] = [
            np.frombuffer(base_shm.buf, dtype=self.dtype, count=self.dimension),
            shared_stack_view(out_shm.buf, rows, self.dimension, self.dtype),
        ]
        self._finalizer = weakref.finalize(self, _cleanup, self._holder)
        self._spawn_pool()

    @property
    def _base_view(self) -> np.ndarray:
        return self._holder["views"][0]

    @property
    def _out_view(self) -> np.ndarray:
        return self._holder["views"][1]

    # ------------------------------------------------------------------
    def _spawn_pool(self) -> None:
        self._holder["pool"] = ProcessPoolExecutor(
            max_workers=self.num_processes,
            mp_context=get_context(self.start_method),
            initializer=_init_worker,
            initargs=(
                self._spec,
                self._worker_data,
                self._holder["base_shm"].name,
                self._holder["out_shm"].name,
                self._rows,
                self.dimension,
                self.dtype.str,
                self._hyper,
            ),
        )

    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        return self._holder.get("pool")

    @property
    def closed(self) -> bool:
        return "pool" not in self._holder

    def worker_pids(self) -> List[int]:
        """PIDs of the live pool processes (empty before the first dispatch
        when the pool spawns workers on demand)."""
        pool = self._pool
        if pool is None:
            return []
        return [p.pid for p in getattr(pool, "_processes", {}).values()]

    # ------------------------------------------------------------------
    def _plan_shards(
        self, ids: Sequence[int]
    ) -> Tuple[List[Tuple[int, int]], Optional[int]]:
        """Split ``ids`` into contiguous ``(start, stop)`` shards.

        Two rules keep sharded execution bit-identical to the serial call:

        * convolutional engines tile groups internally
          (``group_tile``), so shard boundaries must fall on tile
          multiples — each shard then re-tiles into exactly the serial
          call's tiles;
        * untiled (dense) engines run the whole group as one padded
          tensor, so every shard is pinned to the *group's* padded batch
          dimension via ``pad_to``.
        """
        n = len(ids)
        tile = self.group_tile
        if tile is not None and n > tile:
            units = (n + tile - 1) // tile
            shards = min(self.num_processes, units)
            per, extra = divmod(units, shards)
            bounds, start = [], 0
            for s in range(shards):
                take = (per + (1 if s < extra else 0)) * tile
                stop = min(n, start + take)
                bounds.append((start, stop))
                start = stop
            return [b for b in bounds if b[0] < b[1]], None
        shards = min(self.num_processes, n)
        per, extra = divmod(n, shards)
        bounds, start = [], 0
        for s in range(shards):
            stop = start + per + (1 if s < extra else 0)
            bounds.append((start, stop))
            start = stop
        batches = [
            min(self._batch_size, self._worker_data[w][0].shape[0]) for w in ids
        ]
        active = [b for b in batches if b > 0]
        pad_to = max(active) if active else None
        return [b for b in bounds if b[0] < b[1]], pad_to

    # ------------------------------------------------------------------
    def stack(self, group_size: int) -> np.ndarray:
        """Donated ``(G, q)`` view into the shared result arena.

        The trainer uses this as its group stack so worker processes write
        updated models directly into the memory the aggregation reads —
        the round performs no result copy at all.  The arena is reused by
        the next dispatch, matching the trainer's own buffer-reuse
        contract.
        """
        if self.closed:
            raise RuntimeError("executor is closed")
        if group_size > self._rows:
            raise ValueError(
                f"group of {group_size} exceeds the arena ({self._rows} rows)"
            )
        return self._out_view[:group_size]

    def run_group(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Train the group's local round on the pool; return the ``(G, q)``
        stack (the donated arena view unless ``out`` is supplied)."""
        if self.closed:
            raise RuntimeError("executor is closed")
        ids = list(worker_ids)
        if len(ids) == 0:
            raise ValueError("at least one worker required")
        if len(ids) > self._rows:
            raise ValueError(
                f"group of {len(ids)} exceeds the arena ({self._rows} rows)"
            )
        np.copyto(self._base_view, base_vector)
        shards, pad_to = self._plan_shards(ids)
        self.dispatches += 1
        done = False
        for _attempt in range(self.max_restarts + 1):
            pool = self._pool
            try:
                futures = [
                    pool.submit(_run_shard, start, ids[start:stop], round_index, pad_to)
                    for start, stop in shards
                ]
                for f in futures:
                    f.result()
                done = True
                break
            except BrokenExecutor:
                self.restarts += 1
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception:
                    pass
                self._spawn_pool()
        if not done:
            # Last line of defence: run the round in-process.  Same engine,
            # same geometry (full group, serial call tree) — the result is
            # identical, only the parallelism is lost for this dispatch.
            self.fallbacks += 1
            self._fallback_engine.run_group(
                ids,
                [self._worker_data[w] for w in ids],
                base_vector,
                round_index,
                learning_rate=self._hyper["learning_rate"],
                local_steps=self._hyper["local_steps"],
                batch_size=self._hyper["batch_size"],
                seed=self._hyper["seed"],
                out=self._out_view[: len(ids)],
            )
        result = self._out_view[: len(ids)]
        if out is not None:
            np.copyto(out, result)
            return out
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and release the shared-memory arenas."""
        _cleanup(self._holder)

    def __enter__(self) -> "ProcessGroupExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
