"""Air-FedGA: the paper's mechanism — grouped asynchronous over-the-air FL.

This trainer wires together the three contributions:

* **worker grouping** (Algorithm 3, :func:`repro.core.grouping.greedy_grouping`)
  — groups are formed so that members have similar local-training times
  (constraint 36d) while the inter-group label distributions are pushed
  toward IID (Corollary 1), minimizing the P4 objective;
* **power control** (Algorithm 2) — each over-the-air aggregation uses the
  σ_t/η_t pair minimizing the aggregation-error term C_t under the
  per-worker energy budgets (this happens inside
  :meth:`~repro.fl.base.BaseTrainer.aircomp_group_update`);
* **grouping-asynchronous updates** (Algorithm 1) — the event loop of
  :class:`~repro.fl.grouped.GroupedAsyncTrainer` driven by the
  READY/EXECUTE protocol state machine.

Because groups are independent between global commits, each group's
intra-group training round can be executed on a worker-process pool
(``AirFedGAConfig.parallelism``, see :mod:`repro.parallel`) without
changing any simulated quantity — the trainer produces bit-identical
float64 histories whether a round trains serially or sharded across
processes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.grouping import (
    GroupingProblem,
    GroupingResult,
    contiguous_grouping,
    greedy_grouping,
    random_grouping,
    singleton_grouping,
    tier_grouping,
)
from ..core.power_control import solve_power_control
from .base import FLExperiment
from .grouped import GroupedAsyncTrainer

__all__ = ["AirFedGATrainer"]


class AirFedGATrainer(GroupedAsyncTrainer):
    """The Air-FedGA mechanism (Algorithm 1 + Algorithms 2 and 3)."""

    name = "air_fedga"

    def __init__(
        self,
        experiment: FLExperiment,
        grouping_strategy: str = "greedy",
        num_groups: Optional[int] = None,
        grouping_seed: int = 0,
        staleness_exponent: float = 0.0,
        staleness: object = None,
    ) -> None:
        """
        Parameters
        ----------
        experiment:
            The federated experiment definition.
        grouping_strategy:
            ``"greedy"`` (the paper's Algorithm 3, default), ``"tier"``,
            ``"random"``, ``"singleton"`` or ``"contiguous"``.  The
            alternatives exist for the grouping ablation (E-A2 in
            DESIGN.md); ``"contiguous"`` is the O(N) strategy the XL-scale
            benchmarks use (index-contiguous int64 blocks, no per-worker
            Python objects).
        num_groups:
            Group count for the ``tier``/``random``/``contiguous``
            strategies (ignored by ``greedy``/``singleton``).
        grouping_seed:
            Seed for the ``random`` strategy.
        staleness_exponent:
            Optional staleness-aware damping of stale group updates
            (extension; 0.0 reproduces the paper's Eq. (10) exactly).
        staleness:
            A staleness policy by registry name, mapping or instance (see
            :mod:`repro.fl.staleness`); mutually exclusive with a non-zero
            ``staleness_exponent``.
        """
        if grouping_strategy not in {
            "greedy",
            "tier",
            "random",
            "singleton",
            "contiguous",
        }:
            raise ValueError(f"unknown grouping strategy {grouping_strategy!r}")
        self.grouping_strategy = grouping_strategy
        self.num_groups_hint = num_groups
        self.grouping_seed = grouping_seed
        super().__init__(
            experiment, staleness_exponent=staleness_exponent, staleness=staleness
        )

    # ------------------------------------------------------------------
    def build_groups(self) -> List[List[int]]:
        exp = self.exp
        # Estimate the power-control error term once, on a representative
        # round, so the grouping objective accounts for the channel noise
        # floor (the paper determines σ*, η* before solving P4).
        gains = exp.channel.gains(0)
        # The population's worker-state table owns the float64 sizes
        # (value-identical to the legacy partition.data_sizes() +
        # np.maximum(·, 1e-9) pipeline), so partition-less XL experiments
        # group through the same code path.
        sizes = self.worker_state.sizes
        model_bound = max(float(np.linalg.norm(self.global_vector)), 1e-8)
        # Same per-entry noise calibration as the trainer's aggregation step
        # (the paper's σ₀² spread over the q model symbols).
        per_entry_noise_var = exp.config.aircomp.noise_variance / float(
            self.latency_dimension
        )
        pc = solve_power_control(
            data_sizes=sizes,
            channel_gains=gains,
            model_bound=model_bound,
            config=replace(exp.config.aircomp, noise_variance=per_entry_noise_var),
        )
        problem = GroupingProblem(
            data_sizes=sizes,
            class_counts=self.population.class_counts(),
            local_times=exp.latency.nominal_times(),
            model_dimension=self.latency_dimension,
            config=exp.config,
            c_max=pc.error_term,
        )
        if self.grouping_strategy == "greedy":
            result = greedy_grouping(problem)
        elif self.grouping_strategy == "tier":
            result = tier_grouping(
                problem, num_groups=self.num_groups_hint or max(1, exp.num_workers // 10)
            )
        elif self.grouping_strategy == "random":
            result = random_grouping(
                problem,
                num_groups=self.num_groups_hint or max(1, exp.num_workers // 10),
                seed=self.grouping_seed,
            )
        elif self.grouping_strategy == "contiguous":
            result = contiguous_grouping(
                problem,
                num_groups=self.num_groups_hint or max(1, exp.num_workers // 10),
            )
        else:  # singleton
            result = singleton_grouping(problem)
        self.grouping_result: GroupingResult = result
        # Array-typed groups (the contiguous strategy) pass through uncopied;
        # legacy strategies keep returning plain int lists.
        return [
            g if isinstance(g, np.ndarray) else list(g) for g in result.groups
        ]

    # ------------------------------------------------------------------
    def aggregate_group(
        self,
        group_id: int,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
        weight_scale: float = 1.0,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        # Writing into the trainer-owned update buffer keeps the AirComp
        # aggregation allocation-free (the event loop swaps it into place).
        return self.aircomp_group_update(
            member_ids,
            local_vectors,
            round_index,
            out=self._update_out,
            weight_scale=weight_scale,
        )

    def upload_time(self, member_ids: Sequence[int], round_index: int) -> float:
        # Over-the-air aggregation: the whole group transmits concurrently,
        # so the upload latency is L_u regardless of the group size (Eq. 33).
        return self.aircomp_upload_latency()
