"""FedAvg baseline: synchronous FL with orthogonal (OMA) model uploads.

Reference [11] of the paper (McMahan et al., AISTATS 2017).  Every round,
*all* workers train from the current global model, upload their local models
over orthogonal channel resources (TDMA here), and the server forms the
data-weighted average.  Two properties matter for the comparison:

* the server must wait for the slowest worker (straggler problem), and
* the upload phase takes time proportional to the number of workers, so the
  single-round time grows with N (left plot of Fig. 10).
"""

from __future__ import annotations

from typing import Optional


from .base import BaseTrainer
from .history import TrainingHistory

__all__ = ["FedAvgTrainer"]


class FedAvgTrainer(BaseTrainer):
    """Synchronous OMA federated averaging over all workers."""

    name = "fedavg"

    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        exp = self.exp
        all_workers = list(range(exp.num_workers))
        clock = 0.0
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        for t in range(1, max_rounds + 1):
            # Local training: everyone starts from the same global model
            # (group-batched when the model supports it).
            local_vectors = self.local_update_group(all_workers, self.global_vector, t)
            # Round duration: slowest local training + sequential OMA uploads.
            compute_time = float(exp.latency.sample_times(all_workers, t).max())
            upload_time = self.oma_upload_latency(all_workers, t)
            clock += compute_time + upload_time
            # Error-free aggregation (OMA transmissions are reliable).
            self._commit_global(
                self.exact_group_update(all_workers, local_vectors, out=self._update_out)
            )
            self.record_round(
                round_index=t,
                time=clock,
                staleness=0,
                group_id=-1,
                num_participants=len(all_workers),
            )
            if max_time is not None and clock >= max_time:
                break
        return self.history
