"""FedAvg baseline: synchronous FL with orthogonal (OMA) model uploads.

Reference [11] of the paper (McMahan et al., AISTATS 2017).  Every round,
*all* workers train from the current global model, upload their local models
over orthogonal channel resources (TDMA here), and the server forms the
data-weighted average.  Two properties matter for the comparison:

* the server must wait for the slowest worker (straggler problem), and
* the upload phase takes time proportional to the number of workers, so the
  single-round time grows with N (left plot of Fig. 10).

The round loop doubles as the shared schedule for the synchronous mechanism
family: FedProx and FedDyn subclass this trainer and hook into
:meth:`~repro.fl.base.BaseTrainer.local_step_transform` (regularized local
objectives), :meth:`FedAvgTrainer.post_local_update` (per-worker state
updates) and :meth:`FedAvgTrainer.post_aggregate` (server-side corrections).
With a client-state model attached, workers absent at dispatch sit the
round out (their persistent mechanism state survives untouched) and the
survivors' weights are renormalized per ``experiment.fault``; without one
the loop is the exact legacy code path, bit for bit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseTrainer
from .history import TrainingHistory

__all__ = ["FedAvgTrainer"]


class FedAvgTrainer(BaseTrainer):
    """Synchronous OMA federated averaging over all workers."""

    name = "fedavg"

    # -- mechanism-family hooks -----------------------------------------
    def post_local_update(
        self,
        participants: List[int],
        local_vectors: np.ndarray,
        base_vector: np.ndarray,
        round_index: int,
    ) -> None:
        """Called after local training, before aggregation (default no-op).

        FedDyn updates its per-worker drift vectors here; ``local_vectors``
        is the stacked ``(G, q)`` result of the group update and must not
        be modified.
        """

    def post_aggregate(
        self, new_global: np.ndarray, participants: List[int], round_index: int
    ) -> np.ndarray:
        """Server-side correction applied to the aggregated model.

        Default is the identity; FedDyn subtracts its drift average.  May
        modify ``new_global`` in place and must return the vector to
        commit.
        """
        return new_global

    # -------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        exp = self.exp
        clock = 0.0
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        for t in range(1, max_rounds + 1):
            # Availability poll (the legacy all-workers fast path when no
            # client-state model is attached).
            participants, weight_scale = self.sync_round_participants(t)
            if not participants:
                # Nobody checked in: the global model and clock stand still.
                self.record_round(
                    round_index=t, time=clock, num_participants=0
                )
                continue
            # Local training: every participant starts from the same global
            # model (group-batched when the model supports it).
            local_vectors = self.local_update_group(
                participants, self.global_vector, t
            )
            self.post_local_update(
                participants, local_vectors, self.global_vector, t
            )
            # Round duration: slowest local training + sequential OMA uploads.
            compute_time = float(exp.latency.sample_times(participants, t).max())
            upload_time = self.oma_upload_latency(participants, t)
            clock += compute_time + upload_time
            # Error-free aggregation (OMA transmissions are reliable).
            new_global = self.exact_group_update(
                participants,
                local_vectors,
                out=self._update_out,
                weight_scale=weight_scale,
            )
            new_global = self.post_aggregate(new_global, participants, t)
            self._commit_global(new_global)
            self.record_round(
                round_index=t,
                time=clock,
                staleness=0,
                group_id=-1,
                num_participants=len(participants),
            )
            if max_time is not None and clock >= max_time:
                break
        return self.history
