"""Dynamic baseline: synchronous AirComp FL with per-round worker selection.

Reference [31] of the paper (Sun et al., JSAC 2022): each round the server
*dynamically schedules* a subset of workers for the over-the-air update —
preferring workers whose current channel is strong and whose energy cost is
low — while the rest stay idle.  Selection shortens the straggler wait and
saves energy per round, but because the subset is chosen without regard to
the data distribution it injects participation bias under Non-IID data,
which is why the paper's Figs. 3-6 show noisier curves and slower
convergence for Dynamic than for Air-FedGA.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .base import BaseTrainer, FLExperiment
from .history import TrainingHistory

__all__ = ["DynamicTrainer"]


class DynamicTrainer(BaseTrainer):
    """Synchronous AirComp FL with channel/energy-aware worker selection."""

    name = "dynamic"

    def __init__(
        self,
        experiment: FLExperiment,
        select_fraction: float = 0.3,
        exploration: float = 0.2,
    ) -> None:
        """
        Parameters
        ----------
        select_fraction:
            Fraction of workers scheduled each round (at least one).
        exploration:
            Fraction of the selected slots filled uniformly at random instead
            of by the channel/energy score, mimicking the scheduler's
            fairness term so no worker starves completely.
        """
        super().__init__(experiment)
        if not 0.0 < select_fraction <= 1.0:
            raise ValueError("select_fraction must be in (0, 1]")
        if not 0.0 <= exploration <= 1.0:
            raise ValueError("exploration must be in [0, 1]")
        self.select_fraction = select_fraction
        self.exploration = exploration
        self._select_rng = np.random.default_rng(
            np.random.SeedSequence([experiment.seed, 0xD1A])
        )

    # ------------------------------------------------------------------
    def select_workers(self, round_index: int) -> List[int]:
        """Channel/energy-aware selection with a small exploration component.

        Score: ``h_i² / d_i`` — a worker with a strong channel and little
        data to weight needs the least transmit energy for the same received
        SNR (see Eq. 6/7), which is the quantity dynamic scheduling trades
        off against its energy budget.
        """
        n = self.exp.num_workers
        k = max(1, int(round(self.select_fraction * n)))
        gains = self.exp.channel.gains(round_index)
        score = gains**2 / self.data_sizes
        n_explore = int(round(self.exploration * k))
        n_greedy = k - n_explore
        ranked = np.argsort(-score, kind="stable")
        selected = list(ranked[:n_greedy])
        if n_explore > 0:
            remaining = np.setdiff1d(np.arange(n), np.array(selected, dtype=int))
            extra = self._select_rng.choice(
                remaining, size=min(n_explore, remaining.size), replace=False
            )
            selected.extend(int(e) for e in extra)
        return sorted(int(s) for s in selected)

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        exp = self.exp
        upload_latency = self.aircomp_upload_latency()
        clock = 0.0
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        for t in range(1, max_rounds + 1):
            selected = self.select_workers(t)
            local_vectors = self.local_update_group(selected, self.global_vector, t)
            compute_time = float(exp.latency.sample_times(selected, t).max())
            clock += compute_time + upload_latency
            new_global, info = self.aircomp_group_update(
                selected, local_vectors, t, out=self._update_out
            )
            self._commit_global(new_global)
            self.record_round(
                round_index=t,
                time=clock,
                staleness=0,
                group_id=-1,
                num_participants=len(selected),
                round_energy=info["round_energy_j"],
                sigma=info["sigma"],
                eta=info["eta"],
            )
            if max_time is not None and clock >= max_time:
                break
        return self.history
