"""FedProx: FedAvg with a proximal term in the local objective.

Li et al., MLSys 2020 ("Federated Optimization in Heterogeneous
Networks").  Each worker minimizes ``f_i(w) + (mu/2)·||w − w_t||²`` — the
proximal term pulls local iterates back toward the global model the round
started from, which bounds client drift under statistical heterogeneity
(the label-skew partitions of the paper's Figs. 3-6).

The per-step SGD update becomes

    ``w ← w − lr·(∇f_i(w) + mu·(w − w_t))
       = (1 − lr·mu)·w − lr·∇f_i(w) + lr·mu·w_t``

which is exactly a :class:`~repro.nn.batched.StepTransform` with
``scale = 1 − lr·mu`` and a shared ``(q,)`` offset ``lr·mu·w_t``: the
proximal correction vectorizes over the batched engine's leading group
axis for free, and ``mu = 0`` returns ``None`` — the untouched FedAvg code
path, so FedProx(mu=0) histories are bit-identical to FedAvg.

Scheduling (round clock, OMA uploads, fault polling) is inherited from
:class:`~repro.fl.fedavg.FedAvgTrainer` unchanged.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..nn.batched import StepTransform
from .base import FLExperiment
from .fedavg import FedAvgTrainer

__all__ = ["FedProxTrainer"]


class FedProxTrainer(FedAvgTrainer):
    """Synchronous FedAvg schedule with a proximal local objective."""

    name = "fedprox"

    def __init__(self, experiment: FLExperiment, mu: float = 0.01) -> None:
        if mu < 0:
            raise ValueError(f"proximal coefficient mu must be >= 0, got {mu}")
        lr_mu = float(experiment.learning_rate) * float(mu)
        if lr_mu >= 1.0:
            raise ValueError(
                f"lr·mu = {lr_mu} >= 1: the proximal step would overshoot "
                "the base model (reduce mu or the learning rate)"
            )
        super().__init__(experiment)
        self.mu = float(mu)

    def local_step_transform(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
    ) -> Optional[StepTransform]:
        if self.mu == 0.0:
            return None
        lr_mu = self.exp.learning_rate * self.mu
        # One shared (q,) offset per dispatch: every member pulls toward
        # the same base model, so the correction needs no per-worker rows.
        return StepTransform(scale=1.0 - lr_mu, offset=lr_mu * base_vector)
