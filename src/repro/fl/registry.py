"""Mechanism registry: build any of the registered mechanisms by name.

Backed by the generic component registry (:mod:`repro.registry`, kind
``"mechanism"``).  :data:`MECHANISMS` is kept as a thin backward-compat
view of the registered trainers; new code should prefer
``repro.registry.get("mechanism", name)`` or a declarative
:class:`~repro.experiments.scenario.Scenario`.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..registry import check_kwargs, register
from .. import registry as _registry
from .air_fedavg import AirFedAvgTrainer
from .air_fedga import AirFedGATrainer
from .base import BaseTrainer, FLExperiment
from .dynamic import DynamicTrainer
from .fedasync import FedAsyncTrainer
from .fedavg import FedAvgTrainer
from .feddyn import FedDynTrainer
from .fedprox import FedProxTrainer
from .tifl import TiFLTrainer

__all__ = ["MECHANISMS", "build_trainer"]

register("mechanism", "fedavg")(FedAvgTrainer)
register("mechanism", "tifl")(TiFLTrainer)
register("mechanism", "air_fedavg")(AirFedAvgTrainer)
register("mechanism", "dynamic")(DynamicTrainer)
register("mechanism", "air_fedga")(AirFedGATrainer)
register("mechanism", "fedprox")(FedProxTrainer)
register("mechanism", "feddyn")(FedDynTrainer)
register("mechanism", "fedasync")(FedAsyncTrainer)

#: Mapping from mechanism name to trainer class.  The names match the
#: labels used in the paper's figures.  Deprecation shim: a snapshot of
#: the ``"mechanism"`` kind of :mod:`repro.registry` (the source of
#: truth); mutating this dict does not affect lookups.
MECHANISMS: Dict[str, Callable[..., BaseTrainer]] = _registry.as_dict("mechanism")


def build_trainer(name: str, experiment: FLExperiment, **kwargs) -> BaseTrainer:
    """Instantiate a mechanism trainer by registry name.

    Extra keyword arguments are forwarded to the trainer constructor
    (e.g. ``num_tiers`` for TiFL, ``select_fraction`` for Dynamic,
    ``grouping_strategy`` for Air-FedGA).  Unknown mechanism names raise
    :class:`~repro.registry.UnknownComponentError` (a ``KeyError``) with
    close-match suggestions; unknown keyword arguments raise ``TypeError``
    listing the trainer's accepted constructor parameters instead of
    failing deep inside the trainer.
    """
    cls = _registry.get("mechanism", name)
    check_kwargs(cls, kwargs, context=f"mechanism {name!r}", exclude=("experiment",))
    return cls(experiment, **kwargs)
