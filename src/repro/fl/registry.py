"""Mechanism registry: build any of the five mechanisms by name."""

from __future__ import annotations

from typing import Callable, Dict

from .air_fedavg import AirFedAvgTrainer
from .air_fedga import AirFedGATrainer
from .base import BaseTrainer, FLExperiment
from .dynamic import DynamicTrainer
from .fedavg import FedAvgTrainer
from .tifl import TiFLTrainer

__all__ = ["MECHANISMS", "build_trainer"]

#: Mapping from mechanism name to trainer class.  The names match the
#: labels used in the paper's figures.
MECHANISMS: Dict[str, Callable[..., BaseTrainer]] = {
    "fedavg": FedAvgTrainer,
    "tifl": TiFLTrainer,
    "air_fedavg": AirFedAvgTrainer,
    "dynamic": DynamicTrainer,
    "air_fedga": AirFedGATrainer,
}


def build_trainer(name: str, experiment: FLExperiment, **kwargs) -> BaseTrainer:
    """Instantiate a mechanism trainer by registry name.

    Extra keyword arguments are forwarded to the trainer constructor
    (e.g. ``num_tiers`` for TiFL, ``select_fraction`` for Dynamic,
    ``grouping_strategy`` for Air-FedGA).
    """
    try:
        cls = MECHANISMS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown mechanism {name!r}; available: {sorted(MECHANISMS)}"
        ) from exc
    return cls(experiment, **kwargs)
