"""FedAsync: per-update staleness-weighted asynchronous aggregation.

Xie et al. 2019 ("Asynchronous Federated Optimization"), the asynchronous
baseline the paper's related-work compares against (and the FLGo reference
implementation in SNIPPETS.md §2).  Every worker trains continuously: it
pulls the current global model, runs its local SGD, uploads, and the
server *immediately* mixes the update in —

    ``w ← (1 − a_τ)·w + a_τ·w_k``  with  ``a_τ = mix_weight · s(τ)``

where ``τ`` is the update's staleness (how many commits the global model
advanced since the worker pulled it) and ``s(τ)`` a damping schedule from
the registered ``staleness`` policy kind (``constant`` / ``polynomial`` /
``hinge`` — FedAsync's own schedules, shared with the grouped trainer).
There is no straggler barrier: fast workers commit often, slow workers'
updates arrive stale and are shrunk accordingly.

Group-parallel execution: workers whose updates commit back-to-back are
re-dispatched *together* from the same new global model, so their local
training runs as one :class:`~repro.nn.batched.BatchedWorkerEngine` call
(the initial dispatch batches the entire population).  ``buffer_size``
controls the cohort: the server lets that many workers finish before the
commit burst, trading a little update freshness for larger batched
cohorts (``1`` is pure FedAsync; larger values approximate the
semi-asynchronous buffered variants, cf. Kou et al. in PAPERS.md).

Uploads are OMA (single-worker TDMA) and serialize on the shared uplink:
each commit waits for the channel to free up, exactly like the grouped
event loop's uplink model.  Every commit is one global round in the
history (``staleness`` records ``τ``); simulated time advances by local
compute + queued upload latency.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from .base import BaseTrainer, FLExperiment
from .history import TrainingHistory
from .staleness import (
    PolynomialStaleness,
    StalenessPolicy,
    resolve_staleness_policy,
)

__all__ = ["FedAsyncTrainer"]


class FedAsyncTrainer(BaseTrainer):
    """Asynchronous per-update FL with staleness-damped mixing."""

    name = "fedasync"

    def __init__(
        self,
        experiment: FLExperiment,
        mix_weight: float = 0.6,
        staleness: Union[None, str, Mapping[str, Any], StalenessPolicy] = None,
        staleness_exponent: float = 0.0,
        buffer_size: int = 1,
    ) -> None:
        if not 0.0 < mix_weight <= 1.0:
            raise ValueError(
                f"mix_weight must be in (0, 1], got {mix_weight}"
            )
        if buffer_size < 1:
            raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
        # Accept the same staleness arguments as the grouped trainer; the
        # FedAsync default is the paper's polynomial schedule s(τ) =
        # 1/(1+τ)^0.5 (pass staleness="constant" to disable damping).
        policy = resolve_staleness_policy(staleness, staleness_exponent)
        self._staleness_policy: StalenessPolicy = (
            policy if policy is not None else PolynomialStaleness(exponent=0.5)
        )
        super().__init__(experiment)
        if experiment.clientstate is not None and not experiment.clientstate.is_always_on:
            raise ValueError(
                "fedasync does not support client-state fault models yet; "
                "use the grouped mechanisms for fault scenarios"
            )
        self.mix_weight = float(mix_weight)
        self.buffer_size = int(buffer_size)
        #: Monotonic dispatch counter — the RNG round key for local
        #: training, so every (worker, dispatch) draws fresh mini-batches.
        self._dispatch_counter = 0

    # ------------------------------------------------------------------
    def _dispatch_cohort(
        self,
        workers: List[int],
        start_time: float,
        version: int,
        heap: List[Tuple[float, int, int]],
        seq: int,
        pending: Dict[int, np.ndarray],
        pulled_version: Dict[int, int],
    ) -> int:
        """Train a cohort from the current global model; queue completions.

        One batched group call covers the whole cohort (the proximal point
        of running FedAsync on the batched engine); each member's finish
        time is its own sampled compute latency.
        """
        self._dispatch_counter += 1
        dispatch_round = self._dispatch_counter
        stack = self.local_update_group(
            workers, self.global_vector, dispatch_round
        )
        times = self.exp.latency.sample_times(workers, dispatch_round)
        for k, w in enumerate(workers):
            pending[w] = np.array(stack[k], copy=True)
            pulled_version[w] = version
            heapq.heappush(heap, (start_time + float(times[k]), seq, w))
            seq += 1
        self.worker_state.record_dispatch(np.asarray(workers, dtype=np.int64))
        return seq

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        policy = self._staleness_policy
        clock = 0.0
        channel_busy_until = 0.0
        version = 0  # commits so far == current global-model version
        commits = 0
        heap: List[Tuple[float, int, int]] = []
        seq = 0
        pending: Dict[int, np.ndarray] = {}
        pulled_version: Dict[int, int] = {}
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        # Initial dispatch: the entire population trains as one batched
        # cohort from the same initial model.
        seq = self._dispatch_cohort(
            list(range(self.exp.num_workers)),
            0.0,
            version,
            heap,
            seq,
            pending,
            pulled_version,
        )
        ready: List[Tuple[float, int]] = []
        stop = False
        while heap and not stop:
            finish_time, _, worker = heapq.heappop(heap)
            ready.append((finish_time, worker))
            # Let buffer_size workers finish before the commit burst (the
            # final stragglers flush even if the buffer never fills).
            if len(ready) < self.buffer_size and heap:
                continue
            cohort: List[int] = []
            for local_finish, w in ready:
                commits += 1
                tau = version - pulled_version.pop(w)
                weight = self.mix_weight * policy.weight(tau)
                # Single-worker OMA upload, serialized on the shared uplink.
                upload_start = max(local_finish, channel_busy_until)
                channel_busy_until = upload_start + self.oma_upload_latency(
                    [w], commits
                )
                clock = max(clock, channel_busy_until)
                # w ← (1 − a)·w + a·w_k  (allocation-free, buffer swap).
                vec = pending.pop(w)
                np.multiply(
                    self.global_vector, 1.0 - weight, out=self._agg_scratch
                )
                np.multiply(vec, weight, out=self._update_out)
                self._update_out += self._agg_scratch
                self._commit_global(self._update_out)
                version += 1
                self.worker_state.record_commit(
                    np.array([w], dtype=np.int64), tau
                )
                cohort.append(w)
                self.record_round(
                    round_index=commits,
                    time=clock,
                    staleness=tau,
                    group_id=-1,
                    num_participants=1,
                )
                if commits >= max_rounds or (
                    max_time is not None and clock >= max_time
                ):
                    stop = True
                    break
            ready = []
            if not stop and cohort:
                # The burst's workers restart together from the new global
                # model — one batched engine call for the whole cohort.
                seq = self._dispatch_cohort(
                    cohort, clock, version, heap, seq, pending, pulled_version
                )
        return self.history
