"""TiFL baseline: tier-based group-asynchronous FL over OMA uploads.

Reference [26] of the paper (Chai et al., HPDC 2020): workers are binned
into tiers by their (communication + computation) time, and tiers update
the global model asynchronously.  Unlike Air-FedGA, the tiers (a) upload
their models over orthogonal resources, so the upload phase grows with the
tier size, and (b) are formed without looking at the data distribution, so
under label-skew the tier-level label distributions stay far from IID
(the TiFL column of Table III).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.grouping import GroupingProblem, tier_grouping
from .base import FLExperiment
from .grouped import GroupedAsyncTrainer

__all__ = ["TiFLTrainer"]


class TiFLTrainer(GroupedAsyncTrainer):
    """Tier-based asynchronous FL with reliable OMA aggregation."""

    name = "tifl"

    def __init__(
        self,
        experiment: FLExperiment,
        num_tiers: int = 5,
        staleness_exponent: float = 0.0,
        staleness: object = None,
    ) -> None:
        if num_tiers < 1:
            raise ValueError("num_tiers must be >= 1")
        self.num_tiers = num_tiers
        super().__init__(
            experiment, staleness_exponent=staleness_exponent, staleness=staleness
        )

    # ------------------------------------------------------------------
    def build_groups(self) -> List[List[int]]:
        exp = self.exp
        problem = GroupingProblem(
            data_sizes=self.worker_state.raw_sizes,
            class_counts=self.population.class_counts(),
            local_times=exp.latency.nominal_times(),
            model_dimension=self.latency_dimension,
            config=exp.config,
        )
        result = tier_grouping(problem, num_groups=self.num_tiers)
        self.grouping_result = result
        return [list(g) for g in result.groups]

    # ------------------------------------------------------------------
    def aggregate_group(
        self,
        group_id: int,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
        weight_scale: float = 1.0,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        # OMA uploads are assumed reliable: the server receives each model
        # exactly and applies Eq. (8).  Writing into the trainer-owned
        # update buffer keeps the aggregation allocation-free.
        new_global = self.exact_group_update(
            member_ids, local_vectors, out=self._update_out, weight_scale=weight_scale
        )
        return new_global, {}

    def upload_time(self, member_ids: Sequence[int], round_index: int) -> float:
        # Tier members upload sequentially over the shared band (TDMA).
        return self.oma_upload_latency(member_ids, round_index)
