"""Air-FedAvg baseline: synchronous FL with over-the-air aggregation.

Reference [18] of the paper (Cao et al., JSAC 2022): the FedAvg schedule —
every worker participates in every round — but uploads happen concurrently
over the analog MAC with optimal power control.  The upload latency is the
AirComp symbol time ``L_u`` regardless of the number of workers, so the
single-round time is dominated by the *slowest* worker's local training
(straggler problem remains, which is what Air-FedGA improves on).
"""

from __future__ import annotations

from typing import Optional

from .base import BaseTrainer
from .history import TrainingHistory

__all__ = ["AirFedAvgTrainer"]


class AirFedAvgTrainer(BaseTrainer):
    """Synchronous over-the-air federated averaging over all workers."""

    name = "air_fedavg"

    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        exp = self.exp
        all_workers = list(range(exp.num_workers))
        upload_latency = self.aircomp_upload_latency()
        clock = 0.0
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        for t in range(1, max_rounds + 1):
            local_vectors = self.local_update_group(all_workers, self.global_vector, t)
            compute_time = float(exp.latency.sample_times(all_workers, t).max())
            clock += compute_time + upload_latency
            new_global, info = self.aircomp_group_update(
                all_workers, local_vectors, t, out=self._update_out
            )
            self._commit_global(new_global)
            self.record_round(
                round_index=t,
                time=clock,
                staleness=0,
                group_id=-1,
                num_participants=len(all_workers),
                round_energy=info["round_energy_j"],
                sigma=info["sigma"],
                eta=info["eta"],
            )
            if max_time is not None and clock >= max_time:
                break
        return self.history
