"""Staleness-aware aggregation policies (registry kind ``"staleness"``).

Asynchronous FL mixes a group's update into a global model that may have
advanced ``τ`` rounds since the group last pulled it.  The FedAsync line
of work (Xie et al., which the paper cites) damps such stale updates with
a schedule ``s(τ) ∈ (0, 1]``: the commit becomes

    ``w_t = (1 − s(τ)) · w_{t−1} + s(τ) · aggregate(...)``

so fresh updates (``s = 1``) apply fully while stale ones are shrunk.
Historically the grouped event loop hard-coded the single *polynomial*
schedule behind a ``staleness_exponent`` float; this module makes the
schedule a registered, serializable component with the three classic
shapes:

================  ====================================================
registry name     ``s(τ)``
================  ====================================================
``constant``      ``value`` (default 1: no damping, the paper's Eq. 10)
``polynomial``    ``1 / (1 + τ)^exponent``
``hinge``         ``1`` while ``τ ≤ b``, then ``1 / (a·(τ − b))``
================  ====================================================

All parameters are validated at construction (a negative exponent or a
non-positive ``a`` raises ``ValueError`` immediately instead of producing
NaN weights rounds later).  Trainers accept a policy name, a
``{"name": ..., "params": {...}}`` mapping (what a
:class:`~repro.experiments.scenario.Scenario` JSON carries) or a policy
instance; :func:`resolve_staleness_policy` performs the coercion.

>>> from repro.fl.staleness import resolve_staleness_policy
>>> policy = resolve_staleness_policy({"name": "hinge", "params": {"a": 2.0, "b": 1.0}})
>>> policy.weight(1), policy.weight(3)
(1.0, 0.25)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from ..registry import create as _create, register as _register

__all__ = [
    "StalenessPolicy",
    "ConstantStaleness",
    "PolynomialStaleness",
    "HingeStaleness",
    "resolve_staleness_policy",
]


class StalenessPolicy:
    """A staleness-damping schedule ``s(τ)``; subclasses implement :meth:`weight`."""

    name = "base"

    def weight(self, staleness: int) -> float:
        """The mixing weight ``s(τ) ∈ (0, 1]`` for an update of staleness ``τ``."""
        raise NotImplementedError

    def __call__(self, staleness: int) -> float:
        return self.weight(staleness)


@_register("staleness", "constant")
@dataclass
class ConstantStaleness(StalenessPolicy):
    """``s(τ) = value`` regardless of staleness (1.0 disables damping)."""

    value: float = 1.0
    name = "constant"

    def __post_init__(self) -> None:
        if not 0.0 < self.value <= 1.0:
            raise ValueError(
                f"constant staleness weight must be in (0, 1], got {self.value}"
            )

    def weight(self, staleness: int) -> float:
        return self.value


@_register("staleness", "polynomial")
@dataclass
class PolynomialStaleness(StalenessPolicy):
    """``s(τ) = 1 / (1 + τ)^exponent`` — FedAsync's polynomial schedule.

    ``exponent = 0`` yields ``s ≡ 1`` (no damping); the legacy
    ``staleness_exponent`` trainer argument maps onto this policy, and the
    weight formula matches the legacy inline expression bit-for-bit.
    """

    exponent: float = 0.5
    name = "polynomial"

    def __post_init__(self) -> None:
        if self.exponent < 0:
            raise ValueError(
                f"staleness exponent must be non-negative, got {self.exponent}"
            )

    def weight(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        return 1.0 / (1.0 + staleness) ** self.exponent


@_register("staleness", "hinge")
@dataclass
class HingeStaleness(StalenessPolicy):
    """``s(τ) = 1`` for ``τ ≤ b``, else ``1 / (a·(τ − b))`` (FedAsync's hinge).

    Fresh-enough updates apply fully; beyond the ``b`` threshold the
    weight decays hyperbolically at rate ``a``.  Requires ``a·1 ≥ 1`` to
    keep ``s ≤ 1`` right after the hinge, i.e. ``a ≥ 1``.
    """

    a: float = 10.0
    b: float = 4.0
    name = "hinge"

    def __post_init__(self) -> None:
        if self.a < 1.0:
            raise ValueError(
                f"hinge slope a must be >= 1 (so s(τ) stays <= 1), got {self.a}"
            )
        if self.b < 0:
            raise ValueError(f"hinge threshold b must be non-negative, got {self.b}")

    def weight(self, staleness: int) -> float:
        if staleness < 0:
            raise ValueError(f"staleness must be non-negative, got {staleness}")
        if staleness <= self.b:
            return 1.0
        return 1.0 / (self.a * (staleness - self.b))


def resolve_staleness_policy(
    spec: Union[None, str, Mapping[str, Any], StalenessPolicy],
    staleness_exponent: float = 0.0,
) -> Optional[StalenessPolicy]:
    """Coerce a trainer's staleness argument into a policy (or ``None``).

    Accepts ``None`` (fall back to the legacy ``staleness_exponent``: a
    positive exponent becomes the equivalent :class:`PolynomialStaleness`,
    zero means "no damping"), a registry name string, a
    ``{"name": ..., "params": {...}}`` mapping, or an already constructed
    :class:`StalenessPolicy`.  Passing both a policy spec and a non-zero
    ``staleness_exponent`` is ambiguous and raises ``ValueError``.
    """
    if staleness_exponent < 0:
        raise ValueError(
            f"staleness_exponent must be non-negative, got {staleness_exponent}"
        )
    if spec is None:
        if staleness_exponent > 0.0:
            return PolynomialStaleness(exponent=staleness_exponent)
        return None
    if staleness_exponent > 0.0:
        raise ValueError(
            "pass either staleness_exponent or a staleness policy, not both "
            f"(got staleness_exponent={staleness_exponent} and staleness={spec!r})"
        )
    if isinstance(spec, StalenessPolicy):
        return spec
    if isinstance(spec, str):
        return _create("staleness", spec)
    if isinstance(spec, Mapping):
        unknown = sorted(set(spec) - {"name", "params"})
        if unknown:
            raise ValueError(
                f"staleness mapping accepts only 'name' and 'params' keys, "
                f"got unknown {unknown}"
            )
        if "name" not in spec:
            raise ValueError("staleness mapping requires a 'name' key")
        params = dict(spec.get("params") or {})
        return _create("staleness", spec["name"], **params)
    raise ValueError(
        "staleness must be a policy name, a {'name': ..., 'params': ...} "
        f"mapping or a StalenessPolicy, got {type(spec).__name__}"
    )
