"""Shared event-driven loop for grouping-asynchronous mechanisms.

Both TiFL (OMA tiers) and Air-FedGA (AirComp groups) follow the same outer
schedule: groups train independently; whenever *all* members of a group have
finished local training, that group alone performs a global update and
immediately starts its next local round from the fresh global model.  The
only differences are (a) how the groups are formed and (b) how the group's
models are aggregated (reliable OMA vs. noisy over-the-air).  This module
implements the common schedule as a virtual-time event loop on top of the
:class:`~repro.core.mechanism.GroupAsyncScheduler` protocol state machine;
the two mechanisms specialize the two hooks.

Execution engines are orthogonal to the schedule: each group's
local-training phase runs on the scalar per-worker path, the in-process
batched engine, or — with ``config.parallelism.mode == "processes"`` — a
worker-process pool (:class:`~repro.parallel.ProcessGroupExecutor`) that
shards the group across CPU cores through shared-memory buffers.  The
virtual-time event loop itself stays single-threaded and deterministic:
aggregation, power control and the channel-noise RNG always run in the
parent process, in event order, so the produced
:class:`~repro.fl.history.TrainingHistory` is identical across engines
(bit-identical in float64 between serial and multiprocess execution).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mechanism import GroupAsyncScheduler
from .base import BaseTrainer, FLExperiment
from .history import TrainingHistory

__all__ = ["GroupedAsyncTrainer"]


class GroupedAsyncTrainer(BaseTrainer):
    """Base class for group-asynchronous mechanisms (TiFL, Air-FedGA).

    Parameters
    ----------
    experiment:
        The federated experiment definition.
    staleness_exponent:
        Optional staleness-aware damping (an extension beyond the paper,
        following the asynchronous-FL literature the paper cites, e.g. Xie et
        al.): a group whose update is based on a global model ``τ`` rounds
        old contributes with weight ``1 / (1 + τ)**staleness_exponent``.
        The default ``0.0`` reproduces the paper's Eq. (10) exactly.
    """

    name = "grouped_async"

    def __init__(self, experiment: FLExperiment, staleness_exponent: float = 0.0) -> None:
        if staleness_exponent < 0:
            raise ValueError("staleness_exponent must be non-negative")
        self.staleness_exponent = staleness_exponent
        super().__init__(experiment)
        self.groups: List[List[int]] = self.build_groups()
        if not self.groups:
            raise ValueError("grouping produced no groups")
        covered = sorted(w for g in self.groups for w in g)
        if covered != list(range(experiment.num_workers)):
            raise ValueError(
                "grouping must cover every worker exactly once; "
                f"got coverage {covered[:10]}..."
            )
        self.scheduler = GroupAsyncScheduler(self.groups)
        # The global-model version each group last received, as a vector.
        self._group_base: Dict[int, np.ndarray] = {
            g: self.global_vector.copy() for g in range(len(self.groups))
        }
        # Uplink occupancy: aggregations (AirComp bursts or OMA uploads) from
        # different groups share the same band, so they are serialized at the
        # parameter server.  This is what makes very small groups (ξ → 0)
        # expensive in the paper's Fig. 8 — with many tiny groups the channel
        # itself becomes the bottleneck.
        self._channel_busy_until: float = 0.0

    # ------------------------------------------------------------------
    # Hooks specialized by the concrete mechanisms
    # ------------------------------------------------------------------
    def build_groups(self) -> List[List[int]]:
        """Return the list of worker-id lists forming the groups."""
        raise NotImplementedError

    def aggregate_group(
        self,
        group_id: int,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Produce the new global model from the group's local models."""
        raise NotImplementedError

    def upload_time(self, member_ids: Sequence[int], round_index: int) -> float:
        """Simulated duration of the group's model-upload phase."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def group_compute_time(self, group_id: int, round_index: int) -> float:
        """Local-training duration of a group: its slowest member."""
        members = self.groups[group_id]
        return float(self.exp.latency.sample_times(members, round_index).max())

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        # Construct the multiprocess executor (if configured) before the
        # event loop starts, so a model that cannot be sharded surfaces its
        # RuntimeWarning here rather than mid-run.  Note the pool itself
        # spawns its worker processes lazily on the first dispatch — the
        # first round still pays that one-time cost (benchmarks that need
        # it excluded perform an untimed warm-up dispatch, see
        # repro.experiments.bench).  Serial configurations are a no-op.
        self.parallel_executor()
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        # Priority queue of (ready_time, group_id): the moment every member
        # of the group has finished local training and sent READY.
        queue: List[Tuple[float, int]] = []
        for g in range(len(self.groups)):
            heapq.heappush(queue, (self.group_compute_time(g, 1), g))

        while queue:
            ready_time, group_id = heapq.heappop(queue)
            if max_time is not None and ready_time > max_time:
                break
            members = self.groups[group_id]
            # Protocol: every member sends READY; the last one completes the
            # group and triggers EXECUTE.
            completed: Optional[int] = None
            for w in members:
                result = self.scheduler.receive_ready(w)
                if result is not None:
                    completed = result
            if completed is None:
                raise RuntimeError("group did not complete after all READY messages")
            event = self.scheduler.complete_aggregation(group_id)
            t = event.round_index

            # Local updates are computed from the global version this group
            # last received (Eq. 5); the round index seeds the batch sampling.
            # The whole group trains as one batched tensor pass when the
            # model supports it (scalar per-worker fallback otherwise).
            base = self._group_base[group_id]
            local_vectors = self.local_update_group(members, base, t)

            upload = self.upload_time(members, t)
            # The group can only start its aggregation once the shared uplink
            # is free; with many small groups this queueing delay dominates.
            upload_start = max(ready_time, self._channel_busy_until)
            update_time = upload_start + upload
            self._channel_busy_until = update_time

            new_global, info = self.aggregate_group(
                group_id, members, local_vectors, t
            )
            if self.staleness_exponent > 0.0 and event.staleness > 0:
                # Staleness-aware damping (extension, off by default): shrink
                # the contribution of updates computed from old global models.
                weight = 1.0 / (1.0 + event.staleness) ** self.staleness_exponent
                new_global = (1.0 - weight) * self.global_vector + weight * new_global
            # Swap (not copy) the trainer-owned update buffer into place.
            self._commit_global(new_global)
            # The group receives the fresh global model and immediately
            # starts its next local round.
            np.copyto(self._group_base[group_id], self.global_vector)
            next_ready = update_time + self.group_compute_time(group_id, t + 1)
            heapq.heappush(queue, (next_ready, group_id))

            self.record_round(
                round_index=t,
                time=update_time,
                staleness=event.staleness,
                group_id=group_id,
                num_participants=len(members),
                round_energy=info.get("round_energy_j", 0.0),
                sigma=info.get("sigma", float("nan")),
                eta=info.get("eta", float("nan")),
            )
            if t >= max_rounds:
                break
            if max_time is not None and update_time >= max_time:
                break
        return self.history
