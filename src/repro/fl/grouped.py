"""Shared event-driven loop for grouping-asynchronous mechanisms.

Both TiFL (OMA tiers) and Air-FedGA (AirComp groups) follow the same outer
schedule: groups train independently; whenever *all* members of a group have
finished local training, that group alone performs a global update and
immediately starts its next local round from the fresh global model.  The
only differences are (a) how the groups are formed and (b) how the group's
models are aggregated (reliable OMA vs. noisy over-the-air).  This module
implements the common schedule as a virtual-time event loop on top of the
:class:`~repro.core.mechanism.GroupAsyncScheduler` protocol state machine;
the two mechanisms specialize the two hooks.

Execution engines are orthogonal to the schedule: each group's
local-training phase runs on the scalar per-worker path, the in-process
batched engine, or — with ``config.parallelism.mode == "processes"`` — a
worker-process pool (:class:`~repro.parallel.ProcessGroupExecutor`) that
shards the group across CPU cores through shared-memory buffers.  With
``config.parallelism.pipeline`` the loop additionally *overlaps* its
phases in wall-clock terms: while the parent performs the current group's
aggregation, power control and staleness bookkeeping, the pool already
trains the next ready group's shards speculatively
(:meth:`ProcessGroupExecutor.submit_group`), falling back to an in-order
recompute when a commit invalidates the speculation (counted as
``TrainingHistory.pipeline_recomputes``).

The virtual-time event loop itself stays single-threaded and
deterministic: aggregation, power control and the channel-noise RNG
always run in the parent process, in event order, so the produced
:class:`~repro.fl.history.TrainingHistory` is identical across engines —
bit-identical in float64 between serial, multiprocess and pipelined
execution (see ``docs/ARCHITECTURE.md``, "Determinism invariants", for
exactly which operations must stay in the parent and in event order).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mechanism import GroupAsyncScheduler
from ..parallel import GroupFuture
from .base import BaseTrainer, FLExperiment
from .history import TrainingHistory

__all__ = ["GroupedAsyncTrainer"]


@dataclass
class _Speculation:
    """One in-flight speculative group dispatch of the pipelined loop."""

    group_id: int
    round_index: int     # the round the speculation assumed it would commit
    base_version: int    # _base_versions[group_id] at submit time
    future: GroupFuture


class GroupedAsyncTrainer(BaseTrainer):
    """Base class for group-asynchronous mechanisms (TiFL, Air-FedGA).

    Parameters
    ----------
    experiment:
        The federated experiment definition.
    staleness_exponent:
        Optional staleness-aware damping (an extension beyond the paper,
        following the asynchronous-FL literature the paper cites, e.g. Xie et
        al.): a group whose update is based on a global model ``τ`` rounds
        old contributes with weight ``1 / (1 + τ)**staleness_exponent``.
        The default ``0.0`` reproduces the paper's Eq. (10) exactly.  The
        damping mix happens in the parent process in event order — one of
        the determinism invariants (``docs/ARCHITECTURE.md``, "Determinism
        invariants") — so it composes with both multiprocess execution and
        the pipelined mode (``config.parallelism.pipeline``): speculation
        never changes which staleness ``τ`` a commit observes.
    """

    name = "grouped_async"

    def __init__(self, experiment: FLExperiment, staleness_exponent: float = 0.0) -> None:
        if staleness_exponent < 0:
            raise ValueError("staleness_exponent must be non-negative")
        self.staleness_exponent = staleness_exponent
        super().__init__(experiment)
        self.groups: List[List[int]] = self.build_groups()
        if not self.groups:
            raise ValueError("grouping produced no groups")
        covered = sorted(w for g in self.groups for w in g)
        if covered != list(range(experiment.num_workers)):
            raise ValueError(
                "grouping must cover every worker exactly once; "
                f"got coverage {covered[:10]}..."
            )
        self.scheduler = GroupAsyncScheduler(self.groups)
        # The global-model version each group last received, as a vector.
        self._group_base: Dict[int, np.ndarray] = {
            g: self.global_vector.copy() for g in range(len(self.groups))
        }
        # Monotonic counter per group, bumped whenever _group_base[g] is
        # overwritten.  The pipelined loop records it at speculation-submit
        # time and validates it at commit time: a speculative result is
        # only usable if the base it trained from is still the base the
        # group would train from in event order.
        self._base_versions: List[int] = [0] * len(self.groups)
        # Uplink occupancy: aggregations (AirComp bursts or OMA uploads) from
        # different groups share the same band, so they are serialized at the
        # parameter server.  This is what makes very small groups (ξ → 0)
        # expensive in the paper's Fig. 8 — with many tiny groups the channel
        # itself becomes the bottleneck.
        self._channel_busy_until: float = 0.0

    # ------------------------------------------------------------------
    # Hooks specialized by the concrete mechanisms
    # ------------------------------------------------------------------
    def build_groups(self) -> List[List[int]]:
        """Return the list of worker-id lists forming the groups."""
        raise NotImplementedError

    def aggregate_group(
        self,
        group_id: int,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Produce the new global model from the group's local models."""
        raise NotImplementedError

    def upload_time(self, member_ids: Sequence[int], round_index: int) -> float:
        """Simulated duration of the group's model-upload phase."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def group_compute_time(self, group_id: int, round_index: int) -> float:
        """Local-training duration of a group: its slowest member."""
        members = self.groups[group_id]
        return float(self.exp.latency.sample_times(members, round_index).max())

    # ------------------------------------------------------------------
    # Pipelined-execution hooks (config.parallelism.pipeline)
    # ------------------------------------------------------------------
    def pipeline_lookahead(
        self,
        queue: Sequence[Tuple[float, int]],
        reentry: Tuple[float, int],
    ) -> Optional[int]:
        """Group id of the queue entry certain to be popped next, or ``None``.

        Called while the current group's aggregation is still pending, with
        ``reentry`` being the ``(next_ready, group_id)`` entry the current
        group will re-enter the queue with.  The head of the heap is the
        next pop **unless** the re-entry sorts before it (a fast group
        lapping the rest), in which case speculating on the head would
        train it with a wrong round index.

        The head's *base* can never be invalidated here — only a group's
        own commit rewrites its base, and the committing group is not in
        the queue — so with the deterministic latency/upload models this
        prediction is exact and speculation always hits.  Subclasses with
        stateful or non-deterministic timing overrides can loosen (or
        skip) the re-entry comparison; a wrong prediction is then caught
        by the commit-time validation and recomputed in event order
        (``TrainingHistory.pipeline_recomputes``), never corrupting the
        history.
        """
        if not queue:
            return None
        head = queue[0]
        if reentry < head:
            return None
        return head[1]

    def _submit_speculation(
        self,
        queue: List[Tuple[float, int]],
        reentry: Tuple[float, int],
        round_index: int,
        max_rounds: int,
        max_time: Optional[float],
    ) -> Optional[_Speculation]:
        """Speculatively dispatch the predicted next group's local round.

        Returns ``None`` whenever speculation is not worthwhile or not
        possible: the loop is about to stop, the predicted group is gated
        in-process by ``min_group_size``, or no arena slot is free.
        """
        executor = self._executor
        if executor is None or executor.closed or executor.free_slots == 0:
            return None
        if round_index >= max_rounds:
            return None  # the loop stops after this round
        next_group = self.pipeline_lookahead(queue, reentry)
        if next_group is None:
            return None
        members = self.groups[next_group]
        if len(members) < self.exp.config.parallelism.min_group_size:
            return None  # the pop-time path would train in-process
        if max_time is not None:
            # queue is a heap, so its minimum is queue[0].
            next_time = min(queue[0][0], reentry[0])
            if next_time > max_time:
                return None  # the loop stops before the next pop commits
        future = executor.submit_group(
            members, self._group_base[next_group], round_index + 1
        )
        return _Speculation(
            group_id=next_group,
            round_index=round_index + 1,
            base_version=self._base_versions[next_group],
            future=future,
        )

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        # Construct the multiprocess executor (if configured) before the
        # event loop starts, so a model that cannot be sharded surfaces its
        # RuntimeWarning here rather than mid-run.  Note the pool itself
        # spawns its worker processes lazily on the first dispatch — the
        # first round still pays that one-time cost (benchmarks that need
        # it excluded perform an untimed warm-up dispatch, see
        # repro.experiments.bench).  Serial configurations are a no-op.
        executor = self.parallel_executor()
        pipelining = bool(
            self.exp.config.parallelism.pipeline and executor is not None
        )
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        # Priority queue of (ready_time, group_id): the moment every member
        # of the group has finished local training and sent READY.
        queue: List[Tuple[float, int]] = []
        for g in range(len(self.groups)):
            heapq.heappush(queue, (self.group_compute_time(g, 1), g))

        spec: Optional[_Speculation] = None
        try:
            while queue:
                ready_time, group_id = heapq.heappop(queue)
                if max_time is not None and ready_time > max_time:
                    break
                members = self.groups[group_id]
                # Protocol: every member sends READY; the last one completes
                # the group and triggers EXECUTE.
                completed: Optional[int] = None
                for w in members:
                    result = self.scheduler.receive_ready(w)
                    if result is not None:
                        completed = result
                if completed is None:
                    raise RuntimeError(
                        "group did not complete after all READY messages"
                    )
                event = self.scheduler.complete_aggregation(group_id)
                t = event.round_index

                # Local updates are computed from the global version this
                # group last received (Eq. 5); the round index seeds the
                # batch sampling.  A pipelined run may already hold this
                # exact round's result from the speculative dispatch made
                # while the previous aggregation was being committed.
                base = self._group_base[group_id]
                consumed: Optional[_Speculation] = None
                if spec is not None:
                    if (
                        spec.group_id == group_id
                        and spec.round_index == t
                        and spec.base_version == self._base_versions[group_id]
                    ):
                        consumed = spec
                    else:
                        # An interleaving commit invalidated the speculation
                        # (wrong group, round or base): discard the result
                        # and recompute in event order.
                        spec.future.discard()
                        self.history.pipeline_recomputes += 1
                    spec = None
                if consumed is not None:
                    local_vectors = consumed.future.result()
                    self.history.pipeline_hits += 1
                else:
                    # The whole group trains as one batched tensor pass when
                    # the model supports it (scalar per-worker fallback
                    # otherwise).
                    local_vectors = self.local_update_group(members, base, t)

                upload = self.upload_time(members, t)
                # The group can only start its aggregation once the shared
                # uplink is free; with many small groups this queueing delay
                # dominates.
                upload_start = max(ready_time, self._channel_busy_until)
                update_time = upload_start + upload
                self._channel_busy_until = update_time
                # Both timing draws below are pure functions of
                # (group, round), so evaluating next_ready before the
                # aggregation consumes no RNG state out of order.
                next_ready = update_time + self.group_compute_time(group_id, t + 1)

                if pipelining and (max_time is None or update_time < max_time):
                    # Overlap: dispatch the predicted next group's training
                    # to the pool *before* the parent starts this round's
                    # aggregation, so both proceed concurrently.
                    spec = self._submit_speculation(
                        queue, (next_ready, group_id), t, max_rounds, max_time
                    )

                new_global, info = self.aggregate_group(
                    group_id, members, local_vectors, t
                )
                if self.staleness_exponent > 0.0 and event.staleness > 0:
                    # Staleness-aware damping (extension, off by default):
                    # shrink the contribution of updates computed from old
                    # global models.
                    weight = 1.0 / (1.0 + event.staleness) ** self.staleness_exponent
                    new_global = (
                        1.0 - weight
                    ) * self.global_vector + weight * new_global
                # Swap (not copy) the trainer-owned update buffer into place.
                self._commit_global(new_global)
                if consumed is not None:
                    # The aggregation has read the speculative stack; its
                    # arena slot may now host the next dispatch.
                    consumed.future.release()
                # The group receives the fresh global model and immediately
                # starts its next local round.
                np.copyto(self._group_base[group_id], self.global_vector)
                self._base_versions[group_id] += 1
                heapq.heappush(queue, (next_ready, group_id))

                self.record_round(
                    round_index=t,
                    time=update_time,
                    staleness=event.staleness,
                    group_id=group_id,
                    num_participants=len(members),
                    round_energy=info.get("round_energy_j", 0.0),
                    sigma=info.get("sigma", float("nan")),
                    eta=info.get("eta", float("nan")),
                )
                if t >= max_rounds:
                    break
                if max_time is not None and update_time >= max_time:
                    break
        finally:
            if spec is not None:
                # Loop ended (or raised) with a speculation in flight: wait
                # for the pool to go quiet and free the arena slot so the
                # trainer can run again.
                spec.future.discard()
                spec = None
        return self.history
