"""Shared event-driven loop for grouping-asynchronous mechanisms.

Both TiFL (OMA tiers) and Air-FedGA (AirComp groups) follow the same outer
schedule: groups train independently; whenever *all* members of a group have
finished local training, that group alone performs a global update and
immediately starts its next local round from the fresh global model.  The
only differences are (a) how the groups are formed and (b) how the group's
models are aggregated (reliable OMA vs. noisy over-the-air).  This module
implements the common schedule as a virtual-time event loop on top of the
:class:`~repro.core.mechanism.GroupAsyncScheduler` protocol state machine;
the two mechanisms specialize the two hooks.

Execution engines are orthogonal to the schedule: each group's
local-training phase runs on the scalar per-worker path, the in-process
batched engine, or — with ``config.parallelism.mode == "processes"`` — a
worker-process pool (:class:`~repro.parallel.ProcessGroupExecutor`) that
shards the group across CPU cores through shared-memory buffers.  With
``config.parallelism.pipeline`` the loop additionally *overlaps* its
phases in wall-clock terms: while the parent performs the current group's
aggregation, power control and staleness bookkeeping, the pool already
trains the next ready group's shards speculatively
(:meth:`ProcessGroupExecutor.submit_group`), falling back to an in-order
recompute when a commit invalidates the speculation (counted as
``TrainingHistory.pipeline_recomputes``).

The virtual-time event loop itself stays single-threaded and
deterministic: aggregation, power control and the channel-noise RNG
always run in the parent process, in event order, so the produced
:class:`~repro.fl.history.TrainingHistory` is identical across engines —
bit-identical in float64 between serial, multiprocess and pipelined
execution (see ``docs/ARCHITECTURE.md``, "Determinism invariants", for
exactly which operations must stay in the parent and in event order).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.mechanism import GroupAsyncScheduler
from ..parallel import GroupFuture
from .base import BaseTrainer, FLExperiment
from .history import TrainingHistory
from .staleness import StalenessPolicy, resolve_staleness_policy

__all__ = ["GroupedAsyncTrainer"]


@dataclass
class _Speculation:
    """One in-flight speculative group dispatch of the pipelined loop."""

    group_id: int
    round_index: int     # the round the speculation assumed it would commit
    base_version: int    # _base_versions[group_id] at submit time
    future: GroupFuture


@dataclass
class _Roster:
    """The fault layer's record of one group dispatch.

    Captured when the group is (re-)enqueued: which members were available
    to start the local round, the round label the dispatch sampled its
    latency/fault draws with, and the per-group dispatch sequence number
    that makes every dispatch's RNG draws unique (retries and re-dispatches
    of the same round label draw fresh randomness).  ``member_array`` is
    the same roster as an int64 array, captured once at dispatch so the
    commit path never re-converts the member list.
    """

    members: List[int]
    round_label: int
    seq: int
    member_array: np.ndarray


class GroupedAsyncTrainer(BaseTrainer):
    """Base class for group-asynchronous mechanisms (TiFL, Air-FedGA).

    Parameters
    ----------
    experiment:
        The federated experiment definition.
    staleness_exponent:
        Legacy shorthand for the ``polynomial`` staleness policy (an
        extension beyond the paper, following the asynchronous-FL
        literature the paper cites, e.g. Xie et al.): a group whose update
        is based on a global model ``τ`` rounds old contributes with
        weight ``1 / (1 + τ)**staleness_exponent``.  The default ``0.0``
        reproduces the paper's Eq. (10) exactly.
    staleness:
        A staleness policy by registry name (``"constant"``, ``"hinge"``,
        ``"polynomial"``), as a ``{"name": ..., "params": {...}}`` mapping,
        or as a :class:`~repro.fl.staleness.StalenessPolicy` instance.
        Mutually exclusive with a non-zero ``staleness_exponent``.  The
        damping mix happens in the parent process in event order — one of
        the determinism invariants (``docs/ARCHITECTURE.md``, "Determinism
        invariants") — so it composes with both multiprocess execution and
        the pipelined mode (``config.parallelism.pipeline``): speculation
        never changes which staleness ``τ`` a commit observes.

    Device faults (``experiment.clientstate`` + ``experiment.fault``) are
    threaded through the event loop: availability is checked at group
    dispatch, mid-round dropouts are checked when the group's round
    completes, survivors below the quorum abort the round (with retry /
    skip / park escalation per :class:`~repro.core.FaultConfig`), and the
    surviving members' aggregation weights are renormalized so they carry
    the full group's data mass.  With no client-state model (or the
    ``always-on`` model) the loop takes the exact legacy code path.
    """

    name = "grouped_async"

    def __init__(
        self,
        experiment: FLExperiment,
        staleness_exponent: float = 0.0,
        staleness: Union[None, str, Mapping[str, Any], StalenessPolicy] = None,
    ) -> None:
        # Validates staleness_exponent >= 0 and the exclusivity of the two
        # staleness arguments; the legacy exponent maps onto the
        # bit-identical polynomial policy.
        self._staleness_policy: Optional[StalenessPolicy] = resolve_staleness_policy(
            staleness, staleness_exponent
        )
        self.staleness_exponent = staleness_exponent
        super().__init__(experiment)
        self.groups: List[List[int]] = self.build_groups()
        if not self.groups:
            raise ValueError("grouping produced no groups")
        # Int64 member arrays, cached once per group: every per-round
        # touchpoint (latency sampling, worker-state counters, alpha
        # masses) indexes with these instead of Python int lists.
        self._group_arrays: List[np.ndarray] = [
            np.asarray(g, dtype=np.int64) for g in self.groups
        ]
        flat = np.concatenate(self._group_arrays)
        n = experiment.num_workers
        valid = flat.size == n
        if valid:
            valid = bool(
                flat.min() >= 0
                and flat.max() < n
                and np.all(np.bincount(flat, minlength=n) == 1)
            )
        if not valid:
            covered = np.sort(flat).tolist()
            raise ValueError(
                "grouping must cover every worker exactly once; "
                f"got coverage {covered[:10]}..."
            )
        self.scheduler = GroupAsyncScheduler(self.groups)
        # The global-model version each group last received, as a vector.
        # Eager materialization keeps the legacy upfront per-group copies;
        # lazy materialization shares one snapshot of the initial model
        # among all groups that have not committed yet and allocates a
        # private base only on a group's first commit — identical values,
        # O(groups that trained) instead of O(num_groups) memory.
        self._initial_base: Optional[np.ndarray] = None
        if self.population.materialization == "lazy":
            self._group_base: Dict[int, np.ndarray] = {}
            self._initial_base = self.global_vector.copy()
        else:
            self._group_base = {
                g: self.global_vector.copy() for g in range(len(self.groups))
            }
        # Monotonic counter per group, bumped whenever _group_base[g] is
        # overwritten.  The pipelined loop records it at speculation-submit
        # time and validates it at commit time: a speculative result is
        # only usable if the base it trained from is still the base the
        # group would train from in event order.
        self._base_versions: List[int] = [0] * len(self.groups)
        # Uplink occupancy: aggregations (AirComp bursts or OMA uploads) from
        # different groups share the same band, so they are serialized at the
        # parameter server.  This is what makes very small groups (ξ → 0)
        # expensive in the paper's Fig. 8 — with many tiny groups the channel
        # itself becomes the bottleneck.
        self._channel_busy_until: float = 0.0
        # ------------------------------------------------------------------
        # Fault-injection state (repro.sim.clientstate + FaultConfig).  The
        # always-on model is normalized to None so the event loop's fast
        # path — and therefore bit-identical histories — applies whenever
        # no faults can actually occur.
        # ------------------------------------------------------------------
        cs = experiment.clientstate
        self._clientstate = cs if (cs is not None and not cs.is_always_on) else None
        #: Last dispatch roster per group (only populated while faults are on).
        self._rosters: Dict[int, _Roster] = {}
        #: Per-group monotonic dispatch counter: every availability /
        #: survival / completion draw is keyed by it, so retries and
        #: re-dispatches of the same round label get fresh randomness while
        #: two runs of the same scenario replay identical trajectories.
        self._dispatch_seqs: List[int] = [0] * len(self.groups)
        #: Retries used for the group's current round attempt.
        self._retry_counts: List[int] = [0] * len(self.groups)
        #: Consecutive failed quorum checks (parking guard).
        self._consecutive_failures: List[int] = [0] * len(self.groups)

    # ------------------------------------------------------------------
    # Hooks specialized by the concrete mechanisms
    # ------------------------------------------------------------------
    def build_groups(self) -> List[List[int]]:
        """Return the list of worker-id lists forming the groups."""
        raise NotImplementedError

    def aggregate_group(
        self,
        group_id: int,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
        weight_scale: float = 1.0,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """Produce the new global model from the group's local models.

        ``weight_scale`` multiplies the participants' aggregation weights;
        the fault layer passes ``Σα_members / Σα_survivors`` when a
        degraded round aggregates only the mid-round survivors (see
        ``FaultConfig.renormalize_survivors``).
        """
        raise NotImplementedError

    def upload_time(self, member_ids: Sequence[int], round_index: int) -> float:
        """Simulated duration of the group's model-upload phase."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _base_of(self, group_id: int) -> np.ndarray:
        """The global-model vector this group last received (Eq. 5 base)."""
        base = self._group_base.get(group_id)
        return base if base is not None else self._initial_base

    def _commit_base(self, group_id: int) -> None:
        """Record that the group now holds the fresh global model."""
        base = self._group_base.get(group_id)
        if base is None:
            # Lazy mode: first commit of this group — promote it from the
            # shared initial snapshot to a private base vector.
            # analyze: allow-alloc(one-time promotion from the shared initial base)
            self._group_base[group_id] = self.global_vector.copy()
        else:
            np.copyto(base, self.global_vector)

    def _group_stack(self, group_size: int) -> np.ndarray:
        """Group stacks come from the population's recycling pool.

        Unlike the base class's per-size cache (one live buffer per group
        size, never freed), the pool bounds live scratch memory by the few
        in-flight stacks: the event loop releases each stack right after
        its aggregation commits (:meth:`BaseTrainer._release_stack`).
        """
        return self.population.stack_pool.acquire(
            group_size, self.model.dimension, self.global_vector.dtype
        )

    # ------------------------------------------------------------------
    def group_compute_time(self, group_id: int, round_index: int) -> float:
        """Local-training duration of a group: its slowest member."""
        members = self._group_arrays[group_id]
        return float(self.exp.latency.sample_times(members, round_index).max())

    # ------------------------------------------------------------------
    # Fault-injection helpers (experiment.clientstate + experiment.fault)
    # ------------------------------------------------------------------
    def _quorum(self, group_id: int) -> int:
        """``max(1, ceil(quorum_fraction · group_size))`` for one group."""
        size = len(self.groups[group_id])
        return max(1, math.ceil(self.exp.fault.quorum_fraction * size))

    def _next_seq(self, group_id: int) -> int:
        seq = self._dispatch_seqs[group_id]
        self._dispatch_seqs[group_id] = seq + 1
        return seq

    def _register_quorum_failure(self, group_id: int) -> str:
        """Escalate one failed quorum check: ``"retry"``, ``"skip"`` or ``"park"``.

        Retries are budgeted per round attempt (``fault.max_retries``); a
        skip abandons the attempt and resets the retry budget; a group that
        fails ``fault.max_consecutive_failures`` checks in a row is parked
        (removed from the event loop) so dead groups cannot spin forever.
        All three outcomes are counted on the history.
        """
        self._consecutive_failures[group_id] += 1
        if self._consecutive_failures[group_id] >= self.exp.fault.max_consecutive_failures:
            self.history.groups_parked += 1
            return "park"
        if self._retry_counts[group_id] < self.exp.fault.max_retries:
            self._retry_counts[group_id] += 1
            self.history.quorum_retries += 1
            return "retry"
        self._retry_counts[group_id] = 0
        self.history.quorum_skips += 1
        return "skip"

    def _dispatch_group(
        self,
        queue: List[Tuple[float, int]],
        group_id: int,
        start_time: float,
        round_label: int,
    ) -> bool:
        """(Re-)enqueue a group's next local round, applying availability faults.

        Without a client-state model this reduces exactly to the legacy
        ``heappush((start + compute_time, g))``.  With one, the model is
        polled for each member's availability; a roster at or above quorum
        is recorded and enqueued (its ready time gated by its slowest
        *available* member), while a below-quorum roster escalates through
        retry (re-poll ``retry_backoff`` seconds later), skip (idle one
        local-round window, then re-poll) or park (group leaves the loop;
        returns ``False``).
        """
        if self._clientstate is None:
            self.worker_state.record_dispatch(self._group_arrays[group_id])
            heapq.heappush(
                queue,
                (start_time + self.group_compute_time(group_id, round_label), group_id),
            )
            return True
        members = self.groups[group_id]
        member_arr = self._group_arrays[group_id]
        fault = self.exp.fault
        attempt_start = start_time
        while True:
            seq = self._next_seq(group_id)
            mask = np.asarray(
                self._clientstate.availability_mask(members, round_label, seq),
                dtype=bool,
            )
            active_arr = member_arr[mask]
            active = active_arr.tolist()
            self.history.workers_unavailable += len(members) - len(active)
            self.worker_state.record_unavailable(member_arr[~mask])
            if len(active) >= self._quorum(group_id):
                self._retry_counts[group_id] = 0
                self._consecutive_failures[group_id] = 0
                self._rosters[group_id] = _Roster(
                    active, round_label, seq, active_arr
                )
                self.worker_state.record_dispatch(member_arr[mask])
                ready = attempt_start + float(
                    self.exp.latency.sample_times(active, round_label).max()
                )
                heapq.heappush(queue, (ready, group_id))
                return True
            action = self._register_quorum_failure(group_id)
            if action == "park":
                return False
            if action == "retry":
                attempt_start += fault.retry_backoff
                continue
            # Skip: the group idles one local-round window before re-polling.
            attempt_start += fault.retry_backoff + self.group_compute_time(
                group_id, round_label
            )

    # ------------------------------------------------------------------
    # Pipelined-execution hooks (config.parallelism.pipeline)
    # ------------------------------------------------------------------
    def pipeline_lookahead(
        self,
        queue: Sequence[Tuple[float, int]],
        reentry: Tuple[float, int],
    ) -> Optional[int]:
        """Group id of the queue entry certain to be popped next, or ``None``.

        Called while the current group's aggregation is still pending, with
        ``reentry`` being the ``(next_ready, group_id)`` entry the current
        group will re-enter the queue with.  The head of the heap is the
        next pop **unless** the re-entry sorts before it (a fast group
        lapping the rest), in which case speculating on the head would
        train it with a wrong round index.

        The head's *base* can never be invalidated here — only a group's
        own commit rewrites its base, and the committing group is not in
        the queue — so with the deterministic latency/upload models this
        prediction is exact and speculation always hits.  Subclasses with
        stateful or non-deterministic timing overrides can loosen (or
        skip) the re-entry comparison; a wrong prediction is then caught
        by the commit-time validation and recomputed in event order
        (``TrainingHistory.pipeline_recomputes``), never corrupting the
        history.
        """
        if not queue:
            return None
        head = queue[0]
        if reentry < head:
            return None
        return head[1]

    def _submit_speculation(
        self,
        queue: List[Tuple[float, int]],
        reentry: Tuple[float, int],
        round_index: int,
        max_rounds: int,
        max_time: Optional[float],
    ) -> Optional[_Speculation]:
        """Speculatively dispatch the predicted next group's local round.

        Returns ``None`` whenever speculation is not worthwhile or not
        possible: the loop is about to stop, the predicted group is gated
        in-process by ``min_group_size``, or no arena slot is free.
        """
        executor = self._executor
        if executor is None or executor.closed or executor.free_slots == 0:
            return None
        if round_index >= max_rounds:
            return None  # the loop stops after this round
        next_group = self.pipeline_lookahead(queue, reentry)
        if next_group is None:
            return None
        members = self.groups[next_group]
        if len(members) < self.exp.config.parallelism.min_group_size:
            return None  # the pop-time path would train in-process
        if max_time is not None:
            # queue is a heap, so its minimum is queue[0].
            next_time = min(queue[0][0], reentry[0])
            if next_time > max_time:
                return None  # the loop stops before the next pop commits
        future = executor.submit_group(
            members, self._base_of(next_group), round_index + 1
        )
        return _Speculation(
            group_id=next_group,
            round_index=round_index + 1,
            base_version=self._base_versions[next_group],
            future=future,
        )

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        # Construct the multiprocess executor (if configured) before the
        # event loop starts, so a model that cannot be sharded surfaces its
        # RuntimeWarning here rather than mid-run.  Note the pool itself
        # spawns its worker processes lazily on the first dispatch — the
        # first round still pays that one-time cost (benchmarks that need
        # it excluded perform an untimed warm-up dispatch, see
        # repro.experiments.bench).  Serial configurations are a no-op.
        executor = self.parallel_executor()
        cs = self._clientstate
        # Speculation predicts the next pop from deterministic timing; with
        # a fault model active, timing is no longer a pure function of
        # (group, round) — dispatch rosters and retries consume RNG draws —
        # so the pipelined overlap is disabled (plain multiprocess
        # execution still applies).
        pipelining = bool(
            self.exp.config.parallelism.pipeline and executor is not None and cs is None
        )
        self.record_round(round_index=0, time=0.0, num_participants=0, force_eval=True)
        # Priority queue of (ready_time, group_id): the moment every member
        # of the group has finished local training and sent READY.
        queue: List[Tuple[float, int]] = []
        for g in range(len(self.groups)):
            self._dispatch_group(queue, g, 0.0, 1)

        spec: Optional[_Speculation] = None
        try:
            while queue:
                ready_time, group_id = heapq.heappop(queue)
                if max_time is not None and ready_time > max_time:
                    break
                members = self.groups[group_id]
                # Protocol: every member's READY arrives at the same
                # simulated instant (one completion event per group), so
                # the server processes them as a single O(1) group-level
                # transition instead of |V_j| per-worker messages.  (Under
                # faults, absent members' READY messages are synthesized by
                # the server so the Alg.-1 counter still reaches |V_j| —
                # the roster below decides who actually trained.)
                self.scheduler.receive_group_ready(group_id)

                participants = members
                weight_scale = 1.0
                fractions: Optional[np.ndarray] = None
                if cs is not None:
                    roster = self._rosters[group_id]
                    survive = np.asarray(
                        cs.survival_mask(
                            roster.members, roster.round_label, roster.seq
                        ),
                        dtype=bool,
                    )
                    roster_arr = roster.member_array
                    survivors = roster_arr[survive].tolist()
                    self.history.workers_dropped += len(roster.members) - len(
                        survivors
                    )
                    self.worker_state.record_dropped(roster_arr[~survive])
                    if len(survivors) < self._quorum(group_id):
                        # Mid-round dropouts pushed the group below quorum:
                        # abort without a global update (the round never
                        # happened for staleness accounting) and escalate.
                        self.scheduler.abort_group(group_id)
                        if self._register_quorum_failure(group_id) != "park":
                            self._dispatch_group(
                                queue,
                                group_id,
                                ready_time + self.exp.fault.retry_backoff,
                                self.scheduler.current_round + 1,
                            )
                        continue
                    self._retry_counts[group_id] = 0
                    self._consecutive_failures[group_id] = 0
                    participants = survivors
                    if self.exp.fault.renormalize_survivors and len(
                        survivors
                    ) < len(members):
                        # Survivors carry the full group's data mass:
                        # Σα_members / Σα_survivors.
                        weight_scale = float(
                            self.alphas[members].sum()
                            / self.alphas[survivors].sum()
                        )
                    fractions = cs.completion_fractions(
                        survivors, roster.round_label, roster.seq
                    )

                event = self.scheduler.complete_aggregation(group_id)
                t = event.round_index

                # Local updates are computed from the global version this
                # group last received (Eq. 5); the round index seeds the
                # batch sampling.  A pipelined run may already hold this
                # exact round's result from the speculative dispatch made
                # while the previous aggregation was being committed.
                base = self._base_of(group_id)
                consumed: Optional[_Speculation] = None
                if spec is not None:
                    if (
                        spec.group_id == group_id
                        and spec.round_index == t
                        and spec.base_version == self._base_versions[group_id]
                    ):
                        consumed = spec
                    else:
                        # An interleaving commit invalidated the speculation
                        # (wrong group, round or base): discard the result
                        # and recompute in event order.
                        spec.future.discard()
                        self.history.pipeline_recomputes += 1
                    spec = None
                pool_stack: Optional[np.ndarray] = None
                if consumed is not None:
                    local_vectors = consumed.future.result()
                    self.history.pipeline_hits += 1
                else:
                    # The whole group trains as one batched tensor pass when
                    # the model supports it (scalar per-worker fallback
                    # otherwise).
                    local_vectors = self.local_update_group(participants, base, t)
                    pool_stack = local_vectors

                if fractions is not None and np.any(fractions < 1.0):
                    # Partial local work: w ← base + f · (w − base), i.e.
                    # the worker only completed fraction f of its local
                    # round.  Copy first — the stack may be a view into a
                    # reused scratch buffer or the shared-memory arena.
                    self.history.partial_updates += int(
                        np.count_nonzero(fractions < 1.0)
                    )
                    # analyze: allow-alloc(blend must not mutate the recycled stack)
                    stacked = np.asarray(local_vectors).copy()
                    stacked -= base
                    stacked *= fractions.astype(stacked.dtype)[:, None]
                    stacked += base
                    # The copy replaces the raw stack, which can recycle now.
                    self._release_stack(pool_stack)
                    pool_stack = None
                    local_vectors = stacked

                upload = self.upload_time(participants, t)
                # The group can only start its aggregation once the shared
                # uplink is free; with many small groups this queueing delay
                # dominates.
                upload_start = max(ready_time, self._channel_busy_until)
                update_time = upload_start + upload
                self._channel_busy_until = update_time
                if cs is None:
                    # Both timing draws below are pure functions of
                    # (group, round), so evaluating next_ready before the
                    # aggregation consumes no RNG state out of order.
                    next_ready = update_time + self.group_compute_time(
                        group_id, t + 1
                    )

                    if pipelining and (max_time is None or update_time < max_time):
                        # Overlap: dispatch the predicted next group's
                        # training to the pool *before* the parent starts
                        # this round's aggregation, so both proceed
                        # concurrently.
                        spec = self._submit_speculation(
                            queue, (next_ready, group_id), t, max_rounds, max_time
                        )

                new_global, info = self.aggregate_group(
                    group_id, participants, local_vectors, t,
                    weight_scale=weight_scale,
                )
                if self._staleness_policy is not None and event.staleness > 0:
                    # Staleness-aware damping (extension, off by default):
                    # shrink the contribution of updates computed from old
                    # global models by the policy's s(τ).
                    weight = self._staleness_policy.weight(event.staleness)
                    if weight < 1.0:
                        new_global = (
                            1.0 - weight
                        ) * self.global_vector + weight * new_global
                # Swap (not copy) the trainer-owned update buffer into place.
                self._commit_global(new_global)
                if consumed is not None:
                    # The aggregation has read the speculative stack; its
                    # arena slot may now host the next dispatch.
                    consumed.future.release()
                # The aggregation has consumed the group stack: return it
                # to the population pool (no-op for non-pool arrays).
                self._release_stack(pool_stack)
                # The group receives the fresh global model and immediately
                # starts its next local round.
                self._commit_base(group_id)
                self._base_versions[group_id] += 1
                if participants is members:
                    commit_ids = self._group_arrays[group_id]
                else:
                    commit_ids = np.asarray(participants, dtype=np.int64)
                self.worker_state.record_commit(commit_ids, event.staleness)
                if cs is None:
                    self.worker_state.record_dispatch(self._group_arrays[group_id])
                    heapq.heappush(queue, (next_ready, group_id))
                else:
                    self._dispatch_group(queue, group_id, update_time, t + 1)

                self.record_round(
                    round_index=t,
                    time=update_time,
                    staleness=event.staleness,
                    group_id=group_id,
                    num_participants=len(participants),
                    round_energy=info.get("round_energy_j", 0.0),
                    sigma=info.get("sigma", float("nan")),
                    eta=info.get("eta", float("nan")),
                )
                if t >= max_rounds:
                    break
                if max_time is not None and update_time >= max_time:
                    break
        finally:
            if spec is not None:
                # Loop ended (or raised) with a speculation in flight: wait
                # for the pool to go quiet and free the arena slot so the
                # trainer can run again.
                spec.future.discard()
                spec = None
        return self.history
