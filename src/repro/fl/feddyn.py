"""FedDyn: dynamic regularization with per-worker drift state.

Acar et al., ICLR 2021 ("Federated Learning Based on Dynamic
Regularization").  Each worker carries a persistent drift vector ``h_i``
(initialized to zero) and locally minimizes

    ``f_i(w) − <h_i, w> + (λ/2)·||w − w_t||²``

whose SGD step is the affine update

    ``w ← (1 − lr·λ)·w − lr·∇f_i(w) + lr·(λ·w_t + h_i)``

— a :class:`~repro.nn.batched.StepTransform` with per-worker ``(G, q)``
offset rows, so the drift correction runs group-parallel on the batched
engine.  After local training the drift integrates the worker's progress,
``h_i ← h_i − λ·(w_i − w_t)`` (at a local optimum ``h_i → ∇f_i(w_i)``),
and the server subtracts the population drift average from the aggregate:

    ``w_{t+1} = Σ α_i·w_i − (1/λ)·Σ_j α_j·h_j``

At a consensus fixed point the correction term is the α-weighted mean
local gradient, which vanishes exactly at the global optimum — the
client-drift cancellation that lets FedDyn match centralized performance
under heterogeneous data.  This port weights both averages by the repo's
data weights ``α_i`` (the reference implementation's uniform ``1/m`` is
the equal-shard special case).

The drift vectors live in the
:class:`~repro.core.population.WorkerStateTable` as one ``(N, q)``
struct-of-arrays field (``"feddyn_drift"``): absent workers' rows survive
dropout/rejoin faults untouched, the whole state serializes through
``trainer.state_dict()``, and fault trajectories replay exactly under the
keyed RNG streams.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.batched import StepTransform
from .base import FLExperiment
from .fedavg import FedAvgTrainer

__all__ = ["FedDynTrainer"]

#: WorkerStateTable field holding the per-worker drift vectors ``h_i``.
DRIFT_FIELD = "feddyn_drift"


class FedDynTrainer(FedAvgTrainer):
    """Synchronous FedAvg schedule with dynamic regularization."""

    name = "feddyn"

    def __init__(self, experiment: FLExperiment, alpha_coef: float = 0.01) -> None:
        if alpha_coef <= 0:
            raise ValueError(
                f"alpha_coef (the λ regularizer) must be > 0, got {alpha_coef}"
            )
        lr_lam = float(experiment.learning_rate) * float(alpha_coef)
        if lr_lam >= 1.0:
            raise ValueError(
                f"lr·alpha_coef = {lr_lam} >= 1: the regularized step would "
                "overshoot the base model (reduce alpha_coef or the learning "
                "rate)"
            )
        super().__init__(experiment)
        self.alpha_coef = float(alpha_coef)
        #: (N, q) drift state h_i, zero-initialized, persistent across
        #: rounds and across dropout/rejoin fault trajectories.
        self.drift = self.register_worker_state(
            DRIFT_FIELD, width=self.model.dimension
        )
        # A new trainer means fresh optimizer state even when the
        # experiment's population (and hence the registered field) is
        # shared with an earlier trainer; checkpoints restore through
        # load_state_dict, not through field aliasing.
        self.drift.fill(0.0)

    # -- local objective -------------------------------------------------
    def local_step_transform(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
    ) -> Optional[StepTransform]:
        lam = self.alpha_coef
        lr = self.exp.learning_rate
        # One (G, q) offset per dispatch: the λ·w_t pull is shared, the
        # h_i rows are per-worker.  Computed once here so the batched and
        # scalar paths add bit-identical values.
        offset = self.drift[list(worker_ids)]
        offset = lr * (lam * base_vector + offset)
        return StepTransform(scale=1.0 - lr * lam, offset=offset)

    # -- drift bookkeeping ------------------------------------------------
    def post_local_update(
        self,
        participants: List[int],
        local_vectors: np.ndarray,
        base_vector: np.ndarray,
        round_index: int,
    ) -> None:
        # h_i ← h_i − λ·(w_i − w_t) for the round's participants only;
        # absent workers keep their drift (dropout-rejoin durability).
        delta = np.asarray(local_vectors) - base_vector
        self.drift[participants] -= self.alpha_coef * delta

    def post_aggregate(
        self, new_global: np.ndarray, participants: List[int], round_index: int
    ) -> np.ndarray:
        # w ← w − (1/λ)·Σ_j α_j·h_j over the whole population (α sums to 1).
        np.dot(
            self.alphas.astype(self.drift.dtype, copy=False),
            self.drift,
            out=self._agg_scratch,
        )
        self._agg_scratch /= self.alpha_coef
        new_global -= self._agg_scratch
        return new_global
