"""Federated-learning mechanisms: the Air-FedGA trainer and its baselines.

Public entry points (documented in ``docs/API.md``):

* :func:`build_trainer` / :data:`MECHANISMS` — construct a mechanism by
  registry name: ``"fedavg"``, ``"tifl"``, ``"air_fedavg"``,
  ``"dynamic"``, ``"air_fedga"`` (the paper's figure labels), or the
  comparison families ``"fedprox"``, ``"feddyn"`` and ``"fedasync"``;
* :class:`FLExperiment` — the experiment bundle every trainer consumes
  (dataset, partition, model factory, latency table, channel, config);
  its ``engine`` field selects the local-training execution path
  (``"auto"``/``"batched"``/``"scalar"``) and
  ``config.parallelism`` upgrades group rounds to a worker-process pool
  (:mod:`repro.parallel`);
* :class:`BaseTrainer` — shared machinery (local updates, AirComp and
  OMA aggregation, evaluation, energy accounting).  Trainers are context
  managers: ``with build_trainer(...) as t: t.run(...)`` releases any
  multiprocess resources deterministically;
* :class:`TrainingHistory` / :class:`RoundRecord` — the per-round
  trajectory every ``run()`` returns (including the device-fault
  counters);
* :class:`StalenessPolicy` and its ``constant`` / ``polynomial`` /
  ``hinge`` implementations — staleness-aware aggregation schedules
  (registry kind ``"staleness"``), coerced from names/mappings by
  :func:`resolve_staleness_policy`.
"""

from .base import BaseTrainer, FLExperiment
from .history import RoundRecord, TrainingHistory
from .fedavg import FedAvgTrainer
from .fedprox import FedProxTrainer
from .feddyn import FedDynTrainer
from .fedasync import FedAsyncTrainer
from .air_fedavg import AirFedAvgTrainer
from .dynamic import DynamicTrainer
from .grouped import GroupedAsyncTrainer
from .staleness import (
    ConstantStaleness,
    HingeStaleness,
    PolynomialStaleness,
    StalenessPolicy,
    resolve_staleness_policy,
)
from .tifl import TiFLTrainer
from .air_fedga import AirFedGATrainer
from .registry import MECHANISMS, build_trainer

__all__ = [
    "FLExperiment",
    "BaseTrainer",
    "RoundRecord",
    "TrainingHistory",
    "FedAvgTrainer",
    "FedProxTrainer",
    "FedDynTrainer",
    "FedAsyncTrainer",
    "AirFedAvgTrainer",
    "DynamicTrainer",
    "GroupedAsyncTrainer",
    "TiFLTrainer",
    "AirFedGATrainer",
    "MECHANISMS",
    "build_trainer",
    "StalenessPolicy",
    "ConstantStaleness",
    "PolynomialStaleness",
    "HingeStaleness",
    "resolve_staleness_policy",
]
