"""Federated-learning mechanisms: the Air-FedGA trainer and its baselines."""

from .base import BaseTrainer, FLExperiment
from .history import RoundRecord, TrainingHistory
from .fedavg import FedAvgTrainer
from .air_fedavg import AirFedAvgTrainer
from .dynamic import DynamicTrainer
from .grouped import GroupedAsyncTrainer
from .tifl import TiFLTrainer
from .air_fedga import AirFedGATrainer
from .registry import MECHANISMS, build_trainer

__all__ = [
    "FLExperiment",
    "BaseTrainer",
    "RoundRecord",
    "TrainingHistory",
    "FedAvgTrainer",
    "AirFedAvgTrainer",
    "DynamicTrainer",
    "GroupedAsyncTrainer",
    "TiFLTrainer",
    "AirFedGATrainer",
    "MECHANISMS",
    "build_trainer",
]
