"""Federated-learning experiment plumbing shared by all mechanisms.

An :class:`FLExperiment` bundles everything a mechanism needs: the dataset
and its partition across workers, a model factory, the compute-latency
table (edge heterogeneity), the wireless channel model and the Air-FedGA
configuration.  :class:`BaseTrainer` provides the operations every
mechanism reuses:

* ``local_update`` — the worker-side update of Eq. (4)/(5): load a global
  model version, run local mini-batch SGD on the worker's own data and
  return the new local model vector;
* ``evaluate`` — global test loss/accuracy of a model vector;
* ``aircomp_group_update`` — one over-the-air aggregation with power
  control (Eqs. 6-10 + Algorithm 2), returning the new global model and
  the per-worker transmit energies;
* ``exact_group_update`` — the error-free OMA counterpart (Eq. 8).

The concrete mechanisms (FedAvg, TiFL, Air-FedAvg, Dynamic, Air-FedGA)
compose these pieces with their own scheduling logic.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.aircomp import (
    AirCompWorkspace,
    aircomp_aggregate,
    aircomp_aggregate_reference,
    aircomp_latency,
)
from ..channel.energy import EnergyTracker
from ..channel.fading import ChannelModel
from ..channel.oma import OMAConfig, tdma_round_time
from ..core.config import AirFedGAConfig, FaultConfig
from ..core.population import Population, validate_materialization
from ..core.power_control import PowerControlCache, solve_power_control
from ..data.partition import Partition
from ..data.synthetic import Dataset
from ..nn.batched import BatchedWorkerEngine, StepTransform
from ..nn.models import Model
from ..nn.optim import SGD
from ..nn.params import parameter_dtype, unflatten_vector
from ..parallel import ProcessGroupExecutor, UnsupportedModelError
from ..sim.clientstate import ClientStateModel
from ..sim.latency import LatencyTable
from .history import RoundRecord, TrainingHistory

__all__ = ["FLExperiment", "BaseTrainer"]


@dataclass
class FLExperiment:
    """Everything needed to run one federated-training simulation.

    Attributes
    ----------
    dataset, partition:
        Training data and its assignment to workers.
    model_factory:
        Zero-argument callable constructing the (identically initialized)
        model.  Every mechanism starts from the same global model.
    latency:
        Per-worker simulated local-training times (edge heterogeneity).
    channel:
        Block-fading channel model producing per-round gains.
    config:
        Air-FedGA configuration (AirComp physical layer, grouping ξ,
        convergence constants).
    learning_rate, local_steps, batch_size:
        Worker-side SGD hyper-parameters (Eq. 4 uses one full-gradient step;
        ``local_steps`` mini-batch steps is the practical equivalent).
    eval_every:
        Evaluate the global model every this many global updates.
    max_eval_samples:
        Cap on the number of test samples used per evaluation (speed).
    seed:
        Base seed for batch sampling and channel noise.
    """

    dataset: Dataset
    partition: Optional[Partition]
    model_factory: Callable[[], Model]
    latency: LatencyTable
    channel: ChannelModel
    config: AirFedGAConfig = field(default_factory=AirFedGAConfig)
    learning_rate: float = 0.1
    local_steps: int = 2
    batch_size: int = 32
    eval_every: int = 1
    max_eval_samples: int = 512
    seed: int = 0
    oma: OMAConfig = field(default_factory=OMAConfig)
    #: Local-training execution engine: ``"auto"`` uses the vectorized
    #: group-batched engine whenever every model layer has a batched kernel
    #: (Dense/ReLU/Flatten/Conv2D/MaxPool2D/Dropout — i.e. every LR, CNN
    #: and MiniVGG workload of the paper) and falls back to the per-worker
    #: scalar path otherwise (custom layers without a registered kernel);
    #: ``"batched"`` requires the batched engine (raises if the model is
    #: unsupported); ``"scalar"`` forces the seed's sequential per-worker
    #: path (also switching aggregation to the reference loop
    #: implementations — used as the benchmark baseline).
    engine: str = "auto"
    #: Model dimension used for *latency/energy* computations.  The paper's
    #: models have 10^5-10^8 parameters; the NumPy substrate trains scaled
    #: down versions, so experiments can pass the paper-scale dimension here
    #: to keep the communication-time model faithful while the learning part
    #: stays tractable.  ``None`` means "use the trained model's dimension".
    latency_model_dimension: Optional[int] = None
    #: Device-realism model (see :mod:`repro.sim.clientstate`): decides
    #: which workers are unavailable at group-dispatch time, drop mid-round
    #: or return partial local work.  ``None`` (or the ``always-on`` model)
    #: disables fault injection entirely — the event loop then takes the
    #: exact legacy code path and histories stay bit-identical.
    clientstate: Optional[ClientStateModel] = None
    #: Group-level policy for reacting to faults (quorum fraction, retry
    #: backoff, survivor-weight renormalization); see
    #: :class:`repro.core.FaultConfig`.  Inert while ``clientstate`` is
    #: ``None``/always-on.
    fault: FaultConfig = field(default_factory=FaultConfig)
    #: Worker-data materialization policy: ``"eager"`` (default) gives every
    #: worker a private fancy-indexed copy of its samples — the legacy,
    #: bit-identical allocation profile — while ``"lazy"`` hands out
    #: zero-copy :class:`~repro.core.population.ShardView` slices into one
    #: shared store (O(1) per worker; the 10k–1M scale path).
    materialization: str = "eager"
    #: Pre-built :class:`~repro.core.population.Population`.  Usually left
    #: ``None`` and built on demand from ``dataset`` + ``partition``; the XL
    #: bench passes a replicated-store population directly and may then set
    #: ``partition=None``.
    population: Optional[Population] = None

    def __post_init__(self) -> None:
        validate_materialization(self.materialization)
        if self.partition is None and self.population is None:
            raise ValueError(
                "experiment needs a partition or a pre-built population"
            )
        num_workers = (
            self.partition.num_workers
            if self.partition is not None
            else self.population.num_workers
        )
        if (
            self.population is not None
            and self.population.num_workers != num_workers
        ):
            raise ValueError(
                "population and partition disagree on the number of workers"
            )
        if num_workers != self.latency.num_workers:
            raise ValueError(
                "partition and latency table disagree on the number of workers"
            )
        if num_workers != self.channel.num_workers:
            raise ValueError(
                "partition and channel model disagree on the number of workers"
            )
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.local_steps < 1:
            raise ValueError("local_steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if self.max_eval_samples < 1:
            raise ValueError("max_eval_samples must be >= 1")
        if self.latency_model_dimension is not None and self.latency_model_dimension <= 0:
            raise ValueError("latency_model_dimension must be positive when given")
        if self.engine not in ("auto", "batched", "scalar"):
            raise ValueError(
                f"engine must be 'auto', 'batched' or 'scalar', got {self.engine!r}"
            )
        if (
            self.clientstate is not None
            and self.clientstate.num_workers != num_workers
        ):
            raise ValueError(
                "client-state model and partition disagree on the number of "
                f"workers ({self.clientstate.num_workers} vs "
                f"{num_workers})"
            )

    @property
    def num_workers(self) -> int:
        if self.partition is not None:
            return self.partition.num_workers
        return self.population.num_workers

    def ensure_population(self) -> Population:
        """The population facade for this experiment, built on first use.

        Standard experiments derive it from ``dataset`` + ``partition``
        under the experiment's ``materialization`` policy; XL experiments
        pass a pre-built (e.g. replicated-store) population instead.
        """
        if self.population is None:
            self.population = Population.from_dataset(
                self.dataset,
                self.partition,
                latency=self.latency,
                materialization=self.materialization,
            )
        return self.population


class BaseTrainer:
    """Shared machinery for all federated mechanisms."""

    #: registry name, overridden by subclasses
    name = "base"

    def __init__(self, experiment: FLExperiment) -> None:
        self.exp = experiment
        # The config dtype knob ("float32" simulation mode) applies to every
        # parameter the factory constructs, and thereby to all O(q) buffers.
        with parameter_dtype(experiment.config.dtype):
            self.model: Model = experiment.model_factory()
        self.global_vector: np.ndarray = self.model.get_vector()
        # Struct-of-arrays population surface (repro.core.population): data
        # sizes, α weights, latencies, staleness and availability counters
        # live in one WorkerStateTable — no per-worker Python objects.  The
        # table reproduces the legacy size/alpha computation bit-for-bit
        # (workers with no data get a negligible 1e-9 weight so the α_i
        # normalisation stays well defined).
        self.population: Population = experiment.ensure_population()
        self.worker_state = self.population.state
        self.data_sizes: np.ndarray = self.worker_state.sizes
        self.total_data: float = self.worker_state.total_size
        self.alphas: np.ndarray = self.worker_state.alphas
        self.history = TrainingHistory(mechanism=self.name)
        self.energy = EnergyTracker(num_workers=experiment.num_workers)
        self._noise_rng = np.random.default_rng(
            np.random.SeedSequence([experiment.seed, 0xA17])
        )
        self._cumulative_energy = 0.0
        # Worker training data through the population: eager materializes
        # the legacy list of per-worker copies, lazy hands out zero-copy
        # shard views into the shared store (O(1) per worker).
        self._worker_data: Sequence[Tuple[np.ndarray, np.ndarray]] = (
            self.population.worker_data_sequence()
        )
        # Evaluation subset (fixed across rounds for comparability).
        eval_rng = np.random.default_rng(np.random.SeedSequence([experiment.seed, 0xE7A1]))
        n_test = experiment.dataset.num_test
        take = min(experiment.max_eval_samples, n_test)
        eval_idx = eval_rng.choice(n_test, size=take, replace=False)
        self._eval_x = experiment.dataset.x_test[eval_idx]
        self._eval_y = experiment.dataset.y_test[eval_idx]
        # ------------------------------------------------------------------
        # Vectorized hot-path machinery (see docs/PERFORMANCE.md):
        # * a group-batched execution engine when every layer has a batched
        #   kernel (None -> scalar per-worker fallback);
        # * trainer-owned O(q) buffers so steady-state rounds perform no
        #   model-sized allocations;
        # * a memoized/warm-started power-control solver.
        # ------------------------------------------------------------------
        dim = self.model.dimension
        dtype = self.global_vector.dtype
        self._engine: Optional[BatchedWorkerEngine] = None
        if experiment.engine in ("auto", "batched"):
            self._engine = BatchedWorkerEngine.try_build(self.model)
            if experiment.engine == "batched" and self._engine is None:
                raise ValueError(
                    "engine='batched' requested but the model contains layers "
                    "without a registered batched kernel (see "
                    "repro.nn.batched.register_batched_kernel); use engine='auto'"
                )
        self._local_sgd: Optional[SGD] = None
        self._update_out: np.ndarray = np.empty(dim, dtype=dtype)
        self._agg_scratch: np.ndarray = np.empty(dim, dtype=dtype)
        self._stack_bufs: Dict[int, np.ndarray] = {}
        self._air_workspace = AirCompWorkspace()
        cfg = experiment.config.aircomp
        self._pc_cache: Optional[PowerControlCache] = (
            PowerControlCache(
                rel_tol=cfg.power_control_cache_rel_tol,
                warm_start=cfg.power_control_warm_start,
            )
            if cfg.power_control_cache and experiment.engine != "scalar"
            else None
        )
        # Multiprocess group executor (config.parallelism): created lazily
        # on the first group dispatch so trainers that never train (or run
        # serial) spawn no pool.  See repro.parallel.ProcessGroupExecutor.
        self._executor: Optional[ProcessGroupExecutor] = None
        self._executor_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Hot-path buffer helpers
    # ------------------------------------------------------------------
    @property
    def pc_cache_hits(self) -> int:
        """Cumulative power-control cache hits (0 when the cache is off)."""
        return self._pc_cache.hits if self._pc_cache is not None else 0

    @property
    def pc_cache_misses(self) -> int:
        return self._pc_cache.misses if self._pc_cache is not None else 0

    def _group_stack(self, group_size: int) -> np.ndarray:
        """Reusable ``(G, q)`` buffer holding a group's stacked local models."""
        buf = self._stack_bufs.get(group_size)
        if buf is None:
            # analyze: allow-alloc(first-touch stack buffer, cached per group size)
            buf = np.empty(
                (group_size, self.model.dimension), dtype=self.global_vector.dtype
            )
            self._stack_bufs[group_size] = buf
        return buf

    def _release_stack(self, stack: Optional[np.ndarray]) -> None:
        """Recycle a population-pool group stack after commit.

        No-op for arrays the pool does not own (the per-size cached
        buffers above, executor arena views, partial-work copies), so
        event loops may call it unconditionally.
        """
        self.population.stack_pool.release(stack)

    # ------------------------------------------------------------------
    # Multiprocess execution (config.parallelism)
    # ------------------------------------------------------------------
    def parallel_executor(self) -> Optional[ProcessGroupExecutor]:
        """The process-pool group executor, or ``None`` when parallelism is
        off, unsupported for this model, or failed to initialize.

        The executor is created on first use; an unsupported model (no
        batched engine, or active Dropout) downgrades to the serial path
        with a :class:`RuntimeWarning` and is not retried.
        """
        par = self.exp.config.parallelism
        if par.mode != "processes":
            return None
        if self._executor is not None and not self._executor.closed:
            return self._executor
        if self._executor_error is not None:
            return None
        if self._engine is None:
            self._executor_error = (
                "no batched engine (engine='scalar' or unsupported layers)"
            )
            warnings.warn(
                "parallelism mode 'processes' requested but the trainer has "
                f"no batched engine ({self.exp.engine=}); running serial",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        try:
            self._executor = ProcessGroupExecutor(
                self.model,
                self._worker_data,
                learning_rate=self.exp.learning_rate,
                local_steps=self.exp.local_steps,
                batch_size=self.exp.batch_size,
                seed=self.exp.seed,
                num_processes=par.num_processes,
                start_method=par.start_method,
                max_restarts=par.max_restarts,
                # The pipelined event loop overlaps the committing group's
                # aggregation with the next group's speculative training,
                # so it needs their arena slots to coexist.
                num_slots=par.max_inflight if par.pipeline else 1,
            )
        except (UnsupportedModelError, ValueError, OSError) as exc:
            # UnsupportedModelError: no batched engine / active Dropout.
            # ValueError/OSError: pool or shared-memory initialization
            # failure (e.g. start_method unavailable on this platform,
            # shm limits) — downgrade to serial rather than abort the run.
            self._executor_error = str(exc)
            warnings.warn(
                f"parallelism mode 'processes' requested but unavailable; "
                f"running serial: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return self._executor

    @property
    def parallelism_active(self) -> bool:
        """Whether group rounds are actually dispatched to a process pool."""
        return self._executor is not None and not self._executor.closed

    def close(self) -> None:
        """Release multiprocess resources (worker pool, shared memory).

        Idempotent; serial trainers are unaffected.  Trainers are also
        usable as context managers (``with build_trainer(...) as t:``).
        """
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "BaseTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _commit_global(self, new_global: np.ndarray) -> None:
        """Install ``new_global`` as the global model.

        When the aggregation wrote into the trainer-owned ``_update_out``
        buffer, the buffer is swapped with the current global vector instead
        of copied, keeping the round allocation-free.
        """
        if new_global is self._update_out:
            self._update_out = self.global_vector
        self.global_vector = new_global

    # ------------------------------------------------------------------
    # Worker-side local update (Eq. 4/5)
    # ------------------------------------------------------------------
    def local_step_transform(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
    ) -> Optional[StepTransform]:
        """Per-step parameter correction for this group's local training.

        Mechanism families with a regularized local objective override this
        to return a :class:`~repro.nn.batched.StepTransform` — FedProx's
        proximal pull toward ``base_vector``, FedDyn's drift correction.
        The transform is computed **once per group dispatch** (so both
        execution paths add identical float values) and applied around
        every SGD step on both the batched engine and the scalar fallback.
        ``None`` (the default) is the legacy update, untouched.
        """
        return None

    def local_update(
        self,
        worker_id: int,
        base_vector: np.ndarray,
        round_index: int,
        out: Optional[np.ndarray] = None,
        transform: Optional[StepTransform] = None,
    ) -> np.ndarray:
        """Run the worker's local SGD starting from ``base_vector``.

        Returns a flat vector (written into ``out`` when given);
        ``base_vector`` is not modified.  The SGD object is reused across
        calls (it is stateless at momentum 0); the batch-sampling RNG is
        re-derived from ``(seed, worker_id, round_index)`` every call so
        results stay deterministic and order-independent.  ``transform``
        (a :class:`~repro.nn.batched.StepTransform` with a flat ``(q,)``
        offset for *this* worker) applies the mechanism's per-step affine
        correction in the same stage order as the batched engine.
        """
        x, y = self._worker_data[worker_id]
        if x.shape[0] == 0:
            # A worker with no data returns the model unchanged.
            if out is None:
                return base_vector.copy()
            np.copyto(out, base_vector)
            return out
        self.model.set_vector(base_vector)
        if self._local_sgd is None:
            self._local_sgd = SGD(self.model.parameters, lr=self.exp.learning_rate)
        optimizer = self._local_sgd
        params = self.model.parameters
        offset_blocks = None
        if transform is not None and transform.offset is not None:
            if transform.offset.ndim != 1:
                raise ValueError(
                    "local_update takes a per-worker (q,) transform offset; "
                    f"got shape {transform.offset.shape}"
                )
            offset_blocks = unflatten_vector(transform.offset, params.shapes())
        scale = transform.scale if transform is not None else 1.0
        rng = np.random.default_rng(
            np.random.SeedSequence([self.exp.seed, worker_id, round_index, 0x10CA1])
        )
        n = x.shape[0]
        batch = min(self.exp.batch_size, n)
        for _ in range(self.exp.local_steps):
            idx = rng.choice(n, size=batch, replace=False)
            optimizer.zero_grad()
            self.model.loss_and_grad(x[idx], y[idx])
            # StepTransform stages (skipped entirely on the legacy path):
            # gradients were evaluated at the pre-scale parameters, giving
            # ``w ← scale·w − lr·∇f(w) + offset`` — the element-wise stage
            # order the batched engine uses, so both paths stay bit-equal.
            if scale != 1.0:
                for p in params:
                    p.value *= scale
            optimizer.step()
            if offset_blocks is not None:
                for p, block in zip(params, offset_blocks):
                    p.value += block
        return self.model.get_vector(out=out)

    def local_update_group(
        self,
        worker_ids: Sequence[int],
        base_vector: np.ndarray,
        round_index: int,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Local updates of a whole group, stacked as a ``(G, q)`` matrix.

        Uses the vectorized :class:`~repro.nn.batched.BatchedWorkerEngine`
        when available (one batched matmul per layer per SGD step for the
        whole group), falling back to sequential :meth:`local_update` calls
        otherwise.  Both paths draw identical per-worker mini-batches, so
        they agree to ~1e-9 per parameter in float64.

        With ``config.parallelism.mode == "processes"`` the round is
        dispatched to the :class:`~repro.parallel.ProcessGroupExecutor`
        instead: members are sharded across a worker-process pool and the
        returned stack is a view into the executor's shared-memory arena
        (valid until the next dispatch) — bit-identical in float64 to the
        serial engine.  Groups smaller than
        ``parallelism.min_group_size`` stay in-process.
        """
        ids = list(worker_ids)
        transform = self.local_step_transform(ids, base_vector, round_index)
        par = self.exp.config.parallelism
        # The process pool knows nothing about step transforms, so groups
        # with an active mechanism correction always train in-process (the
        # batched engine still vectorizes them over the group axis).
        if (
            transform is None
            and par.mode == "processes"
            and len(ids) >= par.min_group_size
        ):
            executor = self.parallel_executor()
            if executor is not None:
                return executor.run_group(ids, base_vector, round_index, out=out)
        if out is None:
            out = self._group_stack(len(ids))
        if self._engine is not None:
            self._engine.run_group(
                ids,
                [self._worker_data[w] for w in ids],
                base_vector,
                round_index,
                learning_rate=self.exp.learning_rate,
                local_steps=self.exp.local_steps,
                batch_size=self.exp.batch_size,
                seed=self.exp.seed,
                out=out,
                transform=transform,
            )
        else:
            for k, w in enumerate(ids):
                self.local_update(
                    w,
                    base_vector,
                    round_index,
                    out=out[k],
                    transform=(
                        transform.rows(k) if transform is not None else None
                    ),
                )
        return out

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate_vector(self, vector: np.ndarray) -> Tuple[float, float]:
        """Global test (loss, accuracy) of a flat model vector."""
        self.model.set_vector(vector)
        return self.model.evaluate(self._eval_x, self._eval_y)

    def record_round(
        self,
        round_index: int,
        time: float,
        staleness: int = 0,
        group_id: int = -1,
        num_participants: int = 0,
        round_energy: float = 0.0,
        sigma: float = float("nan"),
        eta: float = float("nan"),
        force_eval: bool = False,
    ) -> Optional[RoundRecord]:
        """Evaluate and append a history record if this round is sampled."""
        self._cumulative_energy += round_energy
        if not force_eval and round_index % self.exp.eval_every != 0:
            return None
        loss, acc = self.evaluate_vector(self.global_vector)
        record = RoundRecord(
            round_index=round_index,
            time=time,
            loss=loss,
            accuracy=acc,
            staleness=staleness,
            group_id=group_id,
            num_participants=num_participants,
            round_energy_j=round_energy,
            cumulative_energy_j=self._cumulative_energy,
            sigma=sigma,
            eta=eta,
            pc_cache_hits=self.pc_cache_hits,
        )
        self.history.append(record)
        return record

    # ------------------------------------------------------------------
    # Aggregation primitives
    # ------------------------------------------------------------------
    def exact_group_update(
        self,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        out: Optional[np.ndarray] = None,
        weight_scale: float = 1.0,
    ) -> np.ndarray:
        """Error-free OMA aggregation (Eq. 8).

        ``w_t = (1 − Σ α_i) w_{t−1} + Σ α_i w_i`` over the participating
        workers; with all workers participating this is exactly FedAvg.

        The weighted sum is one ``α @ A`` matmul over the stacked ``(G, q)``
        local-model matrix; pass ``out`` (the trainers pass their own
        ``_update_out`` buffer) to make the call allocation-free.
        ``local_vectors`` may be a sequence of flat vectors or an already
        stacked 2-D array.  ``weight_scale`` multiplies the participants'
        ``α_i`` — the fault layer passes ``Σα_members / Σα_survivors`` so
        mid-round survivors carry the full group's data mass.
        """
        member_ids = list(member_ids)
        if len(member_ids) != len(local_vectors):
            raise ValueError("member_ids and local_vectors length mismatch")
        if weight_scale <= 0:
            raise ValueError(f"weight_scale must be positive, got {weight_scale}")
        alphas = self.alphas[member_ids]
        if weight_scale != 1.0:
            alphas = alphas * weight_scale
        if self.exp.engine == "scalar":
            # Seed-equivalent reference path (benchmark baseline).
            new_global = (1.0 - alphas.sum()) * self.global_vector
            for a, vec in zip(alphas, local_vectors):
                new_global = new_global + a * vec
            if out is not None:
                np.copyto(out, new_global)
                return out
            return new_global
        stacked = local_vectors
        if not (isinstance(stacked, np.ndarray) and stacked.ndim == 2):
            # analyze: allow-alloc(fallback for list input; hot path passes a 2-D stack)
            stacked = np.stack([np.asarray(v).ravel() for v in local_vectors])
        if stacked.dtype not in (np.float32, np.float64):
            stacked = stacked.astype(np.float64)
        if out is None:
            # analyze: allow-alloc(convenience path; hot callers pass a reused out=)
            out = np.empty_like(self.global_vector)
        # (1 − β) w_{t−1} goes into the scratch buffer *before* the matmul so
        # that ``out`` may alias the current global vector.
        np.multiply(self.global_vector, 1.0 - alphas.sum(), out=self._agg_scratch)
        np.dot(alphas.astype(stacked.dtype, copy=False), stacked, out=out)
        out += self._agg_scratch
        return out

    def aircomp_group_update(
        self,
        member_ids: Sequence[int],
        local_vectors: Sequence[np.ndarray],
        round_index: int,
        out: Optional[np.ndarray] = None,
        weight_scale: float = 1.0,
    ) -> Tuple[np.ndarray, Dict[str, float]]:
        """One over-the-air aggregation with power control (Eqs. 6-10).

        Returns the new global vector and a dict with the σ/η used, the
        per-round transmit energy and the aggregation error diagnostics.
        ``local_vectors`` may be a stacked ``(G, q)`` array; pass ``out`` to
        receive the new global model in a caller-owned buffer.
        ``weight_scale`` multiplies the participants' effective data sizes
        (and thus their ``α_i`` and the Eq.-10 mixing mass β) — the fault
        layer passes ``Σα_members / Σα_survivors`` so a degraded group's
        survivors carry the full group's data mass over the air.
        """
        member_ids = list(member_ids)
        if len(member_ids) == 0:
            raise ValueError("at least one participant required")
        if len(member_ids) != len(local_vectors):
            raise ValueError("member_ids and local_vectors length mismatch")
        if weight_scale <= 0:
            raise ValueError(f"weight_scale must be positive, got {weight_scale}")
        cfg = self.exp.config.aircomp
        gains_all = self.exp.channel.gains(round_index)
        # Reference (not copy) the freshest full-population draw in the
        # state table so diagnostics read gains without a second draw.
        self.worker_state.record_gains(round_index, gains_all)
        gains = gains_all[member_ids]
        sizes = self.data_sizes[member_ids]
        if weight_scale != 1.0:
            sizes = sizes * weight_scale

        # Model-norm bound W_t: use the largest local-model norm this round,
        # which is exactly what Assumption 4 bounds.
        if isinstance(local_vectors, np.ndarray) and local_vectors.ndim == 2:
            sq_norms = np.einsum(
                "ij,ij->i", local_vectors, local_vectors, dtype=np.float64
            )
            model_bound = float(np.sqrt(sq_norms.max()))
        else:
            model_bound = max(float(np.linalg.norm(v)) for v in local_vectors)
        model_bound = max(model_bound, 1e-8)

        # Calibration (see DESIGN.md): the paper's σ₀² is the total AWGN
        # power of the aggregation; the q model entries are carried by q
        # symbols, so the per-entry noise variance is σ₀² / q.  We use the
        # paper-scale dimension (latency_dimension) so that the noise level,
        # the upload latency and the energy model all describe the same
        # full-size upload.
        per_entry_noise_var = cfg.noise_variance / float(self.latency_dimension)

        pc_config = replace(cfg, noise_variance=per_entry_noise_var)
        if self._pc_cache is not None:
            pc = self._pc_cache.solve(
                data_sizes=sizes,
                channel_gains=gains,
                model_bound=model_bound,
                config=pc_config,
                group_key=tuple(member_ids),
            )
        else:
            pc = solve_power_control(
                data_sizes=sizes,
                channel_gains=gains,
                model_bound=model_bound,
                config=pc_config,
            )

        if self.exp.engine == "scalar":
            # Seed-equivalent reference path (benchmark baseline).
            result = aircomp_aggregate_reference(
                models=local_vectors,
                data_sizes=sizes,
                channel_gains=gains,
                sigma_t=pc.sigma,
                eta_t=pc.eta,
                noise_std=float(np.sqrt(per_entry_noise_var)),
                rng=self._noise_rng,
                total_data_size=self.total_data,
            )
        else:
            result = aircomp_aggregate(
                models=local_vectors,
                data_sizes=sizes,
                channel_gains=gains,
                sigma_t=pc.sigma,
                eta_t=pc.eta,
                noise_std=float(np.sqrt(per_entry_noise_var)),
                rng=self._noise_rng,
                total_data_size=self.total_data,
                workspace=self._air_workspace,
            )
        # Eq. (10): mix the received estimate with the previous global model.
        beta = float(self.alphas[member_ids].sum())
        if weight_scale != 1.0:
            beta = min(1.0, beta * weight_scale)
        if out is None:
            new_global = (1.0 - beta) * self.global_vector + result.estimate
        else:
            # Scratch-first ordering keeps this correct even if ``out``
            # aliases the current global vector.
            np.multiply(self.global_vector, 1.0 - beta, out=self._agg_scratch)
            np.add(result.estimate, self._agg_scratch, out=out)
            new_global = out

        round_energy = float(result.transmit_energies.sum())
        self.energy.record_round(member_ids, result.transmit_energies)
        info = {
            "sigma": pc.sigma,
            "eta": pc.eta,
            "round_energy_j": round_energy,
            "beta": beta,
            "noise_norm": result.noise_norm,
            "power_control_iterations": float(pc.iterations),
            "pc_cache_hits": float(self.pc_cache_hits),
        }
        return new_global, info

    # ------------------------------------------------------------------
    # Persistent per-worker mechanism state
    # ------------------------------------------------------------------
    def register_worker_state(
        self,
        name: str,
        width: int = 1,
        dtype=None,
        fill: float = 0.0,
    ) -> np.ndarray:
        """Register a persistent per-worker state field on the population.

        Returns the backing struct-of-arrays field — ``(N,)`` for scalars,
        ``(N, width)`` for per-worker vectors (pass ``width=q`` for
        model-sized state such as FedDyn's drift vectors).  The array lives
        in the :class:`~repro.core.population.WorkerStateTable`, so it is
        O(1)-addressable at population scale, survives worker
        dropout/rejoin untouched, and round-trips through
        :meth:`state_dict`.  ``dtype`` defaults to the model dtype.
        """
        if dtype is None:
            dtype = self.global_vector.dtype
        return self.worker_state.register_field(
            name, width=width, dtype=dtype, fill=fill
        )

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the trainer's persistent state.

        Carries the mechanism name, the current global model vector, and
        every registered per-worker state field — enough to resume a
        mechanism mid-run (pair with the :class:`TrainingHistory` for the
        metric trace).  Restore with :meth:`load_state_dict`.
        """
        return {
            "mechanism": self.name,
            "global_vector": self.global_vector.tolist(),
            "worker_fields": {
                name: arr.tolist()
                for name, arr in self.worker_state.state_dict().items()
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore :meth:`state_dict` output into this trainer.

        The snapshot must come from the same mechanism (field registration
        happens at construction, so shapes line up exactly); the global
        vector must match the model dimension.
        """
        if state.get("mechanism") != self.name:
            raise ValueError(
                f"state is for mechanism {state.get('mechanism')!r}, "
                f"this trainer is {self.name!r}"
            )
        vector = np.asarray(
            state["global_vector"], dtype=self.global_vector.dtype
        )
        if vector.shape != self.global_vector.shape:
            raise ValueError(
                f"global vector shape mismatch: {vector.shape} vs "
                f"{self.global_vector.shape}"
            )
        np.copyto(self.global_vector, vector)
        fields = state.get("worker_fields") or {}
        self.worker_state.load_state_dict(
            {name: np.asarray(value) for name, value in fields.items()}
        )

    # ------------------------------------------------------------------
    # Synchronous-round fault polling (FedAvg-family mechanisms)
    # ------------------------------------------------------------------
    def sync_round_participants(
        self, round_index: int
    ) -> Tuple[List[int], float]:
        """Available workers and their weight scale for one synchronous round.

        Without a client-state model (or with ``always-on``) this is every
        worker with ``weight_scale == 1.0`` — the exact legacy fast path.
        With a fault model, workers unavailable at dispatch are counted
        (history + state-table counters) and, when
        ``fault.renormalize_survivors`` is set, the participants' weights
        are scaled by ``Σα_all / Σα_participants`` so the round still moves
        the full population's data mass.  An all-absent round returns
        ``([], 1.0)``; callers skip the aggregation.
        """
        cs = self.exp.clientstate
        if cs is None or cs.is_always_on:
            return list(range(self.exp.num_workers)), 1.0
        all_ids = np.arange(self.exp.num_workers)
        mask = np.asarray(
            cs.availability_mask(all_ids, round_index, 0), dtype=bool
        )
        absent = all_ids[~mask]
        if absent.size:
            self.history.workers_unavailable += int(absent.size)
            self.worker_state.record_unavailable(absent)
        participants = all_ids[mask]
        self.worker_state.record_dispatch(participants)
        weight_scale = 1.0
        if (
            self.exp.fault.renormalize_survivors
            and 0 < participants.size < all_ids.size
        ):
            weight_scale = float(self.alphas.sum()) / float(
                self.alphas[participants].sum()
            )
        return [int(w) for w in participants], weight_scale

    # ------------------------------------------------------------------
    # Timing helpers
    # ------------------------------------------------------------------
    @property
    def latency_dimension(self) -> int:
        """Model dimension used in the latency model (paper-scale override)."""
        if self.exp.latency_model_dimension is not None:
            return self.exp.latency_model_dimension
        return self.model.dimension

    def aircomp_upload_latency(self) -> float:
        """``L_u`` for the current model dimension (Eq. 33)."""
        cfg = self.exp.config.aircomp
        return aircomp_latency(
            self.latency_dimension, cfg.num_subchannels, cfg.symbol_duration_s
        )

    def oma_upload_latency(self, member_ids: Sequence[int], round_index: int) -> float:
        """TDMA upload time for the given workers (grows with their number)."""
        gains = self.exp.channel.gains(round_index)[list(member_ids)]
        return tdma_round_time(self.latency_dimension, gains, self.exp.oma)

    # ------------------------------------------------------------------
    def run(
        self, max_rounds: int = 100, max_time: Optional[float] = None
    ) -> TrainingHistory:
        """Run the mechanism; implemented by subclasses."""
        raise NotImplementedError
