"""Training history: the metric traces behind every figure in the paper.

Figures 3-6 plot loss and accuracy against (simulated) wall-clock time;
Fig. 8 reports time-to-accuracy; Fig. 9 energy-to-accuracy; Fig. 10 average
single-round time and total training time.  :class:`TrainingHistory` stores
one record per global update and provides the derived queries the benchmark
harness needs.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Snapshot taken after one global update (one aggregation)."""

    round_index: int
    time: float                     # simulated wall-clock time of the update
    loss: float                     # global test loss
    accuracy: float                 # global test accuracy
    staleness: int = 0              # τ_t of the aggregating group
    group_id: int = -1              # which group aggregated (-1 for sync)
    num_participants: int = 0       # workers in this aggregation
    round_energy_j: float = 0.0     # transmit energy spent in this round
    cumulative_energy_j: float = 0.0
    sigma: float = float("nan")     # power scaling factor used
    eta: float = float("nan")       # denoising factor used
    pc_cache_hits: int = 0          # cumulative power-control cache hits


@dataclass
class TrainingHistory:
    """Ordered sequence of :class:`RoundRecord` with derived queries.

    ``pipeline_hits`` / ``pipeline_recomputes`` count the pipelined event
    loop's speculation outcomes (``config.parallelism.pipeline``): a *hit*
    is a group round whose local training was already finished by the pool
    when its aggregation event was popped; a *recompute* is a speculative
    result invalidated by an interleaving commit and recomputed in event
    order.  They are execution statistics, not simulated quantities — the
    ``records`` of a pipelined run are bit-identical to the serial run's
    (float64), while these counters naturally differ.

    The fault counters summarize the device-realism layer
    (``experiment.clientstate`` + ``experiment.fault``), and *are*
    simulated quantities — two runs of the same scenario produce identical
    values: ``workers_unavailable`` counts members absent at a group
    dispatch, ``workers_dropped`` members lost mid-round,
    ``partial_updates`` survivor updates scaled by a completion fraction
    < 1, ``quorum_retries`` / ``quorum_skips`` below-quorum rounds that
    were retried with backoff / abandoned, and ``groups_parked`` groups
    removed from the event loop after too many consecutive failures.  All
    stay 0 without a fault model.
    """

    #: The fault counters, in serialization order.
    FAULT_COUNTERS = (
        "workers_unavailable",
        "workers_dropped",
        "partial_updates",
        "quorum_retries",
        "quorum_skips",
        "groups_parked",
    )

    mechanism: str
    records: List[RoundRecord] = field(default_factory=list)
    pipeline_hits: int = 0
    pipeline_recomputes: int = 0
    workers_unavailable: int = 0
    workers_dropped: int = 0
    partial_updates: int = 0
    quorum_retries: int = 0
    quorum_skips: int = 0
    groups_parked: int = 0

    # ------------------------------------------------------------------
    def append(self, record: RoundRecord) -> None:
        if self.records and record.time + 1e-12 < self.records[-1].time:
            raise ValueError("records must be appended in non-decreasing time order")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Column accessors
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        return np.array([r.time for r in self.records])

    def losses(self) -> np.ndarray:
        return np.array([r.loss for r in self.records])

    def accuracies(self) -> np.ndarray:
        return np.array([r.accuracy for r in self.records])

    def stalenesses(self) -> np.ndarray:
        return np.array([r.staleness for r in self.records])

    def energies(self) -> np.ndarray:
        return np.array([r.cumulative_energy_j for r in self.records])

    # ------------------------------------------------------------------
    # Derived queries used by the benchmarks
    # ------------------------------------------------------------------
    @property
    def final_accuracy(self) -> float:
        return self.records[-1].accuracy if self.records else 0.0

    @property
    def final_loss(self) -> float:
        return self.records[-1].loss if self.records else float("inf")

    @property
    def total_time(self) -> float:
        return self.records[-1].time if self.records else 0.0

    @property
    def total_rounds(self) -> int:
        return self.records[-1].round_index if self.records else 0

    @property
    def total_energy(self) -> float:
        return self.records[-1].cumulative_energy_j if self.records else 0.0

    def best_accuracy(self) -> float:
        accs = self.accuracies()
        return float(accs.max()) if accs.size else 0.0

    def average_round_time(self) -> float:
        """Mean simulated duration of one global update.

        Uses the round index of the last record (the number of global
        updates performed), not the number of *recorded* evaluations, so the
        value is independent of ``eval_every``.
        """
        if not self.records or self.records[-1].round_index == 0:
            return 0.0
        return float(self.records[-1].time / self.records[-1].round_index)

    def time_to_accuracy(self, target: float) -> Optional[float]:
        """Earliest simulated time at which accuracy first reaches ``target``.

        Returns ``None`` if the target is never reached.  Uses the raw (not
        smoothed) accuracy trace, matching how the paper reports e.g.
        "Air-FedGA attains a stable 80% accuracy in 1077 s".
        """
        if not 0.0 < target <= 1.0:
            raise ValueError("target accuracy must be in (0, 1]")
        for r in self.records:
            if r.accuracy >= target:
                return r.time
        return None

    def energy_to_accuracy(self, target: float) -> Optional[float]:
        """Cumulative transmit energy spent when accuracy first reaches ``target``."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target accuracy must be in (0, 1]")
        for r in self.records:
            if r.accuracy >= target:
                return r.cumulative_energy_j
        return None

    def rounds_to_accuracy(self, target: float) -> Optional[int]:
        """Number of global updates needed to first reach ``target`` accuracy."""
        if not 0.0 < target <= 1.0:
            raise ValueError("target accuracy must be in (0, 1]")
        for r in self.records:
            if r.accuracy >= target:
                return r.round_index
        return None

    def max_staleness(self) -> int:
        st = self.stalenesses()
        return int(st.max()) if st.size else 0

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Compact scalar summary for report tables."""
        return {
            "mechanism": self.mechanism,
            "rounds": float(self.total_rounds),
            "total_time_s": float(self.total_time),
            "avg_round_time_s": float(self.average_round_time()),
            "final_loss": float(self.final_loss),
            "final_accuracy": float(self.final_accuracy),
            "best_accuracy": float(self.best_accuracy()),
            "total_energy_j": float(self.total_energy),
            "max_staleness": float(self.max_staleness()),
        }

    def fault_counters(self) -> Dict[str, int]:
        """The device-fault counters as a dict (all zero without faults)."""
        return {name: int(getattr(self, name)) for name in self.FAULT_COUNTERS}

    def downsample(self, max_points: int = 200) -> "TrainingHistory":
        """Return a copy keeping at most ``max_points`` evenly spaced records."""
        if max_points < 1:
            raise ValueError("max_points must be >= 1")
        counters = dict(
            pipeline_hits=self.pipeline_hits,
            pipeline_recomputes=self.pipeline_recomputes,
            **self.fault_counters(),
        )
        if len(self.records) <= max_points:
            return TrainingHistory(self.mechanism, list(self.records), **counters)
        idx = np.linspace(0, len(self.records) - 1, max_points).astype(int)
        return TrainingHistory(
            self.mechanism, [self.records[i] for i in idx], **counters
        )

    # ------------------------------------------------------------------
    # Serialization (used by the CLI reproduction driver)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation of the full history.

        ``pipeline_hits`` / ``pipeline_recomputes`` are included as
        top-level execution statistics; compare ``records`` (not the whole
        dict) when asserting serial-vs-pipelined determinism.  The fault
        counters travel under the ``"faults"`` key (omitted from older
        files, which deserialize with all counters zero).
        """
        return {
            "mechanism": self.mechanism,
            "records": [asdict(r) for r in self.records],
            "summary": self.summary(),
            "pipeline_hits": self.pipeline_hits,
            "pipeline_recomputes": self.pipeline_recomputes,
            "faults": self.fault_counters(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`."""
        if "mechanism" not in data or "records" not in data:
            raise ValueError("history dict must contain 'mechanism' and 'records'")
        faults = data.get("faults") or {}
        if not isinstance(faults, dict):
            raise ValueError("'faults' must be a mapping of counter names")
        unknown = sorted(set(faults) - set(cls.FAULT_COUNTERS))
        if unknown:
            raise ValueError(f"unknown fault counters {unknown}")
        history = cls(
            mechanism=str(data["mechanism"]),
            pipeline_hits=int(data.get("pipeline_hits", 0)),
            pipeline_recomputes=int(data.get("pipeline_recomputes", 0)),
            **{name: int(value) for name, value in faults.items()},
        )
        for raw in data["records"]:
            history.append(RoundRecord(**raw))
        return history

    def save_json(self, path: str | Path) -> Path:
        """Write the history to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def load_json(cls, path: str | Path) -> "TrainingHistory":
        """Load a history previously written by :meth:`save_json`."""
        data = json.loads(Path(path).read_text())
        return cls.from_dict(data)

    def save_csv(self, path: str | Path) -> Path:
        """Write one CSV row per recorded round (for external plotting)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fieldnames = [
            "round_index", "time", "loss", "accuracy", "staleness", "group_id",
            "num_participants", "round_energy_j", "cumulative_energy_j",
            "sigma", "eta", "pc_cache_hits",
        ]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for record in self.records:
                writer.writerow({k: getattr(record, k) for k in fieldnames})
        return path
