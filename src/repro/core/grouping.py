"""Worker grouping strategies.

The central algorithm is the paper's greedy worker-grouping algorithm
(Algorithm 3), which builds the grouping one worker at a time so as to
minimize the estimated total training time

    L(x) = L · (1 + τ̂_max) · log_B A                          (P4, Eq. 48)

subject to the intra-group time-similarity constraint

    L_j(x) − L_u − l_i ≤ ξ · Δl   for every v_i ∈ V_j.        (Eq. 36d)

Two alternative strategies are provided for the baselines and ablations:

* :func:`tier_grouping` — TiFL-style tiers formed purely by local-training
  time quantiles (ignores data distribution),
* :func:`random_grouping` — uniformly random assignment into a fixed number
  of groups, and
* :func:`contiguous_grouping` — index-contiguous blocks as int64 arrays;
  O(N) with no per-worker Python objects, the strategy used by the XL
  (10k–1M worker) bench tiers where greedy's O(N²) evaluations are
  unaffordable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..channel.aircomp import aircomp_latency
from .config import AirFedGAConfig
from .convergence import grouping_objective
from .timing import (
    average_round_time,
    estimated_max_staleness,
    participation_frequencies,
)

__all__ = [
    "GroupingProblem",
    "GroupingResult",
    "greedy_grouping",
    "tier_grouping",
    "random_grouping",
    "singleton_grouping",
    "contiguous_grouping",
]


@dataclass
class GroupingProblem:
    """Inputs to a grouping decision.

    Attributes
    ----------
    data_sizes:
        Per-worker data sizes ``d_i``.
    class_counts:
        Per-worker per-class counts ``d_i^k`` (shape workers x classes).
    local_times:
        Per-worker local-training times ``l_i`` (Section V-A, estimated from
        historical measurements; here from the latency table).
    model_dimension:
        Model dimension ``q`` used for the AirComp upload latency.
    config:
        Core configuration (grouping slack ξ, AirComp physical parameters,
        convergence constants).
    c_max:
        The power-control error term C plugged into the objective; the
        caller typically computes it once with
        :func:`repro.core.power_control.solve_power_control`.
    """

    data_sizes: np.ndarray
    class_counts: np.ndarray
    local_times: np.ndarray
    model_dimension: int
    config: AirFedGAConfig = field(default_factory=AirFedGAConfig)
    c_max: float = 0.0

    def __post_init__(self) -> None:
        self.data_sizes = np.asarray(self.data_sizes, dtype=np.float64)
        self.class_counts = np.asarray(self.class_counts, dtype=np.float64)
        self.local_times = np.asarray(self.local_times, dtype=np.float64)
        n = self.data_sizes.shape[0]
        if n == 0:
            raise ValueError("at least one worker required")
        if self.class_counts.shape[0] != n:
            raise ValueError("class_counts must have one row per worker")
        if self.local_times.shape[0] != n:
            raise ValueError("local_times must have one entry per worker")
        if np.any(self.data_sizes < 0) or np.any(self.class_counts < 0):
            raise ValueError("data sizes and class counts must be non-negative")
        if np.any(self.local_times <= 0):
            raise ValueError("local training times must be positive")
        if self.model_dimension <= 0:
            raise ValueError("model_dimension must be positive")
        if self.c_max < 0:
            raise ValueError("c_max must be non-negative")

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return int(self.data_sizes.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.class_counts.shape[1])

    def global_distribution(self) -> np.ndarray:
        """λ_k over all workers (uniform if the dataset were empty)."""
        totals = self.class_counts.sum(axis=0)
        s = totals.sum()
        if s <= 0:
            return np.full(self.num_classes, 1.0 / self.num_classes)
        return totals / s

    def time_spread(self) -> float:
        """Δl = max l_i − min l_i."""
        return float(self.local_times.max() - self.local_times.min())


@dataclass
class GroupingResult:
    """A concrete grouping plus the quantities needed downstream.

    ``groups`` entries are Python lists for the legacy strategies and
    int64 arrays for :func:`contiguous_grouping` (both index cleanly into
    per-worker arrays; the array form avoids per-worker Python objects at
    XL scale).
    """

    groups: List[Sequence[int]]
    objective: float
    group_times: np.ndarray
    frequencies: np.ndarray
    betas: np.ndarray
    lambdas: np.ndarray
    upload_latency: float
    tau_max_estimate: float
    strategy: str = "greedy"

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, worker_id: int) -> int:
        for g, members in enumerate(self.groups):
            if worker_id in members:
                return g
        raise KeyError(f"worker {worker_id} is not assigned to any group")

    def membership(self, num_workers: int) -> np.ndarray:
        """Array mapping worker id -> group index."""
        out = np.full(num_workers, -1, dtype=np.int64)
        for g, members in enumerate(self.groups):
            for w in members:
                out[w] = g
        if np.any(out < 0):
            missing = np.flatnonzero(out < 0).tolist()
            raise ValueError(f"workers not assigned to any group: {missing}")
        return out


# ----------------------------------------------------------------------
# Shared evaluation of a candidate grouping
# ----------------------------------------------------------------------
def _evaluate_grouping(
    problem: GroupingProblem, groups: Sequence[Sequence[int]], strategy: str
) -> GroupingResult:
    """Score one candidate grouping.

    Per-group quantities are computed with fancy-indexed NumPy reductions
    over int64 member arrays — no per-member Python loops.  The float64
    operation sequence matches the original ``GroupTiming``-based
    implementation exactly (same ``max``/``sum`` reductions over the same
    values), so objectives and greedy decisions are bit-identical.
    """
    cfg = problem.config
    member_arrays = [
        np.asarray(g, dtype=np.int64) for g in groups if len(g) > 0
    ]
    if not member_arrays:
        raise ValueError("grouping has no non-empty groups")

    # L_u (Eq. 33) is membership-independent; L_j = max_i l_i + L_u (Eq. 34).
    upload = aircomp_latency(
        problem.model_dimension,
        cfg.aircomp.num_subchannels,
        cfg.aircomp.symbol_duration_s,
    )
    group_times = np.array(
        [float(problem.local_times[m].max() + upload) for m in member_arrays]
    )

    total_data = float(problem.data_sizes.sum())
    betas = np.array(
        [problem.data_sizes[m].sum() / total_data for m in member_arrays]
    )
    global_dist = problem.global_distribution()
    lambdas = np.empty(len(member_arrays))
    for g, m in enumerate(member_arrays):
        counts = problem.class_counts[m].sum(axis=0)
        size = counts.sum()
        dist = counts / size if size > 0 else np.full_like(global_dist, 1.0 / problem.num_classes)
        lambdas[g] = np.abs(dist - global_dist).sum()

    psi = participation_frequencies(group_times)
    tau = max(0.0, estimated_max_staleness(group_times) - 1.0)
    objective = grouping_objective(
        cfg.convergence,
        round_time=average_round_time(group_times),
        tau_max=tau,
        psi=psi,
        beta=betas,
        lambdas=lambdas,
        c_max=problem.c_max,
    )
    # Preserve the caller's group representation: lists stay (copied)
    # lists; int64 arrays pass through without a per-member conversion.
    group_out: List[Sequence[int]] = [
        g if isinstance(g, np.ndarray) else list(g)
        for g in groups
        if len(g) > 0
    ]
    return GroupingResult(
        groups=group_out,
        objective=float(objective),
        group_times=group_times,
        frequencies=psi,
        betas=betas,
        lambdas=lambdas,
        upload_latency=upload,
        tau_max_estimate=tau,
        strategy=strategy,
    )


def _constraint_satisfied(
    problem: GroupingProblem, members: Sequence[int], upload_latency: float
) -> bool:
    """Check Eq. (36d) for one group: every member's wait is within ξ·Δl."""
    times = problem.local_times[list(members)]
    group_time = float(times.max()) + upload_latency
    slack = problem.config.grouping.xi * problem.time_spread()
    # L_j − L_u − l_i ≤ ξ Δl  for all members (the slowest member trivially
    # satisfies it with wait 0).
    return bool(np.all(group_time - upload_latency - times <= slack + 1e-12))


# ----------------------------------------------------------------------
# Algorithm 3: greedy grouping
# ----------------------------------------------------------------------
def greedy_grouping(problem: GroupingProblem) -> GroupingResult:
    """The paper's greedy worker-grouping algorithm (Algorithm 3).

    Workers are visited in descending order of data size.  Each worker is
    tentatively placed into every existing group and into a fresh singleton
    group; the placement with the smallest objective among those satisfying
    the time-similarity constraint (36d) is kept.  A singleton group always
    satisfies the constraint, so the algorithm always terminates with a
    complete assignment.  Worst-case complexity is O(N²) group evaluations.

    Ties in data size are broken by a seeded random permutation rather than
    by worker index: under the paper's label-skew partition consecutive
    worker indices hold the same class, and visiting them in index order
    would force the greedy to fill early groups with a single class before
    any other class has been seen.
    """
    rng = np.random.default_rng(problem.config.grouping.tie_break_seed)
    jitter = rng.permutation(problem.num_workers)
    order = np.lexsort((jitter, -problem.data_sizes))
    if not problem.config.grouping.sort_descending_by_data:
        order = np.arange(problem.num_workers)

    groups: List[List[int]] = []
    # Upload latency is the same for every grouping (Eq. 33 does not depend
    # on group membership), so compute it once for the constraint check.
    upload_latency = aircomp_latency(
        problem.model_dimension,
        problem.config.aircomp.num_subchannels,
        problem.config.aircomp.symbol_duration_s,
    )

    for worker in order:
        worker = int(worker)
        best_objective = float("inf")
        best_index: Optional[int] = None
        # Candidate placements: every existing group plus a new singleton.
        candidates = list(range(len(groups))) + [len(groups)]
        for j in candidates:
            if j < len(groups):
                trial_members = groups[j] + [worker]
            else:
                trial_members = [worker]
            if not _constraint_satisfied(problem, trial_members, upload_latency):
                continue
            trial_groups = [list(g) for g in groups]
            if j < len(groups):
                trial_groups[j] = trial_members
            else:
                trial_groups.append(trial_members)
            result = _evaluate_grouping(problem, trial_groups, "greedy")
            if result.objective < best_objective - 1e-15:
                best_objective = result.objective
                best_index = j
        if best_index is None:
            # All placements infeasible in the objective sense (e.g. every
            # candidate returned inf); fall back to a fresh singleton group,
            # which is always constraint-feasible.
            best_index = len(groups)
        if best_index == len(groups):
            groups.append([worker])
        else:
            groups[best_index].append(worker)

    groups = _refine_grouping(problem, groups, upload_latency)
    return _evaluate_grouping(problem, groups, "greedy")


def _refine_grouping(
    problem: GroupingProblem,
    groups: List[List[int]],
    upload_latency: float,
) -> List[List[int]]:
    """Local-search refinement of the greedy assignment.

    The single greedy pass fixes each worker's group the moment it is
    visited, before most of the population has been seen; under strong label
    skew that leaves easy objective improvements on the table (e.g. two
    same-class workers stuck in the same group while another group of the
    same speed band misses that class entirely).  This pass repeatedly tries
    to *relocate* one worker to another constraint-feasible group and keeps
    any move that strictly decreases the same P4 objective the greedy pass
    minimizes.  The number of passes is bounded by
    ``GroupingConfig.refine_passes`` (0 disables refinement and recovers the
    paper's one-pass algorithm exactly).
    """
    passes = problem.config.grouping.refine_passes
    if passes <= 0 or len(groups) < 2:
        return groups
    current = [list(g) for g in groups]
    best = _evaluate_grouping(problem, current, "greedy").objective
    for _ in range(passes):
        improved = False
        for worker in range(problem.num_workers):
            source = next(
                (j for j, members in enumerate(current) if worker in members), None
            )
            if source is None or len(current[source]) <= 1:
                continue
            for target in range(len(current)):
                if target == source:
                    continue
                trial_members = current[target] + [worker]
                if not _constraint_satisfied(problem, trial_members, upload_latency):
                    continue
                trial = [list(g) for g in current]
                trial[source] = [w for w in trial[source] if w != worker]
                trial[target] = trial_members
                trial_groups = [g for g in trial if g]
                objective = _evaluate_grouping(problem, trial_groups, "greedy").objective
                if objective < best - 1e-12:
                    current = trial_groups
                    best = objective
                    improved = True
                    break
        if not improved:
            break
    return current


# ----------------------------------------------------------------------
# Baseline strategies
# ----------------------------------------------------------------------
def tier_grouping(problem: GroupingProblem, num_groups: int) -> GroupingResult:
    """TiFL-style tiers: sort workers by local-training time, split in quantiles.

    This only looks at timing, not at the label distribution, which is why
    its average EMD stays high in Table III.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    num_groups = min(num_groups, problem.num_workers)
    order = np.argsort(problem.local_times, kind="stable")
    chunks = np.array_split(order, num_groups)
    groups = [chunk.astype(int).tolist() for chunk in chunks if chunk.size > 0]
    return _evaluate_grouping(problem, groups, "tier")


def random_grouping(
    problem: GroupingProblem, num_groups: int, seed: int = 0
) -> GroupingResult:
    """Uniformly random assignment into ``num_groups`` groups (ablation)."""
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    num_groups = min(num_groups, problem.num_workers)
    rng = np.random.default_rng(seed)
    order = rng.permutation(problem.num_workers)
    chunks = np.array_split(order, num_groups)
    groups = [chunk.astype(int).tolist() for chunk in chunks if chunk.size > 0]
    return _evaluate_grouping(problem, groups, "random")


def singleton_grouping(problem: GroupingProblem) -> GroupingResult:
    """Every worker forms its own group (the 'Original' column of Table III).

    This is also the fully-asynchronous limit ξ → 0 discussed around Fig. 8.
    """
    groups = [[i] for i in range(problem.num_workers)]
    return _evaluate_grouping(problem, groups, "singleton")


def contiguous_grouping(problem: GroupingProblem, num_groups: int) -> GroupingResult:
    """Index-contiguous blocks of workers, returned as int64 arrays.

    The only strategy whose cost is O(N) in both time and Python objects:
    no per-worker lists, no candidate evaluations.  Combined with the
    replicated shared-dataset store this is what the ``grouped_round_xl``
    bench tiers use at 10k–1M workers; at those scales greedy's O(N²)
    objective evaluations are unaffordable and tier/random still build
    O(N) Python lists.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be >= 1")
    num_groups = min(num_groups, problem.num_workers)
    chunks = np.array_split(
        np.arange(problem.num_workers, dtype=np.int64), num_groups
    )
    groups: List[Sequence[int]] = [c for c in chunks if c.size > 0]
    return _evaluate_grouping(problem, groups, "contiguous")
