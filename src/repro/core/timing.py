"""Training-time model of Section V-A (Eqs. 33-35 and 39).

These closed-form estimates drive problem P2/P4 and the greedy grouping
algorithm:

* ``L_u = (q / R) · L_s`` — model-upload latency of one over-the-air
  aggregation (Eq. 33), independent of how many workers transmit.
* ``L_j = max_{v_i ∈ V_j} l_i + L_u`` — completion time of group ``j``
  (Eq. 34): the group waits for its slowest member, then uploads.
* ``L ≈ 1 / Σ_j (1 / L_j)`` — average duration of one *global* round when
  groups participate asynchronously (Eq. 35): the global-update rate is the
  sum of the per-group rates.
* ``ψ_j = (1/L_j) / Σ_{j'} (1/L_{j'})`` — relative participation frequency
  of group ``j`` (used in Theorem 1 and the objective of P2).
* ``τ̂_max = L_max · Σ_j (1/L_j)`` — estimate of the maximum staleness
  (Eq. 39): while the slowest group completes one round, the whole system
  performs roughly this many global updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..channel.aircomp import aircomp_latency

__all__ = [
    "GroupTiming",
    "group_completion_time",
    "average_round_time",
    "participation_frequencies",
    "estimated_max_staleness",
    "expected_dispatch_attempts",
    "faulty_group_completion_time",
]


def group_completion_time(
    local_times: Sequence[float], upload_latency: float
) -> float:
    """``L_j = max_i l_i + L_u`` for one group (Eq. 34)."""
    times = np.asarray(local_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("group must contain at least one worker")
    if np.any(times <= 0):
        raise ValueError("local training times must be positive")
    if upload_latency < 0:
        raise ValueError("upload latency must be non-negative")
    return float(times.max() + upload_latency)


def average_round_time(group_times: Sequence[float]) -> float:
    """``L ≈ 1 / Σ_j 1/L_j`` (Eq. 35): harmonic combination of group rates."""
    times = np.asarray(group_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("at least one group required")
    if np.any(times <= 0):
        raise ValueError("group completion times must be positive")
    return float(1.0 / np.sum(1.0 / times))


def participation_frequencies(group_times: Sequence[float]) -> np.ndarray:
    """``ψ_j ∝ 1/L_j`` normalized to sum to one."""
    times = np.asarray(group_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("at least one group required")
    if np.any(times <= 0):
        raise ValueError("group completion times must be positive")
    rates = 1.0 / times
    return rates / rates.sum()


def estimated_max_staleness(group_times: Sequence[float]) -> float:
    """``τ̂_max = L_max · Σ_j 1/L_j`` (Eq. 39).

    With a single group this evaluates to 1 global update per group round,
    i.e. staleness ≈ 1·L_max/L_max = 1; the paper's convention has
    ``τ_max = 0`` for M = 1, so callers using the Theorem-1 exponent should
    subtract the self-update (see :func:`GroupTiming.tau_max_estimate`).
    """
    times = np.asarray(group_times, dtype=np.float64)
    if times.size == 0:
        raise ValueError("at least one group required")
    if np.any(times <= 0):
        raise ValueError("group completion times must be positive")
    return float(times.max() * np.sum(1.0 / times))


def _quorum_probability(
    group_size: int, availability: float, quorum_fraction: float
) -> float:
    """``P(Binomial(n, p) >= ceil(q·n))`` — one dispatch meets quorum."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if not 0.0 <= availability <= 1.0:
        raise ValueError("availability must be in [0, 1]")
    if not 0.0 < quorum_fraction <= 1.0:
        raise ValueError("quorum_fraction must be in (0, 1]")
    quorum = max(1, int(np.ceil(quorum_fraction * group_size)))
    if availability >= 1.0:
        return 1.0
    if availability <= 0.0:
        return 0.0
    k = np.arange(quorum, group_size + 1, dtype=np.float64)
    # Binomial tail via log-pmf for numerical robustness at large groups.
    from math import lgamma

    log_choose = np.array(
        [
            lgamma(group_size + 1) - lgamma(int(i) + 1) - lgamma(group_size - int(i) + 1)
            for i in k
        ]
    )
    terms = (
        log_choose
        + k * np.log(availability)
        + (group_size - k) * np.log1p(-availability)
    )
    return float(np.clip(np.exp(terms).sum(), 0.0, 1.0))


def expected_dispatch_attempts(
    group_size: int, availability: float, quorum_fraction: float = 0.5
) -> float:
    """Expected dispatches until a group meets quorum under Bernoulli faults.

    With i.i.d. per-dispatch availability ``p`` (the ``"bernoulli"``
    client-state model), each dispatch independently meets the
    ``ceil(q·n)`` quorum with probability ``P_q``; attempts are geometric,
    so the expectation is ``1 / P_q``.  Returns ``inf`` when quorum can
    never be met (``p = 0`` with a non-trivial quorum).
    """
    p_quorum = _quorum_probability(group_size, availability, quorum_fraction)
    if p_quorum <= 0.0:
        return float("inf")
    return 1.0 / p_quorum


def faulty_group_completion_time(
    local_times: Sequence[float],
    upload_latency: float,
    availability: float = 1.0,
    quorum_fraction: float = 0.5,
    retry_backoff: float = 1.0,
) -> float:
    """Expected ``L_j`` (Eq. 34) inflated by availability-induced retries.

    Each failed quorum check delays the group by ``retry_backoff``
    simulated seconds before its next dispatch, so the expected completion
    time becomes ``L_j + (E[attempts] − 1) · backoff``.  With
    ``availability = 1`` this reduces exactly to
    :func:`group_completion_time`.
    """
    if retry_backoff < 0:
        raise ValueError("retry_backoff must be non-negative")
    base = group_completion_time(local_times, upload_latency)
    attempts = expected_dispatch_attempts(
        len(list(local_times)), availability, quorum_fraction
    )
    if not np.isfinite(attempts):
        return float("inf")
    return float(base + (attempts - 1.0) * retry_backoff)


@dataclass
class GroupTiming:
    """Bundled timing quantities for a concrete grouping.

    Parameters
    ----------
    group_local_times:
        Per-group lists of member local-training times ``l_i``.
    model_dimension, num_subchannels, symbol_duration:
        Parameters of the AirComp upload latency (Eq. 33).
    """

    group_local_times: List[List[float]]
    model_dimension: int
    num_subchannels: int
    symbol_duration: float

    def __post_init__(self) -> None:
        if not self.group_local_times:
            raise ValueError("at least one group required")
        self._upload = aircomp_latency(
            self.model_dimension, self.num_subchannels, self.symbol_duration
        )
        self._group_times = np.array(
            [
                group_completion_time(times, self._upload)
                for times in self.group_local_times
            ]
        )

    @property
    def upload_latency(self) -> float:
        """``L_u`` (Eq. 33)."""
        return self._upload

    @property
    def group_times(self) -> np.ndarray:
        """``L_j`` for every group (Eq. 34)."""
        return self._group_times.copy()

    @property
    def round_time(self) -> float:
        """``L`` (Eq. 35)."""
        return average_round_time(self._group_times)

    @property
    def frequencies(self) -> np.ndarray:
        """``ψ_j`` participation frequencies."""
        return participation_frequencies(self._group_times)

    def tau_max_estimate(self) -> float:
        """Staleness estimate used in the P2 objective.

        Uses Eq. (39) minus the group's own update so that a single-group
        system has ``τ̂_max = 0`` as in Corollary 2.
        """
        raw = estimated_max_staleness(self._group_times)
        return max(0.0, raw - 1.0)
