"""Core contribution: the Air-FedGA mechanism and its optimization algorithms."""

from .config import (
    AirCompConfig,
    AirFedGAConfig,
    ConvergenceConfig,
    GroupingConfig,
    ParallelismConfig,
)
from .timing import (
    GroupTiming,
    average_round_time,
    estimated_max_staleness,
    group_completion_time,
    participation_frequencies,
)
from .convergence import (
    ConvergenceBound,
    grouping_objective,
    lemma1_bound_sequence,
    lemma1_decay,
    lemma1_residual,
    rounds_to_epsilon,
    theorem1_bound,
    theorem1_delta,
    theorem1_rho,
)
from .power_control import (
    PowerControlCache,
    PowerControlResult,
    feasible_sigma,
    optimal_eta,
    solve_power_control,
)
from .grouping import (
    GroupingProblem,
    GroupingResult,
    greedy_grouping,
    random_grouping,
    singleton_grouping,
    tier_grouping,
)
from .mechanism import AggregationEvent, GroupAsyncScheduler, GroupState

__all__ = [
    "AirCompConfig",
    "GroupingConfig",
    "ConvergenceConfig",
    "ParallelismConfig",
    "AirFedGAConfig",
    "GroupTiming",
    "group_completion_time",
    "average_round_time",
    "participation_frequencies",
    "estimated_max_staleness",
    "lemma1_decay",
    "lemma1_residual",
    "lemma1_bound_sequence",
    "theorem1_rho",
    "theorem1_delta",
    "theorem1_bound",
    "rounds_to_epsilon",
    "grouping_objective",
    "ConvergenceBound",
    "PowerControlCache",
    "PowerControlResult",
    "optimal_eta",
    "feasible_sigma",
    "solve_power_control",
    "GroupingProblem",
    "GroupingResult",
    "greedy_grouping",
    "tier_grouping",
    "random_grouping",
    "singleton_grouping",
    "GroupState",
    "AggregationEvent",
    "GroupAsyncScheduler",
]
