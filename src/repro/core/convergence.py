"""Convergence analysis of Air-FedGA (Lemma 1, Theorem 1, Corollaries 1-2).

The theoretical quantities are used in two ways:

1. As *predictions* — the unit and property tests verify the inequality
   structure (e.g. the Lemma-1 contraction, monotonicity of ρ in τ_max and
   of δ in the EMD values Λ_j).
2. As the *objective* of the optimization problems P2/P4 — the greedy
   grouping algorithm (Alg. 3) evaluates
   ``L(x) · (1 + τ̂_max) · log_B A`` to compare candidate groupings, and the
   power-control algorithm (Alg. 2) minimizes the per-round error term C_t.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .config import ConvergenceConfig

__all__ = [
    "lemma1_decay",
    "lemma1_residual",
    "lemma1_bound_sequence",
    "theorem1_rho",
    "theorem1_delta",
    "theorem1_bound",
    "rounds_to_epsilon",
    "grouping_objective",
    "ConvergenceBound",
]


# ----------------------------------------------------------------------
# Lemma 1
# ----------------------------------------------------------------------
def lemma1_decay(x: float, y: float, tau_max: int) -> float:
    """ρ = (x + y)^(1 / (1 + τ_max)) from Lemma 1."""
    if x < 0 or y < 0:
        raise ValueError("x and y must be non-negative")
    if x + y >= 1.0:
        raise ValueError("Lemma 1 requires x + y < 1")
    if tau_max < 0:
        raise ValueError("tau_max must be non-negative")
    return float((x + y) ** (1.0 / (1.0 + tau_max)))


def lemma1_residual(x: float, y: float, z: float) -> float:
    """δ = z / (1 − x − y) from Lemma 1."""
    if x < 0 or y < 0 or z < 0:
        raise ValueError("x, y, z must be non-negative")
    if x + y >= 1.0:
        raise ValueError("Lemma 1 requires x + y < 1")
    return float(z / (1.0 - x - y))


def lemma1_bound_sequence(
    q0: float, x: float, y: float, z: float, tau_max: int, steps: int
) -> np.ndarray:
    """The Lemma-1 upper-bound sequence ``ρ^t Q(0) + δ`` for t = 0..steps."""
    if q0 < 0:
        raise ValueError("Q(0) must be non-negative")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    rho = lemma1_decay(x, y, tau_max)
    delta = lemma1_residual(x, y, z)
    t = np.arange(steps + 1)
    return rho**t * q0 + delta


# ----------------------------------------------------------------------
# Theorem 1
# ----------------------------------------------------------------------
def _weighted_beta(psi: Sequence[float], beta: Sequence[float]) -> float:
    psi = np.asarray(psi, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    if psi.shape != beta.shape:
        raise ValueError("psi and beta must have the same length")
    if psi.size == 0:
        raise ValueError("at least one group required")
    if np.any(psi < 0) or np.any(beta < 0):
        raise ValueError("psi and beta must be non-negative")
    if not math.isclose(float(psi.sum()), 1.0, rel_tol=1e-6, abs_tol=1e-6):
        raise ValueError("participation frequencies psi must sum to 1")
    if np.any(beta > 1.0 + 1e-9):
        raise ValueError("group data proportions beta must be <= 1")
    return float(np.dot(psi, beta))


def theorem1_rho(
    config: ConvergenceConfig,
    psi: Sequence[float],
    beta: Sequence[float],
    tau_max: float,
) -> float:
    """Convergence factor ρ of Theorem 1.

    ``ρ = [1 − (2μγ − μ/L) Σ_j ψ_j β_j]^{1/(1+τ_max)}``.
    """
    if tau_max < 0:
        raise ValueError("tau_max must be non-negative")
    mu, gamma, L = (
        config.strong_convexity_mu,
        config.learning_rate_gamma,
        config.smoothness_L,
    )
    wb = _weighted_beta(psi, beta)
    base = 1.0 - (2.0 * mu * gamma - mu / L) * wb
    if not (0.0 < base < 1.0):
        raise ValueError(
            f"Theorem 1 requires the contraction base in (0,1); got {base} "
            "(check mu, gamma, L and the group proportions)"
        )
    return float(base ** (1.0 / (1.0 + tau_max)))


def theorem1_delta(
    config: ConvergenceConfig,
    psi: Sequence[float],
    beta: Sequence[float],
    lambdas: Sequence[float],
    c_max: float,
) -> float:
    """Residual error δ of Theorem 1.

    ``δ = Σ_j ψ_j β_j (γ L Λ_j² G² + L² C_max) / [(2μγL − μ) Σ_j ψ_j β_j]``.
    """
    psi = np.asarray(psi, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    lambdas = np.asarray(lambdas, dtype=np.float64)
    if not (psi.shape == beta.shape == lambdas.shape):
        raise ValueError("psi, beta and lambdas must have the same length")
    if np.any(lambdas < 0) or np.any(lambdas > 2.0 + 1e-9):
        raise ValueError("EMD values must lie in [0, 2]")
    if c_max < 0:
        raise ValueError("c_max must be non-negative")
    mu, gamma, L, G = (
        config.strong_convexity_mu,
        config.learning_rate_gamma,
        config.smoothness_L,
        config.gradient_bound_G,
    )
    wb = _weighted_beta(psi, beta)
    if wb <= 0:
        raise ValueError("sum of psi_j * beta_j must be positive")
    numerator = float(
        np.sum(psi * beta * (gamma * L * lambdas**2 * G**2 + L**2 * c_max))
    )
    denominator = (2.0 * mu * gamma * L - mu) * wb
    if denominator <= 0:
        raise ValueError(
            "Theorem 1 requires 2*mu*gamma*L - mu > 0, i.e. gamma > 1/(2L)"
        )
    return numerator / denominator


@dataclass
class ConvergenceBound:
    """The full Theorem-1 bound ``E[F(w_T)] − F(w*) ≤ ρ^T (F(w0) − F(w*)) + δ``."""

    rho: float
    delta: float
    initial_gap: float

    def evaluate(self, rounds: int) -> float:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return float(self.rho**rounds * self.initial_gap + self.delta)

    def rounds_to_reach(self, epsilon: float) -> float:
        """Smallest T with bound ≤ ε (``inf`` if δ ≥ ε)."""
        return rounds_to_epsilon(self.rho, self.delta, self.initial_gap, epsilon)


def theorem1_bound(
    config: ConvergenceConfig,
    psi: Sequence[float],
    beta: Sequence[float],
    lambdas: Sequence[float],
    tau_max: float,
    c_max: float,
) -> ConvergenceBound:
    """Construct the complete Theorem-1 bound for a grouping."""
    rho = theorem1_rho(config, psi, beta, tau_max)
    delta = theorem1_delta(config, psi, beta, lambdas, c_max)
    return ConvergenceBound(rho=rho, delta=delta, initial_gap=config.initial_gap)


def rounds_to_epsilon(
    rho: float, delta: float, initial_gap: float, epsilon: float
) -> float:
    """Number of rounds T required for ``ρ^T gap + δ ≤ ε`` (Eq. 37/38).

    Returns ``inf`` when the residual δ alone already exceeds ε (the bound
    can then never reach the target) and 0 when the initial gap is already
    within ε.
    """
    if not 0.0 < rho < 1.0:
        raise ValueError("rho must be in (0, 1)")
    if delta < 0 or initial_gap <= 0 or epsilon <= 0:
        raise ValueError("delta >= 0, initial_gap > 0 and epsilon > 0 required")
    if delta >= epsilon:
        return float("inf")
    a = (epsilon - delta) / initial_gap
    if a >= 1.0:
        return 0.0
    return float(math.log(a) / math.log(rho))


def grouping_objective(
    config: ConvergenceConfig,
    round_time: float,
    tau_max: float,
    psi: Sequence[float],
    beta: Sequence[float],
    lambdas: Sequence[float],
    c_max: float,
) -> float:
    """The P2/P4 objective ``L · (1 + τ̂_max) · log_B A``.

    ``A = (ε − δ) / (F(w0) − F(w*))`` and ``B`` is the un-exponentiated
    contraction base.

    Practical surrogate for the infeasible regime: under strong label skew
    the residual δ can exceed the target ε for *every* candidate grouping,
    which would make the theoretical round count infinite and leave the
    greedy search with no gradient to follow.  In that regime we clamp
    ``A`` to a small floor and multiply by a penalty growing with
    ``(δ − ε)/ε`` so that candidates are still ranked by round time,
    staleness *and* data-distribution skew — the same trade-off the exact
    objective expresses when it is finite.  The feasible branch is the
    paper's objective verbatim.
    """
    if round_time <= 0:
        raise ValueError("round_time must be positive")
    if tau_max < 0:
        raise ValueError("tau_max must be non-negative")
    mu, gamma, L = (
        config.strong_convexity_mu,
        config.learning_rate_gamma,
        config.smoothness_L,
    )
    wb = _weighted_beta(psi, beta)
    b = 1.0 - (2.0 * mu * gamma - mu / L) * wb
    if not (0.0 < b < 1.0):
        return float("inf")
    delta = theorem1_delta(config, psi, beta, lambdas, c_max)
    eps = config.target_epsilon
    a_floor = 1e-3
    if delta < eps:
        a = (eps - delta) / config.initial_gap
        if a >= 1.0:
            # Already converged according to the bound: any grouping is
            # equally good; fall back to minimizing round time alone.
            return round_time
        a = max(a, a_floor)
        penalty = 1.0
    else:
        a = a_floor
        penalty = 1.0 + (delta - eps) / eps
    rounds = math.log(a) / math.log(b)  # = log_B A > 0
    return float(round_time * (1.0 + tau_max) * rounds * penalty)
