"""Population-scale worker state: struct-of-arrays tables + lazy shard views.

The simulation historically materialized one Python object and one private
dataset copy per worker, which walls the bench at a few hundred workers.
This module is the deliberate accessor surface that replaces those
per-worker touchpoints so the core scales to millions of simulated
devices:

* :class:`WorkerStateTable` — one NumPy array per per-worker field (data
  sizes, aggregation weights, nominal latencies, staleness, availability
  counters, last channel gains).  No per-worker Python objects; the whole
  table for 1M workers is a few hundred megabytes at float64.
* :class:`SharedDatasetStore` — a single ``(x, y)`` sample store plus
  ``starts``/``stops`` offset arrays.  ``store.shard(w)`` returns a
  zero-copy :class:`ShardView` (``np.shares_memory`` with the store is
  ``True``); nothing is allocated per worker.
* :class:`Population` — the facade trainers talk to.  It owns the state
  table, builds the store lazily, and exposes the two materialization
  policies: ``"eager"`` reproduces the legacy per-worker-copy behavior
  bit-for-bit (every worker owns fancy-indexed copies, exactly what
  ``dataset.subset`` returned), while ``"lazy"`` hands out shard views
  backed by the shared store.
* :class:`GroupBatch` / :class:`StackPool` — stacked ``(G, q)`` tensors
  are materialized only for groups currently training and recycled on
  commit, so in-flight stacks — not ``num_workers`` — bound the working
  set.

Bit-identity contract: at legacy scale the eager path performs exactly the
same float64 operations as the old trainer init (``astype(np.float64)``,
the conditional ``np.maximum(sizes, 1e-9)`` floor, ``float(sizes.sum())``
normalization), so training histories are unchanged to the last bit.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a data<->core cycle
    from ..data.partition import Partition
    from ..data.synthetic import Dataset

__all__ = [
    "MATERIALIZATIONS",
    "validate_materialization",
    "ShardView",
    "WorkerStateTable",
    "SharedDatasetStore",
    "StackPool",
    "GroupBatch",
    "Population",
]

#: Valid values for the ``materialization`` knob (Scenario: ``data.materialization``).
MATERIALIZATIONS = ("eager", "lazy")


def validate_materialization(value: str) -> str:
    """Validate a materialization policy name, with did-you-mean hints."""
    if value in MATERIALIZATIONS:
        return value
    close = difflib.get_close_matches(str(value), MATERIALIZATIONS, n=1, cutoff=0.5)
    hint = f"; did you mean {close[0]!r}?" if close else ""
    raise ValueError(
        f"unknown materialization {value!r}; expected one of {list(MATERIALIZATIONS)}{hint}"
    )


class ShardView(NamedTuple):
    """One worker's training data as ``(x, y)``.

    In lazy mode both arrays are contiguous slice views into the shared
    store (zero-copy); in eager mode they are that worker's private
    copies.  The class is a 2-tuple, so legacy call sites that unpack
    ``x, y = worker_data[i]`` or index ``worker_data[i][0]`` keep working.
    """

    x: np.ndarray
    y: np.ndarray

    @property
    def num_samples(self) -> int:
        return int(self.x.shape[0])


@dataclass
class WorkerStateTable:
    """Struct-of-arrays per-worker simulation state.

    Parameters
    ----------
    raw_sizes:
        Integer per-worker sample counts ``d_i``.
    latencies:
        Nominal per-worker local-training times ``l_i`` (``NaN`` when no
        latency model is attached).

    Derived fields reproduce the legacy trainer init exactly: ``sizes`` is
    ``raw_sizes.astype(float64)`` floored at ``1e-9`` only when some entry
    is non-positive, ``total_size = float(sizes.sum())`` and
    ``alphas = sizes / total_size``.
    """

    raw_sizes: np.ndarray
    latencies: Optional[np.ndarray] = None
    sizes: np.ndarray = field(init=False, repr=False)
    alphas: np.ndarray = field(init=False, repr=False)
    total_size: float = field(init=False, default=0.0)
    gains: Optional[np.ndarray] = field(init=False, default=None, repr=False)
    gains_round: int = field(init=False, default=-1)
    staleness: np.ndarray = field(init=False, repr=False)
    dispatches: np.ndarray = field(init=False, repr=False)
    unavailable: np.ndarray = field(init=False, repr=False)
    dropped: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        raw = np.asarray(self.raw_sizes)
        if raw.ndim != 1 or raw.size == 0:
            raise ValueError("raw_sizes must be a non-empty 1-D array")
        self.raw_sizes = raw.astype(np.int64, copy=False)
        n = self.raw_sizes.size
        # Exact op sequence of the legacy BaseTrainer init (bit-identity).
        sizes = self.raw_sizes.astype(np.float64)
        if np.any(sizes <= 0):
            sizes = np.maximum(sizes, 1e-9)
        self.sizes = sizes
        self.total_size = float(sizes.sum())
        self.alphas = sizes / self.total_size
        if self.latencies is None:
            self.latencies = np.full(n, np.nan, dtype=np.float64)
        else:
            self.latencies = np.asarray(self.latencies, dtype=np.float64)
            if self.latencies.shape != (n,):
                raise ValueError(
                    f"latencies shape {self.latencies.shape} != ({n},)"
                )
        self.staleness = np.zeros(n, dtype=np.int64)
        self.dispatches = np.zeros(n, dtype=np.int64)
        self.unavailable = np.zeros(n, dtype=np.int64)
        self.dropped = np.zeros(n, dtype=np.int64)
        # Registered mechanism state (struct-of-arrays): name -> (N,) or
        # (N, width) array.  See register_field.
        self._fields: Dict[str, np.ndarray] = {}

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_partition(
        cls, partition: "Partition", latency=None
    ) -> "WorkerStateTable":
        """Build from a :class:`~repro.data.partition.Partition`.

        ``latency`` may be any object with a ``nominal`` array property
        (e.g. :class:`~repro.sim.latency.LatencyTable`).
        """
        nominal = getattr(latency, "nominal", None) if latency is not None else None
        return cls(raw_sizes=partition.data_sizes(), latencies=nominal)

    @classmethod
    def uniform(
        cls, num_workers: int, shard_size: int, latencies: Optional[np.ndarray] = None
    ) -> "WorkerStateTable":
        """Equal-sized shards — the replicated-store XL construction."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        raw = np.full(num_workers, shard_size, dtype=np.int64)
        return cls(raw_sizes=raw, latencies=latencies)

    # -- accessors ------------------------------------------------------

    @property
    def num_workers(self) -> int:
        return int(self.raw_sizes.size)

    def group_latency(self, member_ids: np.ndarray) -> float:
        """``max_i l_i`` over a member array (Eq. 34's local term)."""
        return float(self.latencies[member_ids].max())

    def alpha_mass(self, member_ids: np.ndarray) -> float:
        """Total aggregation weight of a member array."""
        return float(self.alphas[member_ids].sum())

    # -- registered mechanism fields ------------------------------------

    def register_field(
        self,
        name: str,
        width: int = 1,
        dtype=np.float64,
        fill: float = 0.0,
    ) -> np.ndarray:
        """Register (or fetch) a named per-worker state array.

        Mechanisms that carry persistent per-worker optimizer state (e.g.
        FedDyn's drift vectors) store it here as one struct-of-arrays
        field — ``(N,)`` for scalars, ``(N, width)`` for per-worker
        vectors — so the state is O(1)-addressable at population scale,
        survives worker dropout/rejoin untouched, and serializes through
        :meth:`state_dict`.  Registration is idempotent: re-registering
        with the same shape and dtype returns the existing array (values
        preserved); a mismatching spec raises :class:`ValueError`.
        """
        if width < 1:
            raise ValueError(f"field width must be >= 1, got {width}")
        dt = np.dtype(dtype)
        n = self.num_workers
        shape = (n,) if width == 1 else (n, int(width))
        existing = self._fields.get(name)
        if existing is not None:
            if existing.shape != shape or existing.dtype != dt:
                raise ValueError(
                    f"field {name!r} already registered with shape "
                    f"{existing.shape} dtype {existing.dtype}, requested "
                    f"shape {shape} dtype {dt}"
                )
            return existing
        arr = np.full(shape, fill, dtype=dt)
        self._fields[name] = arr
        return arr

    def field(self, name: str) -> np.ndarray:
        """The registered state array for ``name`` (KeyError if absent)."""
        try:
            return self._fields[name]
        except KeyError:
            known = sorted(self._fields)
            raise KeyError(
                f"no registered field {name!r}; registered fields: {known}"
            ) from None

    def has_field(self, name: str) -> bool:
        return name in self._fields

    def field_names(self) -> List[str]:
        return sorted(self._fields)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copies of every registered field (for checkpoint/serialization)."""
        return {name: arr.copy() for name, arr in self._fields.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore registered fields from :meth:`state_dict` output.

        Every key must name an already-registered field of matching shape
        (mechanisms register their fields at construction, so loading into
        a freshly built trainer of the same mechanism always succeeds).
        """
        for name, value in state.items():
            if name not in self._fields:
                known = sorted(self._fields)
                raise KeyError(
                    f"cannot load unregistered field {name!r}; "
                    f"registered fields: {known}"
                )
            target = self._fields[name]
            value = np.asarray(value, dtype=target.dtype)
            if value.shape != target.shape:
                raise ValueError(
                    f"field {name!r} shape mismatch: "
                    f"{value.shape} vs {target.shape}"
                )
            np.copyto(target, value)

    @property
    def nbytes(self) -> int:
        total = 0
        for arr in (
            self.raw_sizes,
            self.sizes,
            self.alphas,
            self.latencies,
            self.staleness,
            self.dispatches,
            self.unavailable,
            self.dropped,
        ):
            if arr is not None:
                total += arr.nbytes
        if self.gains is not None:
            total += self.gains.nbytes
        for arr in self._fields.values():
            total += arr.nbytes
        return total

    # -- event-loop recorders (all O(group size), vectorized writes) ----

    def record_gains(self, round_index: int, gains: np.ndarray) -> None:
        """Reference (not copy) the most recent full-population gain draw."""
        self.gains = gains
        self.gains_round = int(round_index)

    def record_dispatch(self, member_ids: np.ndarray) -> None:
        self.dispatches[member_ids] += 1

    def record_unavailable(self, member_ids: np.ndarray) -> None:
        if len(member_ids):
            self.unavailable[member_ids] += 1

    def record_dropped(self, member_ids: np.ndarray) -> None:
        if len(member_ids):
            self.dropped[member_ids] += 1

    def record_commit(self, member_ids: np.ndarray, staleness: int) -> None:
        self.staleness[member_ids] = int(staleness)

    def counters_summary(self) -> Dict[str, int]:
        return {
            "dispatches": int(self.dispatches.sum()),
            "unavailable": int(self.unavailable.sum()),
            "dropped": int(self.dropped.sum()),
            "max_staleness": int(self.staleness.max()),
        }


class _ShardSequence(Sequence):
    """Lazy ``Sequence[ShardView]`` over a store — O(1) memory, no copies."""

    __slots__ = ("_store",)

    def __init__(self, store: "SharedDatasetStore") -> None:
        self._store = store

    def __len__(self) -> int:
        return self._store.num_workers

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        i = int(index)
        if i < 0:
            i += len(self)
        return self._store.shard(i)

    def __iter__(self) -> Iterator[ShardView]:
        for i in range(len(self)):
            yield self._store.shard(i)


@dataclass
class SharedDatasetStore:
    """One shared ``(x, y)`` sample store with per-worker offset windows.

    Worker ``w`` owns rows ``starts[w]:stops[w]``; :meth:`shard` returns
    contiguous slice views, never copies.  Two layouts are supported:

    * :meth:`from_partition` — reorder the dataset once so every worker's
      rows are contiguous (one O(n) copy total, equal in value to the
      legacy per-worker ``dataset.subset`` copies);
    * :meth:`replicated` — alias the original dataset arrays outright and
      give workers overlapping windows (zero copies of any sample; the
      XL-scale construction).
    """

    x: np.ndarray
    y: np.ndarray
    starts: np.ndarray
    stops: np.ndarray
    num_classes: int
    copied: bool = True

    def __post_init__(self) -> None:
        self.starts = np.asarray(self.starts, dtype=np.int64)
        self.stops = np.asarray(self.stops, dtype=np.int64)
        if self.starts.shape != self.stops.shape or self.starts.ndim != 1:
            raise ValueError("starts/stops must be matching 1-D arrays")
        if self.starts.size == 0:
            raise ValueError("store must describe at least one worker")
        if len(self.x) != len(self.y):
            raise ValueError("x and y row counts differ")
        n = len(self.x)
        if self.starts.size and (
            self.starts.min() < 0
            or np.any(self.stops < self.starts)
            or self.stops.max() > n
        ):
            raise ValueError("offset windows out of bounds")

    @property
    def num_workers(self) -> int:
        return int(self.starts.size)

    @property
    def num_samples(self) -> int:
        return int(len(self.x))

    def data_sizes(self) -> np.ndarray:
        return self.stops - self.starts

    def shard(self, worker_id: int) -> ShardView:
        """Zero-copy ``(x, y)`` slice views for one worker."""
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(f"invalid worker id {worker_id}")
        s = self.starts[worker_id]
        e = self.stops[worker_id]
        return ShardView(self.x[s:e], self.y[s:e])

    def shards(self) -> _ShardSequence:
        """Lazy sequence of all shard views (no per-worker allocation)."""
        return _ShardSequence(self)

    def class_counts(self) -> np.ndarray:
        """Per-worker label histograms via per-class prefix sums.

        O(K·n + N·K); correct for overlapping (replicated) windows too.
        """
        counts = np.empty((self.num_workers, self.num_classes), dtype=np.int64)
        labels = np.asarray(self.y)
        for c in range(self.num_classes):
            cum = np.concatenate(
                ([0], np.cumsum(labels == c, dtype=np.int64))
            )
            counts[:, c] = cum[self.stops] - cum[self.starts]
        return counts

    @property
    def nbytes(self) -> int:
        return (
            self.x.nbytes + self.y.nbytes + self.starts.nbytes + self.stops.nbytes
        )

    @classmethod
    def from_partition(
        cls, dataset: "Dataset", partition: "Partition"
    ) -> "SharedDatasetStore":
        """Reorder the training set so each worker's rows are contiguous.

        Shard *values* equal the legacy ``dataset.subset(indices)`` copies
        exactly (same fancy index, then a contiguous slice of the result).
        """
        arrays = [
            partition.worker_indices(w) for w in range(partition.num_workers)
        ]
        sizes = np.array([a.size for a in arrays], dtype=np.int64)
        if sizes.sum() > 0:
            perm = np.concatenate([a for a in arrays if a.size])
        else:
            perm = np.empty(0, dtype=np.int64)
        offsets = np.zeros(partition.num_workers + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return cls(
            x=dataset.x_train[perm],
            y=dataset.y_train[perm],
            starts=offsets[:-1],
            stops=offsets[1:],
            num_classes=dataset.num_classes,
            copied=True,
        )

    @classmethod
    def replicated(
        cls,
        dataset: "Dataset",
        num_workers: int,
        shard_size: int,
        stride: int = 1,
    ) -> "SharedDatasetStore":
        """Alias the dataset arrays; workers get overlapping windows.

        Fully zero-copy: ``store.x is dataset.x_train``.  Worker ``w``
        reads rows ``(w·stride) mod (n − shard_size + 1)`` onward, so a
        small dataset serves arbitrarily many simulated workers with O(N)
        *offsets* but O(1) sample storage — the million-worker layout.
        """
        n = dataset.num_train
        if shard_size < 1 or shard_size > n:
            raise ValueError(
                f"shard_size must be in [1, {n}], got {shard_size}"
            )
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        window = n - shard_size + 1
        starts = (np.arange(num_workers, dtype=np.int64) * stride) % window
        return cls(
            x=dataset.x_train,
            y=dataset.y_train,
            starts=starts,
            stops=starts + shard_size,
            num_classes=dataset.num_classes,
            copied=False,
        )


class StackPool:
    """Recycled ``(rows, dim)`` buffers for in-flight group stacks.

    The grouped event loop acquires one stack per training group and
    releases it on commit, so steady-state training reuses the same one
    or two buffers regardless of how many distinct group sizes exist.
    :meth:`release` is a no-op for arrays the pool does not own (executor
    arena views, partial-work copies), which keeps call sites simple.
    """

    def __init__(self, max_free: int = 4) -> None:
        self._free: List[np.ndarray] = []
        self._lent: Dict[int, np.ndarray] = {}
        self._max_free = max_free

    def acquire(self, rows: int, dim: int, dtype=np.float64) -> np.ndarray:
        if rows < 1 or dim < 1:
            raise ValueError("rows and dim must be >= 1")
        dtype = np.dtype(dtype)
        best = -1
        for i, buf in enumerate(self._free):
            if buf.shape[1] != dim or buf.dtype != dtype or buf.shape[0] < rows:
                continue
            if best < 0 or buf.shape[0] < self._free[best].shape[0]:
                best = i
        base = self._free.pop(best) if best >= 0 else np.empty((rows, dim), dtype)
        self._lent[id(base)] = base
        return base[:rows]

    def release(self, stack: Optional[np.ndarray]) -> bool:
        """Return a stack to the pool; ``False`` when it isn't pool-owned."""
        if not isinstance(stack, np.ndarray):
            return False
        base = stack if stack.base is None else stack.base
        owned = self._lent.pop(id(base), None)
        if owned is None:
            return False
        if len(self._free) < self._max_free:
            self._free.append(owned)
        return True

    @property
    def outstanding(self) -> int:
        return len(self._lent)

    @property
    def free_buffers(self) -> int:
        return len(self._free)


@dataclass
class GroupBatch:
    """Materialized tensors for one group currently training.

    Holds the member-id array, per-member data shards, and (on demand) a
    pooled ``(G, q)`` stack buffer.  Call :meth:`release` on commit to
    recycle the stack.
    """

    members: np.ndarray
    population: "Population"
    _stack: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.members = np.asarray(self.members, dtype=np.int64)
        if self.members.ndim != 1 or self.members.size == 0:
            raise ValueError("group must contain at least one worker")

    @property
    def size(self) -> int:
        return int(self.members.size)

    def shards(self) -> List[ShardView]:
        return [self.population.worker_data(int(w)) for w in self.members]

    def stack(self, dim: int, dtype=np.float64) -> np.ndarray:
        """A pooled ``(size, dim)`` buffer for this group's local vectors."""
        if (
            self._stack is None
            or self._stack.shape != (self.size, dim)
            or self._stack.dtype != np.dtype(dtype)
        ):
            self.release()
            self._stack = self.population.stack_pool.acquire(
                self.size, dim, dtype
            )
        return self._stack

    def release(self) -> None:
        if self._stack is not None:
            self.population.stack_pool.release(self._stack)
            self._stack = None


class Population:
    """Facade over the worker-state table and the shared dataset store.

    This is the surface trainers use instead of reaching into per-worker
    objects: ``population.shard(w)`` for zero-copy data access,
    ``population.worker_data_sequence()`` for the trainer's data list,
    ``population.group_batch(members)`` for per-group stacked tensors,
    and ``population.state`` for every per-worker scalar field.
    """

    def __init__(
        self,
        state: WorkerStateTable,
        *,
        dataset: Optional["Dataset"] = None,
        partition: Optional["Partition"] = None,
        store: Optional[SharedDatasetStore] = None,
        materialization: str = "eager",
    ) -> None:
        self.state = state
        self.dataset = dataset
        self.partition = partition
        self._store = store
        self.materialization = validate_materialization(materialization)
        self.stack_pool = StackPool()
        n = state.num_workers
        if partition is not None and partition.num_workers != n:
            raise ValueError(
                f"partition has {partition.num_workers} workers, state has {n}"
            )
        if store is not None and store.num_workers != n:
            raise ValueError(
                f"store has {store.num_workers} workers, state has {n}"
            )
        if store is None and (dataset is None or partition is None):
            raise ValueError(
                "population needs either a prebuilt store or a dataset "
                "and partition to build one from"
            )

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_dataset(
        cls,
        dataset: "Dataset",
        partition: "Partition",
        latency=None,
        materialization: str = "eager",
    ) -> "Population":
        """Standard construction from an experiment's dataset + partition."""
        state = WorkerStateTable.from_partition(partition, latency=latency)
        return cls(
            state,
            dataset=dataset,
            partition=partition,
            materialization=materialization,
        )

    @classmethod
    def replicated(
        cls,
        dataset: "Dataset",
        num_workers: int,
        shard_size: int,
        latency=None,
        stride: int = 1,
        materialization: str = "lazy",
    ) -> "Population":
        """XL-scale construction: overlapping zero-copy windows, no partition."""
        store = SharedDatasetStore.replicated(
            dataset, num_workers=num_workers, shard_size=shard_size, stride=stride
        )
        nominal = getattr(latency, "nominal", None) if latency is not None else None
        state = WorkerStateTable.uniform(
            num_workers, shard_size, latencies=nominal
        )
        return cls(
            state,
            dataset=dataset,
            store=store,
            materialization=materialization,
        )

    # -- data access ----------------------------------------------------

    @property
    def num_workers(self) -> int:
        return self.state.num_workers

    @property
    def store(self) -> SharedDatasetStore:
        """The shared store, built lazily on first shard access."""
        if self._store is None:
            self._store = SharedDatasetStore.from_partition(
                self.dataset, self.partition
            )
        return self._store

    @property
    def store_built(self) -> bool:
        return self._store is not None

    def shard(self, worker_id: int) -> ShardView:
        """Zero-copy view of one worker's rows in the shared store."""
        return self.store.shard(worker_id)

    def worker_data(self, worker_id: int) -> ShardView:
        """Worker data under the active materialization policy."""
        if self.materialization == "eager":
            if self.partition is not None:
                x, y = self.dataset.subset(
                    self.partition.worker_indices(worker_id)
                )
                return ShardView(x, y)
            view = self.store.shard(worker_id)
            return ShardView(view.x.copy(), view.y.copy())
        return self.store.shard(worker_id)

    def worker_data_sequence(self) -> Sequence[ShardView]:
        """The trainer's per-worker data: a list of copies (eager, the
        legacy allocation profile) or a lazy view sequence (lazy, O(1))."""
        if self.materialization == "eager":
            return [self.worker_data(w) for w in range(self.num_workers)]
        return self.store.shards()

    def group_batch(
        self, member_ids: Union[Sequence[int], np.ndarray]
    ) -> GroupBatch:
        """Materialize tensors for one group currently training."""
        return GroupBatch(np.asarray(member_ids, dtype=np.int64), self)

    def class_counts(self) -> np.ndarray:
        """Per-worker label histograms (partition-cached when available)."""
        if self.partition is not None:
            return self.partition.class_counts()
        return self.store.class_counts()

    @property
    def nbytes(self) -> int:
        """Resident bytes of the state table plus any *copied* store."""
        total = self.state.nbytes
        if self._store is not None and self._store.copied:
            total += self._store.nbytes
        return total
