"""Configuration objects shared by the Air-FedGA core algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "AirCompConfig",
    "GroupingConfig",
    "ConvergenceConfig",
    "ParallelismConfig",
    "FaultConfig",
    "AirFedGAConfig",
]


@dataclass
class AirCompConfig:
    """Physical-layer parameters of the over-the-air aggregation.

    Defaults follow Section VI-A2 of the paper: bandwidth 1 MHz, noise
    variance σ₀² = 1 W and a per-round energy budget Ê_i = 10 J.
    """

    noise_variance: float = 1.0
    energy_budget_j: float = 10.0
    num_subchannels: int = 64
    symbol_duration_s: float = 1e-4
    bandwidth_hz: float = 1e6
    power_control_tolerance: float = 1e-6
    power_control_max_iters: int = 200
    #: Memoize the Algorithm-2 alternating optimization on quantized
    #: ``(gains, sizes, model_bound)`` keys and warm-start it from the same
    #: group's previous (σ, η).  Cached σ is re-clamped to the *exact*
    #: energy-budget cap of the current round, so budgets are never
    #: violated by the quantization.
    power_control_cache: bool = True
    #: Relative quantization applied to the model bound W_t when forming
    #: cache keys (a hit may therefore reuse a (σ, η) pair solved for a
    #: bound up to this relative distance away).
    power_control_cache_rel_tol: float = 1e-3
    #: Warm-start cache *misses* from the same group's previous σ*.  Off by
    #: default: Algorithm 2's alternation is only guaranteed to reach the
    #: paper's operating point when started from the energy cap, and warm
    #: starts can converge to a different (lower-power) fixed point,
    #: materially changing the simulated energy trace.  Enable for speed
    #: when exact fidelity to the from-cap solution is not required.
    power_control_warm_start: bool = False

    def __post_init__(self) -> None:
        if self.noise_variance < 0:
            raise ValueError("noise_variance must be non-negative")
        if self.energy_budget_j <= 0:
            raise ValueError("energy_budget_j must be positive")
        if self.num_subchannels <= 0:
            raise ValueError("num_subchannels must be positive")
        if self.symbol_duration_s <= 0:
            raise ValueError("symbol_duration_s must be positive")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")
        if self.power_control_tolerance <= 0:
            raise ValueError("power_control_tolerance must be positive")
        if self.power_control_max_iters < 1:
            raise ValueError("power_control_max_iters must be >= 1")
        if self.power_control_cache_rel_tol <= 0:
            raise ValueError("power_control_cache_rel_tol must be positive")


@dataclass
class GroupingConfig:
    """Parameters of the worker-grouping algorithm (Alg. 3).

    ``xi`` is the intra-group training-time similarity slack ξ of constraint
    (36d); the paper finds ξ = 0.3 to be a good operating point (Fig. 8).
    """

    xi: float = 0.3
    sort_descending_by_data: bool = True
    emd_weight: float = 1.0
    #: Seed for breaking data-size ties in the greedy visit order (see
    #: :func:`repro.core.grouping.greedy_grouping`).
    tie_break_seed: int = 0
    #: Number of local-search refinement passes applied after the greedy
    #: assignment (0 recovers the paper's single-pass Algorithm 3).
    refine_passes: int = 3

    def __post_init__(self) -> None:
        if self.xi < 0:
            raise ValueError("xi must be non-negative")
        if self.emd_weight < 0:
            raise ValueError("emd_weight must be non-negative")
        if self.tie_break_seed < 0:
            raise ValueError("tie_break_seed must be non-negative")
        if self.refine_passes < 0:
            raise ValueError("refine_passes must be non-negative")


@dataclass
class ConvergenceConfig:
    """Constants appearing in the Theorem-1 bound.

    These are the smoothness ``L``, strong-convexity ``μ``, gradient bound
    ``G`` and initial optimality gap ``F(w0) − F(w*)`` used when evaluating
    the theoretical objective of P2.  They act as *relative* weights in the
    grouping objective; the defaults are the canonical unit-scale choices
    used throughout the FL-analysis literature.
    """

    smoothness_L: float = 1.0
    strong_convexity_mu: float = 0.5
    learning_rate_gamma: float = 0.9
    gradient_bound_G: float = 1.0
    model_bound_W: float = 1.0
    initial_gap: float = 1.0
    target_epsilon: float = 0.05

    def __post_init__(self) -> None:
        if self.smoothness_L <= 0:
            raise ValueError("smoothness_L must be positive")
        if self.strong_convexity_mu < 0:
            raise ValueError("strong_convexity_mu must be non-negative")
        if self.strong_convexity_mu > self.smoothness_L:
            raise ValueError("mu cannot exceed L")
        if not (0 < self.learning_rate_gamma):
            raise ValueError("learning_rate_gamma must be positive")
        lo, hi = 1.0 / (2 * self.smoothness_L), 1.0 / self.smoothness_L
        if not (lo < self.learning_rate_gamma < hi):
            raise ValueError(
                f"Theorem 1 requires 1/(2L) < gamma < 1/L, i.e. gamma in "
                f"({lo}, {hi}); got {self.learning_rate_gamma}"
            )
        if self.gradient_bound_G <= 0:
            raise ValueError("gradient_bound_G must be positive")
        if self.model_bound_W <= 0:
            raise ValueError("model_bound_W must be positive")
        if self.initial_gap <= 0:
            raise ValueError("initial_gap must be positive")
        if self.target_epsilon <= 0:
            raise ValueError("target_epsilon must be positive")


@dataclass
class ParallelismConfig:
    """Execution parallelism of the simulated local training.

    ``mode="processes"`` schedules each group's intra-group training round
    onto a persistent worker-process pool
    (:class:`repro.parallel.ProcessGroupExecutor`): the group's members are
    sharded across the pool, stacked parameters travel through
    ``multiprocessing.shared_memory`` buffers (no per-round pickling) and
    the shards reproduce the serial engine's padding/tiling geometry, so
    results are bit-identical to the serial event loop in float64.

    ``mode="none"`` (default) keeps the single-process batched engine.

    ``pipeline=True`` (requires ``mode="processes"``) additionally overlaps
    the event loop's phases: while the parent process performs a group's
    AirComp aggregation, power control and staleness bookkeeping, the pool
    already trains the *next* ready group's shards speculatively (see
    ``docs/ARCHITECTURE.md``, "Pipelined event loop").  Virtual-time event
    order — and therefore the produced history — is unchanged; only
    wall-clock phases overlap.
    """

    #: ``"none"`` (serial, default) or ``"processes"`` (worker-process pool).
    mode: str = "none"
    #: Pool size; ``None`` uses ``os.cpu_count()``.  More processes than
    #: groups members / CPU cores only adds dispatch overhead.
    num_processes: int | None = None
    #: ``multiprocessing`` start method: ``"fork"`` (default on Linux —
    #: workers inherit the training data with no pickling at all),
    #: ``"spawn"`` or ``"forkserver"`` (the model and worker data are
    #: pickled once at pool start-up, never per round).
    start_method: str = "fork"
    #: Groups smaller than this run in-process (dispatch overhead would
    #: exceed the training cost of a tiny group).
    min_group_size: int = 2
    #: How many times a dispatch is retried on a broken pool (the pool is
    #: respawned between attempts) before falling back to the in-process
    #: engine for that call.
    max_restarts: int = 1
    #: Overlap the event loop's phases: speculatively train the next ready
    #: group on the pool while the parent aggregates the current one.
    #: Requires ``mode="processes"`` (there is no pool to overlap with
    #: otherwise) and ``max_inflight >= 2``.
    pipeline: bool = False
    #: Maximum number of group dispatches whose shared-memory arena slots
    #: may coexist.  The pipeline holds the committing group's stack and
    #: the speculative group's stack simultaneously, so it needs 2; each
    #: extra slot costs one ``num_workers × q`` result arena.
    max_inflight: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ("none", "processes"):
            raise ValueError(
                f"parallelism mode must be 'none' or 'processes', got {self.mode!r}"
            )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.pipeline:
            if self.mode != "processes":
                raise ValueError(
                    "parallelism.pipeline=True requires mode='processes': the "
                    "pipeline overlaps parent-process aggregation with "
                    "speculative training on the worker-process pool, so "
                    f"there is nothing to overlap with mode={self.mode!r}"
                )
            if self.max_inflight < 2:
                raise ValueError(
                    "parallelism.pipeline=True requires max_inflight >= 2 "
                    "(the committing group's stack and the speculative "
                    "group's stack must coexist in separate arena slots)"
                )
        if self.num_processes is not None and self.num_processes < 1:
            raise ValueError("num_processes must be >= 1 when given")
        if self.start_method not in ("fork", "spawn", "forkserver"):
            raise ValueError(
                "start_method must be 'fork', 'spawn' or 'forkserver', "
                f"got {self.start_method!r}"
            )
        if self.min_group_size < 1:
            raise ValueError("min_group_size must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")


@dataclass
class FaultConfig:
    """Group-level policy for device faults (see :mod:`repro.sim.clientstate`).

    The client-state model decides *which* workers are unavailable, drop
    mid-round or return partial work; this config decides what the grouped
    event loop does about it.  A group round proceeds only while at least
    ``ceil(quorum_fraction · group_size)`` members (always at least one)
    are present; below quorum the round is retried with a virtual-time
    backoff up to ``max_retries`` times, after which it is recorded as a
    quorum *skip* and the group simply starts its next local round.  A
    group that fails ``max_consecutive_failures`` quorum checks in a row
    is parked — removed from the event loop — so a fully dead group cannot
    spin the simulation forever.
    """

    #: Minimum fraction of the group that must be present for a round to
    #: count (applied to the dispatch roster and again to the mid-round
    #: survivors).  The effective quorum is ``max(1, ceil(fraction·size))``.
    quorum_fraction: float = 0.5
    #: Below-quorum rounds are retried this many times (with backoff)
    #: before being recorded as a skip.  0 means "skip immediately".
    max_retries: int = 2
    #: Simulated seconds added before a retried dispatch.
    retry_backoff: float = 1.0
    #: Scale the surviving members' aggregation weights so they carry the
    #: full group's data mass (``Σα_members / Σα_survivors``); off, the
    #: lost mass falls back onto the previous global model via Eq. (10).
    renormalize_survivors: bool = True
    #: Park a group (drop it from the event loop) after this many
    #: consecutive failed quorum checks — the infinite-retry guard for
    #: groups whose members never come back.
    max_consecutive_failures: int = 25

    def __post_init__(self) -> None:
        if not 0.0 < self.quorum_fraction <= 1.0:
            raise ValueError(
                f"quorum_fraction must be in (0, 1], got {self.quorum_fraction}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.retry_backoff <= 0:
            raise ValueError("retry_backoff must be positive")
        if self.max_consecutive_failures < 1:
            raise ValueError("max_consecutive_failures must be >= 1")


@dataclass
class AirFedGAConfig:
    """Top-level configuration bundling the core-algorithm settings."""

    aircomp: AirCompConfig = field(default_factory=AirCompConfig)
    grouping: GroupingConfig = field(default_factory=GroupingConfig)
    convergence: ConvergenceConfig = field(default_factory=ConvergenceConfig)
    parallelism: ParallelismConfig = field(default_factory=ParallelismConfig)
    #: Floating dtype of the simulation ("float64" or "float32").  float64
    #: is the bit-exact reference mode; float32 halves the memory bandwidth
    #: of the O(q) model/aggregation hot paths for large sweeps at ~1e-7
    #: relative rounding per operation (see docs/PERFORMANCE.md).
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dtype not in ("float32", "float64"):
            raise ValueError(
                f"dtype must be 'float32' or 'float64', got {self.dtype!r}"
            )
