"""Power control via alternating optimization (Algorithm 2).

Problem P3 of the paper: choose the power scaling factor σ_t (common to the
participating group) and the denoising factor η_t (at the parameter server)
to minimize the per-round aggregation-error term

    C_t = (σ_t / √η_t − 1)² W_t²  +  σ₀² / (D_{j_t}² η_t)        (Eq. 30)

subject to the per-worker energy budgets ``E_i^t ≤ Ê_i`` which translate to
``σ_t ≤ h_i √Ê_i / (d_i W_t)`` for every participating worker (Eq. 46).

Algorithm 2 alternates two closed-form updates until convergence:

* given σ_t, the optimal denoising factor is
  ``η_t = [(σ_t² W_t² + σ₀²/D_j²) / (σ_t W_t²)]²``           (Eq. 44)
* given η_t, the optimal feasible scaling factor is
  ``σ_t = min( √η_t , min_i h_i √Ê_i / (d_i W_t) )``          (Eq. 47)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..channel.aircomp import aggregation_error_term
from .config import AirCompConfig

__all__ = ["PowerControlResult", "optimal_eta", "feasible_sigma", "solve_power_control"]


@dataclass
class PowerControlResult:
    """Outcome of the alternating optimization for one round.

    Attributes
    ----------
    sigma:
        Converged power scaling factor σ_t*.
    eta:
        Converged denoising factor η_t*.
    error_term:
        The minimized C_t value.
    iterations:
        Number of alternating iterations performed.
    converged:
        Whether the relative-change stopping criterion was met before the
        iteration cap.
    sigma_cap:
        The energy-budget upper bound on σ_t (min over workers of Eq. 46).
    history:
        Per-iteration (σ, η, C) triples for diagnostics and tests.
    """

    sigma: float
    eta: float
    error_term: float
    iterations: int
    converged: bool
    sigma_cap: float
    history: List[tuple]


def optimal_eta(
    sigma: float, model_bound: float, noise_var: float, group_data_size: float
) -> float:
    """Closed-form η minimizing C_t for a fixed σ (Eq. 44)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    if noise_var < 0:
        raise ValueError("noise_var must be non-negative")
    if group_data_size <= 0:
        raise ValueError("group_data_size must be positive")
    numerator = sigma**2 * model_bound**2 + noise_var / group_data_size**2
    return float((numerator / (sigma * model_bound**2)) ** 2)


def feasible_sigma(
    eta: float,
    model_bound: float,
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    energy_budgets: Sequence[float],
) -> float:
    """σ minimizing C_t for a fixed η while respecting energy budgets (Eq. 47)."""
    if eta <= 0:
        raise ValueError("eta must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    budgets = np.asarray(energy_budgets, dtype=np.float64)
    if not (sizes.shape == gains.shape == budgets.shape):
        raise ValueError("data_sizes, channel_gains and energy_budgets must align")
    if sizes.size == 0:
        raise ValueError("at least one worker required")
    if np.any(sizes <= 0) or np.any(gains <= 0) or np.any(budgets <= 0):
        raise ValueError("sizes, gains and budgets must be positive")
    caps = gains * np.sqrt(budgets) / (sizes * model_bound)
    return float(min(np.sqrt(eta), caps.min()))


def solve_power_control(
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    model_bound: float,
    config: AirCompConfig,
    energy_budgets: Sequence[float] | None = None,
    initial_sigma: float | None = None,
) -> PowerControlResult:
    """Run Algorithm 2 for one round / one participating group.

    Parameters
    ----------
    data_sizes:
        ``d_i`` for the participating workers.
    channel_gains:
        ``h_i^t`` for the participating workers this round.
    model_bound:
        ``W_t`` — an upper bound on the local model norms (the trainers pass
        the current global-model norm, which tracks it closely).
    config:
        Physical-layer configuration (noise variance, budgets, tolerances).
    energy_budgets:
        Per-worker budgets ``Ê_i``; defaults to ``config.energy_budget_j``
        for every worker.
    initial_sigma:
        Starting point of the alternation; defaults to the energy-budget cap
        (the largest feasible σ).
    """
    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    if sizes.shape != gains.shape or sizes.size == 0:
        raise ValueError("data_sizes and channel_gains must be non-empty and aligned")
    if np.any(sizes <= 0) or np.any(gains <= 0):
        raise ValueError("data sizes and channel gains must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    if energy_budgets is None:
        budgets = np.full(sizes.shape, config.energy_budget_j)
    else:
        budgets = np.asarray(energy_budgets, dtype=np.float64)
        if budgets.shape != sizes.shape:
            raise ValueError("energy_budgets must align with data_sizes")
        if np.any(budgets <= 0):
            raise ValueError("energy budgets must be positive")

    group_size = float(sizes.sum())
    noise_var = config.noise_variance
    caps = gains * np.sqrt(budgets) / (sizes * model_bound)
    sigma_cap = float(caps.min())

    sigma = float(initial_sigma) if initial_sigma is not None else sigma_cap
    if sigma <= 0:
        raise ValueError("initial sigma must be positive")
    sigma = min(sigma, sigma_cap)
    eta = optimal_eta(sigma, model_bound, noise_var, group_size)

    history: List[tuple] = []
    converged = False
    iterations = 0
    for iterations in range(1, config.power_control_max_iters + 1):
        prev_sigma, prev_eta = sigma, eta
        eta = optimal_eta(sigma, model_bound, noise_var, group_size)
        sigma = feasible_sigma(eta, model_bound, sizes, gains, budgets)
        c = aggregation_error_term(sigma, eta, model_bound, noise_var, group_size)
        history.append((sigma, eta, c))
        rel_sigma = abs(sigma - prev_sigma) / max(abs(sigma), 1e-300)
        rel_eta = abs(eta - prev_eta) / max(abs(eta), 1e-300)
        if rel_sigma <= config.power_control_tolerance and rel_eta <= config.power_control_tolerance:
            converged = True
            break

    error = aggregation_error_term(sigma, eta, model_bound, noise_var, group_size)
    return PowerControlResult(
        sigma=float(sigma),
        eta=float(eta),
        error_term=float(error),
        iterations=iterations,
        converged=converged,
        sigma_cap=sigma_cap,
        history=history,
    )
