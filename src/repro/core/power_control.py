"""Power control via alternating optimization (Algorithm 2).

Problem P3 of the paper: choose the power scaling factor σ_t (common to the
participating group) and the denoising factor η_t (at the parameter server)
to minimize the per-round aggregation-error term

    C_t = (σ_t / √η_t − 1)² W_t²  +  σ₀² / (D_{j_t}² η_t)        (Eq. 30)

subject to the per-worker energy budgets ``E_i^t ≤ Ê_i`` which translate to
``σ_t ≤ h_i √Ê_i / (d_i W_t)`` for every participating worker (Eq. 46).

Algorithm 2 alternates two closed-form updates until convergence:

* given σ_t, the optimal denoising factor is
  ``η_t = [(σ_t² W_t² + σ₀²/D_j²) / (σ_t W_t²)]²``           (Eq. 44)
* given η_t, the optimal feasible scaling factor is
  ``σ_t = min( √η_t , min_i h_i √Ê_i / (d_i W_t) )``          (Eq. 47)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..channel.aircomp import aggregation_error_term
from .config import AirCompConfig

__all__ = [
    "PowerControlResult",
    "PowerControlCache",
    "optimal_eta",
    "feasible_sigma",
    "solve_power_control",
]


@dataclass
class PowerControlResult:
    """Outcome of the alternating optimization for one round.

    Attributes
    ----------
    sigma:
        Converged power scaling factor σ_t*.
    eta:
        Converged denoising factor η_t*.
    error_term:
        The minimized C_t value.
    iterations:
        Number of alternating iterations performed.
    converged:
        Whether the relative-change stopping criterion was met before the
        iteration cap.
    sigma_cap:
        The energy-budget upper bound on σ_t (min over workers of Eq. 46).
    history:
        Per-iteration (σ, η, C) triples for diagnostics and tests.
    """

    sigma: float
    eta: float
    error_term: float
    iterations: int
    converged: bool
    sigma_cap: float
    history: List[tuple]


def optimal_eta(
    sigma: float, model_bound: float, noise_var: float, group_data_size: float
) -> float:
    """Closed-form η minimizing C_t for a fixed σ (Eq. 44)."""
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    if noise_var < 0:
        raise ValueError("noise_var must be non-negative")
    if group_data_size <= 0:
        raise ValueError("group_data_size must be positive")
    numerator = sigma**2 * model_bound**2 + noise_var / group_data_size**2
    return float((numerator / (sigma * model_bound**2)) ** 2)


def feasible_sigma(
    eta: float,
    model_bound: float,
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    energy_budgets: Sequence[float],
) -> float:
    """σ minimizing C_t for a fixed η while respecting energy budgets (Eq. 47)."""
    if eta <= 0:
        raise ValueError("eta must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    budgets = np.asarray(energy_budgets, dtype=np.float64)
    if not (sizes.shape == gains.shape == budgets.shape):
        raise ValueError("data_sizes, channel_gains and energy_budgets must align")
    if sizes.size == 0:
        raise ValueError("at least one worker required")
    if np.any(sizes <= 0) or np.any(gains <= 0) or np.any(budgets <= 0):
        raise ValueError("sizes, gains and budgets must be positive")
    caps = gains * np.sqrt(budgets) / (sizes * model_bound)
    return float(min(np.sqrt(eta), caps.min()))


def solve_power_control(
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    model_bound: float,
    config: AirCompConfig,
    energy_budgets: Sequence[float] | None = None,
    initial_sigma: float | None = None,
) -> PowerControlResult:
    """Run Algorithm 2 for one round / one participating group.

    Parameters
    ----------
    data_sizes:
        ``d_i`` for the participating workers.
    channel_gains:
        ``h_i^t`` for the participating workers this round.
    model_bound:
        ``W_t`` — an upper bound on the local model norms (the trainers pass
        the current global-model norm, which tracks it closely).
    config:
        Physical-layer configuration (noise variance, budgets, tolerances).
    energy_budgets:
        Per-worker budgets ``Ê_i``; defaults to ``config.energy_budget_j``
        for every worker.
    initial_sigma:
        Starting point of the alternation; defaults to the energy-budget cap
        (the largest feasible σ).
    """
    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    if sizes.shape != gains.shape or sizes.size == 0:
        raise ValueError("data_sizes and channel_gains must be non-empty and aligned")
    if np.any(sizes <= 0) or np.any(gains <= 0):
        raise ValueError("data sizes and channel gains must be positive")
    if model_bound <= 0:
        raise ValueError("model_bound must be positive")
    if energy_budgets is None:
        budgets = np.full(sizes.shape, config.energy_budget_j)
    else:
        budgets = np.asarray(energy_budgets, dtype=np.float64)
        if budgets.shape != sizes.shape:
            raise ValueError("energy_budgets must align with data_sizes")
        if np.any(budgets <= 0):
            raise ValueError("energy budgets must be positive")

    group_size = float(sizes.sum())
    noise_var = config.noise_variance
    caps = gains * np.sqrt(budgets) / (sizes * model_bound)
    sigma_cap = float(caps.min())

    sigma = float(initial_sigma) if initial_sigma is not None else sigma_cap
    if sigma <= 0:
        raise ValueError("initial sigma must be positive")
    sigma = min(sigma, sigma_cap)
    eta = optimal_eta(sigma, model_bound, noise_var, group_size)

    history: List[tuple] = []
    converged = False
    iterations = 0
    for iterations in range(1, config.power_control_max_iters + 1):
        prev_sigma, prev_eta = sigma, eta
        eta = optimal_eta(sigma, model_bound, noise_var, group_size)
        sigma = feasible_sigma(eta, model_bound, sizes, gains, budgets)
        c = aggregation_error_term(sigma, eta, model_bound, noise_var, group_size)
        history.append((sigma, eta, c))
        rel_sigma = abs(sigma - prev_sigma) / max(abs(sigma), 1e-300)
        rel_eta = abs(eta - prev_eta) / max(abs(eta), 1e-300)
        if rel_sigma <= config.power_control_tolerance and rel_eta <= config.power_control_tolerance:
            converged = True
            break

    error = aggregation_error_term(sigma, eta, model_bound, noise_var, group_size)
    return PowerControlResult(
        sigma=float(sigma),
        eta=float(eta),
        error_term=float(error),
        iterations=iterations,
        converged=converged,
        sigma_cap=sigma_cap,
        history=history,
    )


class PowerControlCache:
    """Memoization + warm-start wrapper around :func:`solve_power_control`.

    Re-running Algorithm 2 from scratch at every aggregation is wasteful in
    two common regimes:

    * **static channels / stable bounds** — successive rounds of the same
      group pose *identical* (or near-identical) P3 instances: the solution
      is looked up on a quantized ``(gains, sizes, model_bound)`` key;
    * **slowly drifting bounds** — optionally (``warm_start=True``), a miss
      starts the alternation from the same group's previous σ* instead of
      the energy cap.  Off by default: the alternation can converge to a
      *different* fixed point from a different start, materially changing
      the simulated σ/energy trace relative to the paper's from-cap
      Algorithm 2 (observed ~5× lower transmit energy on the quickstart
      workload) — enable only when that fidelity does not matter.

    The model bound is quantized to ``rel_tol`` relative precision when
    forming keys; gains and data sizes are hashed exactly.  On a hit the
    cached σ is clamped to the *exact* energy-budget cap of the current
    inputs (Eq. 46), so the quantization can never cause a budget violation.
    """

    def __init__(
        self,
        rel_tol: float = 1e-3,
        max_entries: int = 4096,
        warm_start: bool = False,
    ) -> None:
        if rel_tol <= 0:
            raise ValueError("rel_tol must be positive")
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.rel_tol = rel_tol
        self.max_entries = max_entries
        self.warm_start = warm_start
        self.hits = 0
        self.misses = 0
        self._cache: Dict[Tuple, PowerControlResult] = {}
        self._warm_sigma: Dict[Tuple, float] = {}

    # ------------------------------------------------------------------
    def _quantize_bound(self, model_bound: float) -> float:
        """Snap the bound onto a relative grid of spacing ``rel_tol``."""
        step = np.log1p(self.rel_tol)
        return float(np.exp(np.round(np.log(model_bound) / step) * step))

    def solve(
        self,
        data_sizes: Sequence[float],
        channel_gains: Sequence[float],
        model_bound: float,
        config: AirCompConfig,
        group_key: Optional[Tuple] = None,
    ) -> PowerControlResult:
        """Cached/warm-started equivalent of :func:`solve_power_control`.

        ``group_key`` identifies the participating group (e.g. the member
        tuple) for warm-start bookkeeping; pass ``None`` to disable warm
        starts for this call.
        """
        sizes = np.ascontiguousarray(data_sizes, dtype=np.float64)
        gains = np.ascontiguousarray(channel_gains, dtype=np.float64)
        key = (
            sizes.tobytes(),
            gains.tobytes(),
            self._quantize_bound(model_bound),
            config.noise_variance,
            config.energy_budget_j,
        )
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            # Clamp to the exact cap for *this* round's bound (Eq. 46).
            caps = gains * np.sqrt(config.energy_budget_j) / (sizes * model_bound)
            sigma_cap = float(caps.min())
            if cached.sigma <= sigma_cap:
                return cached
            # Re-pair the clamped σ with its own optimal η (Eq. 44) so the
            # denoising scale stays consistent with the transmitted power.
            group_size = float(sizes.sum())
            eta = optimal_eta(sigma_cap, model_bound, config.noise_variance, group_size)
            error = aggregation_error_term(
                sigma_cap, eta, model_bound, config.noise_variance, group_size
            )
            return replace(
                cached,
                sigma=sigma_cap,
                eta=eta,
                error_term=error,
                sigma_cap=sigma_cap,
            )
        self.misses += 1
        warm = (
            self._warm_sigma.get(group_key)
            if (self.warm_start and group_key is not None)
            else None
        )
        result = solve_power_control(
            data_sizes=sizes,
            channel_gains=gains,
            model_bound=model_bound,
            config=config,
            initial_sigma=warm,
        )
        if len(self._cache) >= self.max_entries:
            # Simple wholesale reset: the cache is an optimization, not a
            # correctness structure, and resets are rare at this size.
            self._cache.clear()
        self._cache[key] = result
        if group_key is not None:
            self._warm_sigma[group_key] = result.sigma
        return result
