"""The Air-FedGA protocol state machine (Algorithm 1).

This module implements the *mechanism* of the paper independently of any
particular model or dataset: the parameter-server bookkeeping for the
READY/EXECUTE handshake, intra-group alignment, asynchronous inter-group
global updates and staleness accounting.  The federated trainers in
:mod:`repro.fl` drive this state machine with simulated timing and plug in
the actual model updates and over-the-air aggregation.

Protocol recap (Alg. 1):

* The server keeps a counter ``r_j`` per group.  Each READY message from a
  worker of group ``j`` increments ``r_j``; when ``r_j == |V_j|`` the server
  sends EXECUTE to the whole group, resets ``r_j``, the group performs one
  over-the-air aggregation and the global round counter ``t`` advances.
* Workers outside the aggregating group keep their stale local models; the
  staleness of round ``t`` is ``τ_t = t − (version last received by the
  aggregating group) − 1``... in the paper's Fig. 2 convention, simply the
  number of global updates that happened since the group last received the
  global model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["GroupState", "AggregationEvent", "GroupAsyncScheduler"]


@dataclass
class GroupState:
    """Per-group bookkeeping at the parameter server.

    ``members`` is either a Python list (legacy strategies) or an int64
    array (the XL-scale contiguous strategy); both index per-worker
    arrays directly and neither is copied per round.
    """

    group_id: int
    members: Union[List[int], np.ndarray]
    ready_count: int = 0
    ready_workers: set = field(default_factory=set)
    last_received_version: int = 0   # global round index the group last pulled
    aggregations: int = 0

    def __post_init__(self) -> None:
        if len(self.members) == 0:
            raise ValueError("a group must have at least one member")
        if isinstance(self.members, np.ndarray):
            if np.unique(self.members).size != self.members.size:
                raise ValueError("duplicate workers in group")
        elif len(set(self.members)) != len(self.members):
            raise ValueError("duplicate workers in group")

    @property
    def size(self) -> int:
        return len(self.members)

    def is_complete(self) -> bool:
        return self.ready_count >= self.size

    def reset_ready(self) -> None:
        self.ready_count = 0
        self.ready_workers.clear()


@dataclass
class AggregationEvent:
    """Record of one global update performed by a group."""

    round_index: int          # t, 1-based as in the paper
    group_id: int
    staleness: int            # τ_t
    member_ids: Union[List[int], np.ndarray]
    base_version: int         # global model version the group trained from


class GroupAsyncScheduler:
    """Server-side state machine for grouping-asynchronous aggregation.

    The scheduler is agnostic to time: callers (the trainers or the
    discrete-event simulator) decide *when* READY messages arrive; the
    scheduler decides *what* happens — whether a group became complete,
    what the round index and staleness of the resulting aggregation are,
    and which global-model version each group currently holds.
    """

    def __init__(self, groups: Sequence[Sequence[int]]) -> None:
        if len(groups) == 0:
            raise ValueError("at least one group is required")
        self._groups: List[GroupState] = []
        for gid, members in enumerate(groups):
            if not isinstance(members, np.ndarray):
                members = list(members)
            self._groups.append(GroupState(group_id=gid, members=members))
        # Cross-group overlap check + worker->group map without per-worker
        # Python objects (the construction hotspot at 10k+ workers): the
        # map is a pair of sorted int64 arrays queried by binary search,
        # not a dict of Python ints.
        arrays = [
            np.asarray(state.members, dtype=np.int64) for state in self._groups
        ]
        flat = np.concatenate(arrays)
        owners = np.repeat(
            np.arange(len(arrays), dtype=np.int64), [a.size for a in arrays]
        )
        order = np.argsort(flat, kind="stable")
        sorted_ids = flat[order]
        dupes = sorted_ids[1:][sorted_ids[1:] == sorted_ids[:-1]]
        if dupes.size:
            overlap = np.unique(dupes).tolist()
            raise ValueError(
                f"workers assigned to multiple groups: {sorted(overlap)}"
            )
        self._worker_ids = sorted_ids
        self._worker_owners = owners[order]
        self._round: int = 0
        self._history: List[AggregationEvent] = []

    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self._groups)

    @property
    def current_round(self) -> int:
        """Number of global updates performed so far (``t`` in the paper)."""
        return self._round

    @property
    def history(self) -> List[AggregationEvent]:
        return list(self._history)

    def group(self, group_id: int) -> GroupState:
        if not 0 <= group_id < len(self._groups):
            raise KeyError(f"unknown group {group_id}")
        return self._groups[group_id]

    def group_of(self, worker_id: int) -> int:
        i = int(np.searchsorted(self._worker_ids, worker_id))
        if i >= self._worker_ids.size or self._worker_ids[i] != worker_id:
            raise KeyError(f"worker {worker_id} belongs to no group")
        return int(self._worker_owners[i])

    def workers(self) -> List[int]:
        return self._worker_ids.tolist()

    # ------------------------------------------------------------------
    def receive_ready(self, worker_id: int) -> Optional[int]:
        """Process a READY message (Alg. 1 lines 17-29).

        Returns the group id if the group just became complete (the caller
        should then send EXECUTE and call :meth:`complete_aggregation`),
        otherwise ``None``.
        """
        gid = self.group_of(worker_id)
        state = self._groups[gid]
        if worker_id in state.ready_workers:
            raise ValueError(
                f"worker {worker_id} sent READY twice in the same group round"
            )
        state.ready_workers.add(worker_id)
        state.ready_count += 1
        if state.is_complete():
            return gid
        return None

    def receive_group_ready(self, group_id: int) -> int:
        """Process the simultaneous READY of an entire group in O(1).

        The discrete-event loop pops one completion event per group, so
        every member's READY arrives at the same simulated instant; this
        single transition replaces ``size`` :meth:`receive_ready` calls
        (a per-member hotspot at 10k+ workers).  The group must have no
        straggling partial READY state — mixing the per-worker and
        group-level APIs within one group round is an error.
        """
        state = self.group(group_id)
        if state.ready_count != 0:
            raise RuntimeError(
                f"group {group_id} already has {state.ready_count} partial "
                "READY messages; group-level READY requires a clean round"
            )
        state.ready_count = state.size
        return group_id

    def complete_aggregation(self, group_id: int) -> AggregationEvent:
        """Finalize the global update triggered by ``group_id``.

        Advances the global round, computes the group's staleness
        ``τ_t = t − l_t − 1`` where ``l_t`` is the round at which the group
        last received the global model (0 before its first participation),
        resets the READY counter and records the group as now holding the
        new global model version.
        """
        state = self.group(group_id)
        if not state.is_complete():
            raise RuntimeError(
                f"group {group_id} is not complete "
                f"({state.ready_count}/{state.size} READY messages)"
            )
        self._round += 1
        t = self._round
        base_version = state.last_received_version
        staleness = max(0, t - base_version - 1)
        # Array-typed groups pass through uncopied (the per-event O(size)
        # list copy matters once thousands of events accumulate).
        members = state.members
        event = AggregationEvent(
            round_index=t,
            group_id=group_id,
            staleness=staleness,
            member_ids=members if isinstance(members, np.ndarray) else list(members),
            base_version=base_version,
        )
        self._history.append(event)
        state.reset_ready()
        state.last_received_version = t
        state.aggregations += 1
        return event

    def abort_group(self, group_id: int) -> None:
        """Discard a completed group round without performing a global update.

        Used by the fault-injection layer when mid-round dropouts push a
        group below quorum: the READY state resets (the members will train
        again) but the global round counter does not advance and the
        group's held model version is unchanged — the aborted round never
        happened as far as staleness accounting is concerned.
        """
        state = self.group(group_id)
        if not state.is_complete():
            raise RuntimeError(
                f"cannot abort group {group_id}: it is not complete "
                f"({state.ready_count}/{state.size} READY messages)"
            )
        state.reset_ready()

    # ------------------------------------------------------------------
    def staleness_profile(self) -> List[int]:
        """Staleness of every aggregation performed so far."""
        return [e.staleness for e in self._history]

    def max_staleness(self) -> int:
        """Observed τ_max (0 when no aggregation has happened yet)."""
        profile = self.staleness_profile()
        return max(profile) if profile else 0

    def participation_counts(self) -> List[int]:
        """Number of aggregations performed by each group."""
        return [g.aggregations for g in self._groups]
