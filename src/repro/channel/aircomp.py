"""Over-the-air computation (AirComp) over a noisy fading MAC.

Implements the analog aggregation of the paper's Eqs. (6), (9) and (10):

* each participating worker pre-equalizes its transmission with power
  ``p_i^t = d_i σ_t / h_i^t`` (Eq. 6), so the channel attenuation cancels
  and the parameter server receives ``Σ d_i σ_t w_i^t + z_t`` (Eq. 9) where
  ``z_t`` is AWGN with per-entry variance σ₀²;
* the parameter server divides by ``D √η_t`` (η_t is the denoising factor)
  and mixes the result with the previous global model using the group's
  data share (Eq. 10).

The per-round aggregation error term ``C_t = (σ_t/√η_t − 1)² W_t² +
σ₀²/(D_{j_t}² η_t)`` from Eq. (30) is also exposed so that the power-control
module and the convergence-bound utilities can share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "AirCompResult",
    "AirCompWorkspace",
    "aircomp_aggregate",
    "aircomp_aggregate_reference",
    "ideal_group_average",
    "ideal_group_average_reference",
    "aggregation_error_term",
    "aircomp_latency",
]


@dataclass
class AirCompResult:
    """Outcome of one over-the-air aggregation.

    Attributes
    ----------
    received:
        The raw received signal ``y_t`` (superposed analog waveform + noise).
    estimate:
        The server-side estimate of the weighted group model,
        ``y_t / (D_j √η_t)`` — i.e. the noisy version of
        ``Σ_i (d_i / D_j) w_i``.
    transmit_powers:
        Per-worker power scaling ``p_i = d_i σ / h_i`` actually used.
    transmit_energies:
        Per-worker transmit energy ``E_i = ||p_i w_i||²`` (Eq. 7).
    noise_norm:
        Euclidean norm of the injected AWGN vector (diagnostics).
    """

    received: np.ndarray
    estimate: np.ndarray
    transmit_powers: np.ndarray
    transmit_energies: np.ndarray
    noise_norm: float


class AirCompWorkspace:
    """Pre-allocated O(q) buffers for the aggregation hot path.

    A trainer owns one workspace and passes it to every
    :func:`aircomp_aggregate` call, so steady-state rounds perform zero
    model-sized allocations.  The buffers are lazily (re)sized on first use
    or when the model dimension / dtype changes.  The arrays stored in the
    returned :class:`AirCompResult` are views of these buffers: they are
    only valid until the next aggregation using the same workspace.
    """

    def __init__(self) -> None:
        self.received: np.ndarray | None = None
        self.estimate: np.ndarray | None = None
        self.noise: np.ndarray | None = None

    def bind(self, dim: int, dtype: np.dtype) -> None:
        if (
            self.received is None
            or self.received.shape != (dim,)
            or self.received.dtype != dtype
        ):
            self.received = np.empty(dim, dtype=dtype)
            self.estimate = np.empty(dim, dtype=dtype)
            self.noise = np.zeros(dim, dtype=dtype)


def _stack_models(models: Sequence[np.ndarray]) -> np.ndarray:
    """Stack per-worker flat vectors into a C-contiguous ``(G, q)`` matrix.

    Accepts either an already-stacked 2-D array (the trainers' hot path —
    no copy) or any sequence of equal-length 1-D vectors.
    """
    if isinstance(models, np.ndarray) and models.ndim == 2:
        stacked = models
    else:
        rows = [np.asarray(m).ravel() for m in models]
        dim = rows[0].size
        if any(r.size != dim for r in rows):
            raise ValueError("all model vectors must have the same dimension")
        stacked = np.stack(rows)
    if stacked.dtype not in (np.float32, np.float64):
        stacked = stacked.astype(np.float64)
    return np.ascontiguousarray(stacked)


def ideal_group_average(
    models: Sequence[np.ndarray],
    data_sizes: Sequence[float],
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Error-free data-weighted average of the group's local models.

    This is ``w_t^j = Σ_i (d_i / D_j) w_i`` (Eq. 15), the quantity AirComp
    approximates.  Used as the ground truth in tests and for the "error-free"
    ablation.  Vectorized as a single weighted matmul; pass ``out`` to reuse
    a caller-owned buffer.
    """
    if len(models) == 0:
        raise ValueError("at least one model is required")
    if len(models) != len(data_sizes):
        raise ValueError("models and data_sizes length mismatch")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    if np.any(sizes <= 0):
        raise ValueError("data sizes must be positive")
    stacked = _stack_models(models)
    weights = (sizes / sizes.sum()).astype(stacked.dtype)
    if out is None:
        return weights @ stacked
    np.dot(weights, stacked, out=out)
    return out


def ideal_group_average_reference(
    models: Sequence[np.ndarray], data_sizes: Sequence[float]
) -> np.ndarray:
    """The seed's per-member accumulation loop, kept as the equivalence and
    benchmark baseline for :func:`ideal_group_average`."""
    if len(models) == 0:
        raise ValueError("at least one model is required")
    if len(models) != len(data_sizes):
        raise ValueError("models and data_sizes length mismatch")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    if np.any(sizes <= 0):
        raise ValueError("data sizes must be positive")
    total = sizes.sum()
    acc = np.zeros_like(np.asarray(models[0], dtype=np.float64))
    for w, d in zip(models, sizes):
        acc += (d / total) * np.asarray(w, dtype=np.float64)
    return acc


def _validate_aggregate_args(
    models, data_sizes, channel_gains, sigma_t, eta_t, noise_std
) -> tuple:
    if len(models) == 0:
        raise ValueError("at least one worker must participate")
    if not (len(models) == len(data_sizes) == len(channel_gains)):
        raise ValueError("models, data_sizes and channel_gains length mismatch")
    if sigma_t <= 0:
        raise ValueError(f"sigma_t must be positive, got {sigma_t}")
    if eta_t <= 0:
        raise ValueError(f"eta_t must be positive, got {eta_t}")
    if noise_std < 0:
        raise ValueError("noise_std must be non-negative")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    if np.any(sizes <= 0):
        raise ValueError("data sizes must be positive")
    if np.any(gains <= 0):
        raise ValueError("channel gains must be positive")
    return sizes, gains


def aircomp_aggregate(
    models: Sequence[np.ndarray],
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    sigma_t: float,
    eta_t: float,
    noise_std: float,
    rng: np.random.Generator,
    total_data_size: float | None = None,
    workspace: AirCompWorkspace | None = None,
) -> AirCompResult:
    """Simulate one over-the-air aggregation over the noisy fading MAC.

    The superposition ``Σ d_i σ_t w_i`` is computed as a single weighted
    matmul over the stacked ``(G, q)`` model matrix instead of a per-member
    accumulation loop, and per-worker energies come from one row-wise
    squared-norm ``einsum`` — see :func:`aircomp_aggregate_reference` for
    the equivalent (and equivalence-tested) scalar formulation.

    Parameters
    ----------
    models:
        Flat local model vectors ``w_i^t`` of the participating workers —
        either a sequence of 1-D vectors or an already stacked ``(G, q)``
        array (no copy in that case).
    data_sizes:
        Per-worker data sizes ``d_i``.
    channel_gains:
        Per-worker channel gains ``h_i^t`` for this round.
    sigma_t:
        Power scaling factor σ_t (common to the group in this round).
    eta_t:
        Denoising factor η_t at the parameter server.
    noise_std:
        Standard deviation σ₀ of the AWGN per vector entry.
    rng:
        Random generator used to draw the noise vector.
    total_data_size:
        ``D_j`` used for normalisation.  Defaults to ``sum(data_sizes)``
        (the group total); passing the global ``D`` instead reproduces the
        paper's Eq. (10) normalisation before the β_j re-scaling.
    workspace:
        Optional :class:`AirCompWorkspace` of caller-owned buffers; when
        given, no O(q) arrays are allocated and the result's ``received`` /
        ``estimate`` are views valid until the workspace is reused.

    Returns
    -------
    AirCompResult
        The received signal, the normalized estimate and per-worker energy.
    """
    sizes, gains = _validate_aggregate_args(
        models, data_sizes, channel_gains, sigma_t, eta_t, noise_std
    )
    stacked = _stack_models(models)
    dim = stacked.shape[1]
    dtype = stacked.dtype

    if workspace is None:
        workspace = AirCompWorkspace()
    workspace.bind(dim, dtype)
    received, estimate, noise = workspace.received, workspace.estimate, workspace.noise

    powers = sizes * sigma_t / gains  # Eq. (6)
    # Pre-equalization cancels h_i: the channel applies h_i, the worker
    # transmits p_i * w_i, and the PS receives Σ h_i p_i w_i = Σ d_i σ w_i.
    weights = (sizes * sigma_t).astype(dtype)
    np.dot(weights, stacked, out=received)
    # Eq. (7): E_i = ||p_i w_i||² = p_i² ||w_i||², via one row-wise sumsq.
    energies = powers**2 * np.einsum("ij,ij->i", stacked, stacked, dtype=np.float64)

    if noise_std > 0:
        rng.standard_normal(dim, dtype=dtype, out=noise)
        noise *= dtype.type(noise_std)
        received += noise
        noise_norm = float(np.linalg.norm(noise))
    else:
        noise.fill(0.0)
        noise_norm = 0.0

    denom = float(total_data_size) if total_data_size is not None else float(sizes.sum())
    if denom <= 0:
        raise ValueError("total data size must be positive")
    np.divide(received, denom * np.sqrt(eta_t), out=estimate)

    return AirCompResult(
        received=received,
        estimate=estimate,
        transmit_powers=powers,
        transmit_energies=np.asarray(energies, dtype=np.float64),
        noise_norm=noise_norm,
    )


def aircomp_aggregate_reference(
    models: Sequence[np.ndarray],
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    sigma_t: float,
    eta_t: float,
    noise_std: float,
    rng: np.random.Generator,
    total_data_size: float | None = None,
) -> AirCompResult:
    """The seed's per-member accumulation loop (one O(q) temporary per
    member), kept as the equivalence and benchmark baseline for
    :func:`aircomp_aggregate`.  Consumes the RNG identically."""
    sizes, gains = _validate_aggregate_args(
        models, data_sizes, channel_gains, sigma_t, eta_t, noise_std
    )
    dim = np.asarray(models[0]).size
    received = np.zeros(dim, dtype=np.float64)
    powers = sizes * sigma_t / gains  # Eq. (6)
    energies = np.empty(len(models), dtype=np.float64)
    for i, w in enumerate(models):
        vec = np.asarray(w, dtype=np.float64).ravel()
        if vec.size != dim:
            raise ValueError("all model vectors must have the same dimension")
        received += sizes[i] * sigma_t * vec
        energies[i] = float(np.sum((powers[i] * vec) ** 2))  # Eq. (7)

    noise = np.zeros(dim, dtype=np.float64)
    if noise_std > 0:
        noise = rng.standard_normal(dim) * noise_std
        received = received + noise

    denom = float(total_data_size) if total_data_size is not None else float(sizes.sum())
    if denom <= 0:
        raise ValueError("total data size must be positive")
    estimate = received / (denom * np.sqrt(eta_t))

    return AirCompResult(
        received=received,
        estimate=estimate,
        transmit_powers=powers,
        transmit_energies=energies,
        noise_norm=float(np.linalg.norm(noise)),
    )


def aggregation_error_term(
    sigma_t: float,
    eta_t: float,
    model_bound: float,
    noise_var: float,
    group_data_size: float,
) -> float:
    """The per-round error term ``C_t`` of Eq. (30).

    ``C_t = (σ_t/√η_t − 1)² W_t² + σ₀² / (D_{j_t}² η_t)``

    where ``W_t`` bounds the local model norms and ``σ₀²`` is the AWGN
    variance.  Minimizing this over (σ_t, η_t) is the power-control problem
    P3 that Algorithm 2 solves.
    """
    if sigma_t <= 0 or eta_t <= 0:
        raise ValueError("sigma_t and eta_t must be positive")
    if model_bound < 0 or noise_var < 0:
        raise ValueError("model_bound and noise_var must be non-negative")
    if group_data_size <= 0:
        raise ValueError("group_data_size must be positive")
    mismatch = sigma_t / np.sqrt(eta_t) - 1.0
    return float(
        mismatch**2 * model_bound**2 + noise_var / (group_data_size**2 * eta_t)
    )


def aircomp_latency(
    model_dimension: int, num_subchannels: int, symbol_duration: float
) -> float:
    """Model-upload latency of one over-the-air aggregation (Eq. 33).

    ``L_u = (q / R) · L_s`` — the whole group transmits concurrently, so the
    latency depends only on the model dimension ``q``, the number of
    sub-channels ``R`` and the OFDM symbol duration ``L_s``, *not* on the
    number of participating workers.  That independence is exactly what
    gives AirComp its scalability advantage in Fig. 10.
    """
    if model_dimension <= 0:
        raise ValueError("model_dimension must be positive")
    if num_subchannels <= 0:
        raise ValueError("num_subchannels must be positive")
    if symbol_duration <= 0:
        raise ValueError("symbol_duration must be positive")
    return float(np.ceil(model_dimension / num_subchannels) * symbol_duration)
