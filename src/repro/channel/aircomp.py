"""Over-the-air computation (AirComp) over a noisy fading MAC.

Implements the analog aggregation of the paper's Eqs. (6), (9) and (10):

* each participating worker pre-equalizes its transmission with power
  ``p_i^t = d_i σ_t / h_i^t`` (Eq. 6), so the channel attenuation cancels
  and the parameter server receives ``Σ d_i σ_t w_i^t + z_t`` (Eq. 9) where
  ``z_t`` is AWGN with per-entry variance σ₀²;
* the parameter server divides by ``D √η_t`` (η_t is the denoising factor)
  and mixes the result with the previous global model using the group's
  data share (Eq. 10).

The per-round aggregation error term ``C_t = (σ_t/√η_t − 1)² W_t² +
σ₀²/(D_{j_t}² η_t)`` from Eq. (30) is also exposed so that the power-control
module and the convergence-bound utilities can share one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "AirCompResult",
    "aircomp_aggregate",
    "ideal_group_average",
    "aggregation_error_term",
    "aircomp_latency",
]


@dataclass
class AirCompResult:
    """Outcome of one over-the-air aggregation.

    Attributes
    ----------
    received:
        The raw received signal ``y_t`` (superposed analog waveform + noise).
    estimate:
        The server-side estimate of the weighted group model,
        ``y_t / (D_j √η_t)`` — i.e. the noisy version of
        ``Σ_i (d_i / D_j) w_i``.
    transmit_powers:
        Per-worker power scaling ``p_i = d_i σ / h_i`` actually used.
    transmit_energies:
        Per-worker transmit energy ``E_i = ||p_i w_i||²`` (Eq. 7).
    noise_norm:
        Euclidean norm of the injected AWGN vector (diagnostics).
    """

    received: np.ndarray
    estimate: np.ndarray
    transmit_powers: np.ndarray
    transmit_energies: np.ndarray
    noise_norm: float


def ideal_group_average(
    models: Sequence[np.ndarray], data_sizes: Sequence[float]
) -> np.ndarray:
    """Error-free data-weighted average of the group's local models.

    This is ``w_t^j = Σ_i (d_i / D_j) w_i`` (Eq. 15), the quantity AirComp
    approximates.  Used as the ground truth in tests and for the "error-free"
    ablation.
    """
    if len(models) == 0:
        raise ValueError("at least one model is required")
    if len(models) != len(data_sizes):
        raise ValueError("models and data_sizes length mismatch")
    sizes = np.asarray(data_sizes, dtype=np.float64)
    if np.any(sizes <= 0):
        raise ValueError("data sizes must be positive")
    total = sizes.sum()
    acc = np.zeros_like(np.asarray(models[0], dtype=np.float64))
    for w, d in zip(models, sizes):
        acc += (d / total) * np.asarray(w, dtype=np.float64)
    return acc


def aircomp_aggregate(
    models: Sequence[np.ndarray],
    data_sizes: Sequence[float],
    channel_gains: Sequence[float],
    sigma_t: float,
    eta_t: float,
    noise_std: float,
    rng: np.random.Generator,
    total_data_size: float | None = None,
) -> AirCompResult:
    """Simulate one over-the-air aggregation over the noisy fading MAC.

    Parameters
    ----------
    models:
        Flat local model vectors ``w_i^t`` of the participating workers.
    data_sizes:
        Per-worker data sizes ``d_i``.
    channel_gains:
        Per-worker channel gains ``h_i^t`` for this round.
    sigma_t:
        Power scaling factor σ_t (common to the group in this round).
    eta_t:
        Denoising factor η_t at the parameter server.
    noise_std:
        Standard deviation σ₀ of the AWGN per vector entry.
    rng:
        Random generator used to draw the noise vector.
    total_data_size:
        ``D_j`` used for normalisation.  Defaults to ``sum(data_sizes)``
        (the group total); passing the global ``D`` instead reproduces the
        paper's Eq. (10) normalisation before the β_j re-scaling.

    Returns
    -------
    AirCompResult
        The received signal, the normalized estimate and per-worker energy.
    """
    if len(models) == 0:
        raise ValueError("at least one worker must participate")
    if not (len(models) == len(data_sizes) == len(channel_gains)):
        raise ValueError("models, data_sizes and channel_gains length mismatch")
    if sigma_t <= 0:
        raise ValueError(f"sigma_t must be positive, got {sigma_t}")
    if eta_t <= 0:
        raise ValueError(f"eta_t must be positive, got {eta_t}")
    if noise_std < 0:
        raise ValueError("noise_std must be non-negative")

    sizes = np.asarray(data_sizes, dtype=np.float64)
    gains = np.asarray(channel_gains, dtype=np.float64)
    if np.any(sizes <= 0):
        raise ValueError("data sizes must be positive")
    if np.any(gains <= 0):
        raise ValueError("channel gains must be positive")

    dim = np.asarray(models[0]).size
    received = np.zeros(dim, dtype=np.float64)
    powers = sizes * sigma_t / gains  # Eq. (6)
    energies = np.empty(len(models), dtype=np.float64)
    for i, w in enumerate(models):
        vec = np.asarray(w, dtype=np.float64).ravel()
        if vec.size != dim:
            raise ValueError("all model vectors must have the same dimension")
        # Pre-equalization cancels h_i: the channel applies h_i, the worker
        # transmits p_i * w_i, and the PS receives h_i * p_i * w_i = d_i σ w_i.
        received += sizes[i] * sigma_t * vec
        energies[i] = float(np.sum((powers[i] * vec) ** 2))  # Eq. (7)

    noise = np.zeros(dim, dtype=np.float64)
    if noise_std > 0:
        noise = rng.standard_normal(dim) * noise_std
        received = received + noise

    denom = float(total_data_size) if total_data_size is not None else float(sizes.sum())
    if denom <= 0:
        raise ValueError("total data size must be positive")
    estimate = received / (denom * np.sqrt(eta_t))

    return AirCompResult(
        received=received,
        estimate=estimate,
        transmit_powers=powers,
        transmit_energies=energies,
        noise_norm=float(np.linalg.norm(noise)),
    )


def aggregation_error_term(
    sigma_t: float,
    eta_t: float,
    model_bound: float,
    noise_var: float,
    group_data_size: float,
) -> float:
    """The per-round error term ``C_t`` of Eq. (30).

    ``C_t = (σ_t/√η_t − 1)² W_t² + σ₀² / (D_{j_t}² η_t)``

    where ``W_t`` bounds the local model norms and ``σ₀²`` is the AWGN
    variance.  Minimizing this over (σ_t, η_t) is the power-control problem
    P3 that Algorithm 2 solves.
    """
    if sigma_t <= 0 or eta_t <= 0:
        raise ValueError("sigma_t and eta_t must be positive")
    if model_bound < 0 or noise_var < 0:
        raise ValueError("model_bound and noise_var must be non-negative")
    if group_data_size <= 0:
        raise ValueError("group_data_size must be positive")
    mismatch = sigma_t / np.sqrt(eta_t) - 1.0
    return float(
        mismatch**2 * model_bound**2 + noise_var / (group_data_size**2 * eta_t)
    )


def aircomp_latency(
    model_dimension: int, num_subchannels: int, symbol_duration: float
) -> float:
    """Model-upload latency of one over-the-air aggregation (Eq. 33).

    ``L_u = (q / R) · L_s`` — the whole group transmits concurrently, so the
    latency depends only on the model dimension ``q``, the number of
    sub-channels ``R`` and the OFDM symbol duration ``L_s``, *not* on the
    number of participating workers.  That independence is exactly what
    gives AirComp its scalability advantage in Fig. 10.
    """
    if model_dimension <= 0:
        raise ValueError("model_dimension must be positive")
    if num_subchannels <= 0:
        raise ValueError("num_subchannels must be positive")
    if symbol_duration <= 0:
        raise ValueError("symbol_duration must be positive")
    return float(np.ceil(model_dimension / num_subchannels) * symbol_duration)
