"""Block-fading wireless channel gain models.

The paper assumes each worker ``v_i`` has a channel gain ``h_i^t`` to the
parameter server that remains constant within a communication round (block
fading) and varies across rounds.  We provide the two standard models used
in the AirComp-FL literature:

* **Rayleigh fading** — the gain magnitude is Rayleigh distributed,
  ``h = |g|`` with ``g ~ CN(0, h̄²)``; this is the default.
* **Static gains** — per-worker constant gains drawn once (useful for
  deterministic unit tests and for isolating the effect of fading in
  ablations).

Both models also embed a distance-based path-loss component so that workers
are heterogeneous in link quality as well as in compute speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..registry import get as _get_component
from ..registry import register as _register

__all__ = ["ChannelModel", "RayleighFading", "StaticChannel", "build_channel"]


class ChannelModel:
    """Interface: produce per-worker channel gains for a communication round."""

    num_workers: int

    def gains(self, round_index: int) -> np.ndarray:
        """Return an array of ``num_workers`` positive channel gains.

        The same ``round_index`` always returns the same gains (block
        fading), which the power-control algorithm relies on: it computes
        σ_t from the gains of round ``t`` and the workers then transmit with
        those same gains.
        """
        raise NotImplementedError


@_register("channel", "rayleigh")
@dataclass
class RayleighFading(ChannelModel):
    """Rayleigh block-fading with per-worker average path gain.

    Parameters
    ----------
    num_workers:
        Number of workers.
    mean_gain:
        Average channel gain scale (paper-normalized to ~1).
    pathloss_spread:
        Multiplicative spread of per-worker average gains; worker ``i``'s
        average gain is drawn log-uniformly in
        ``[mean_gain / spread, mean_gain * spread]``.
    seed:
        Seed for both the static path loss and the per-round fading.
    """

    num_workers: int
    mean_gain: float = 1.0
    pathloss_spread: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.mean_gain <= 0:
            raise ValueError("mean_gain must be positive")
        if self.pathloss_spread < 1.0:
            raise ValueError("pathloss_spread must be >= 1")
        rng = np.random.default_rng(self.seed)
        log_spread = np.log(self.pathloss_spread)
        self._avg_gain = self.mean_gain * np.exp(
            rng.uniform(-log_spread, log_spread, size=self.num_workers)
        )

    @property
    def average_gains(self) -> np.ndarray:
        """Per-worker long-term average gains (path loss component)."""
        return self._avg_gain.copy()

    def gains(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        # Derive a per-round generator so gains are reproducible and
        # independent across rounds without storing any history.
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, round_index, 0x5EED])
        )
        # |CN(0,1)| is Rayleigh(scale=1/sqrt(2)); normalize to unit mean.
        real = rng.standard_normal(self.num_workers)
        imag = rng.standard_normal(self.num_workers)
        rayleigh = np.sqrt(real**2 + imag**2) / np.sqrt(np.pi / 2.0)
        gains = self._avg_gain * rayleigh
        # Guard against pathologically deep fades that would blow up the
        # transmit power p_i = d_i σ / h_i in the simulation.
        return np.maximum(gains, 1e-3 * self._avg_gain)


@_register("channel", "static")
@dataclass
class StaticChannel(ChannelModel):
    """Constant per-worker channel gains (no fading)."""

    num_workers: int
    mean_gain: float = 1.0
    spread: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.mean_gain <= 0:
            raise ValueError("mean_gain must be positive")
        if self.spread < 1.0:
            raise ValueError("spread must be >= 1")
        rng = np.random.default_rng(self.seed)
        if self.spread == 1.0:
            self._gains = np.full(self.num_workers, self.mean_gain)
        else:
            log_spread = np.log(self.spread)
            self._gains = self.mean_gain * np.exp(
                rng.uniform(-log_spread, log_spread, size=self.num_workers)
            )

    def gains(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return self._gains.copy()


def build_channel(
    kind: str,
    num_workers: int,
    seed: int = 0,
    **kwargs,
) -> ChannelModel:
    """Factory for channel models (``"rayleigh"`` or ``"static"``).

    Unknown kinds raise :class:`~repro.registry.UnknownComponentError`
    (a ``KeyError``) with close-match suggestions.
    """
    cls = _get_component("channel", kind)
    return cls(num_workers=num_workers, seed=seed, **kwargs)
