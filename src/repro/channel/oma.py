"""Orthogonal multiple access (OMA) latency models.

The OMA baselines (FedAvg, TiFL) upload each worker's model over orthogonal
resources — either sequentially in time (TDMA) or over disjoint sub-carrier
sets (OFDMA).  Either way, the aggregate upload latency of a round grows
with the number of participating workers, in contrast to AirComp whose
latency is independent of it (``repro.channel.aircomp.aircomp_latency``).

The latency model follows the standard formulation used by the paper's OMA
references ([5]-[9]): each worker must deliver ``q`` model parameters of
``bits_per_param`` bits at the Shannon rate of its share of the band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["OMAConfig", "worker_upload_time", "tdma_round_time", "ofdma_round_time"]


@dataclass
class OMAConfig:
    """Link-budget parameters for OMA uploads.

    Attributes
    ----------
    bandwidth_hz:
        Total uplink bandwidth ``B`` (the paper uses 1 MHz).
    transmit_power_w:
        Worker transmit power used for the rate computation.
    noise_power_w:
        Receiver noise power over the full band.
    bits_per_param:
        Bits used to represent one model parameter (32 for float32 uploads).
    """

    bandwidth_hz: float = 1e6
    transmit_power_w: float = 1.0
    noise_power_w: float = 1e-3
    bits_per_param: int = 32

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        if self.transmit_power_w <= 0:
            raise ValueError("transmit power must be positive")
        if self.noise_power_w <= 0:
            raise ValueError("noise power must be positive")
        if self.bits_per_param <= 0:
            raise ValueError("bits_per_param must be positive")


def worker_upload_time(
    model_dimension: int,
    channel_gain: float,
    config: OMAConfig,
    bandwidth_share: float = 1.0,
) -> float:
    """Time for a single worker to upload its model over its OMA share.

    Rate = ``B_share · log2(1 + P h² / (N0 · B_share/B))`` following the
    Shannon capacity of the allocated sub-band.
    """
    if model_dimension <= 0:
        raise ValueError("model_dimension must be positive")
    if channel_gain <= 0:
        raise ValueError("channel_gain must be positive")
    if not 0 < bandwidth_share <= 1.0:
        raise ValueError("bandwidth_share must be in (0, 1]")
    band = config.bandwidth_hz * bandwidth_share
    noise = config.noise_power_w * bandwidth_share
    snr = config.transmit_power_w * channel_gain**2 / noise
    rate_bps = band * np.log2(1.0 + snr)
    bits = float(model_dimension) * config.bits_per_param
    return float(bits / rate_bps)


def tdma_round_time(
    model_dimension: int,
    channel_gains: Sequence[float],
    config: OMAConfig,
) -> float:
    """Total upload time when workers transmit one after another (TDMA).

    Each worker gets the full band for its slot; the round's upload phase is
    the *sum* of the individual upload times, so it grows linearly with the
    number of workers.
    """
    gains = np.asarray(channel_gains, dtype=np.float64)
    if gains.size == 0:
        raise ValueError("at least one worker required")
    return float(
        sum(
            worker_upload_time(model_dimension, g, config, bandwidth_share=1.0)
            for g in gains
        )
    )


def ofdma_round_time(
    model_dimension: int,
    channel_gains: Sequence[float],
    config: OMAConfig,
) -> float:
    """Total upload time when the band is split equally across workers (OFDMA).

    All workers transmit concurrently over ``1/N`` of the band each; the
    upload phase ends when the slowest worker finishes.  Because each
    worker's rate shrinks roughly with ``1/N``, this also degrades with the
    number of workers.
    """
    gains = np.asarray(channel_gains, dtype=np.float64)
    n = gains.size
    if n == 0:
        raise ValueError("at least one worker required")
    share = 1.0 / n
    return float(
        max(
            worker_upload_time(model_dimension, g, config, bandwidth_share=share)
            for g in gains
        )
    )
