"""Transmit-energy accounting for over-the-air aggregation.

The paper models the per-round transmission energy of worker ``v_i`` as

    E_i^t = || p_i^t · w_i^t ||²        (Eq. 7)

with ``p_i^t = d_i σ_t / h_i^t`` (Eq. 6), and imposes a per-round energy
budget ``E_i^t ≤ Ê_i`` (constraint 36c, default 10 J in the evaluation).
Figure 9 compares the cumulative aggregation energy of Air-FedAvg,
Air-FedGA and Dynamic at matched accuracy levels.  This module provides the
energy formula, the budget check that power control must respect, and a
small accumulator used by the trainers to produce Fig. 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "transmit_energy",
    "max_sigma_for_budget",
    "EnergyTracker",
]


def transmit_energy(
    model_vector: np.ndarray,
    data_size: float,
    channel_gain: float,
    sigma_t: float,
) -> float:
    """Per-worker transmit energy ``||p_i w_i||²`` with ``p_i = d_i σ / h_i``."""
    if data_size <= 0:
        raise ValueError("data_size must be positive")
    if channel_gain <= 0:
        raise ValueError("channel_gain must be positive")
    if sigma_t <= 0:
        raise ValueError("sigma_t must be positive")
    power = data_size * sigma_t / channel_gain
    vec = np.asarray(model_vector, dtype=np.float64)
    return float(power**2 * np.dot(vec.ravel(), vec.ravel()))


def max_sigma_for_budget(
    energy_budget: float,
    data_size: float,
    channel_gain: float,
    model_norm_bound: float,
) -> float:
    """Largest σ_t a worker can afford: ``σ ≤ h_i √Ê_i / (d_i W_t)`` (Eq. 46)."""
    if energy_budget <= 0:
        raise ValueError("energy_budget must be positive")
    if data_size <= 0:
        raise ValueError("data_size must be positive")
    if channel_gain <= 0:
        raise ValueError("channel_gain must be positive")
    if model_norm_bound <= 0:
        raise ValueError("model_norm_bound must be positive")
    return float(channel_gain * np.sqrt(energy_budget) / (data_size * model_norm_bound))


@dataclass
class EnergyTracker:
    """Accumulates per-worker and total transmit energy across rounds."""

    num_workers: int
    per_worker: np.ndarray = field(init=False)
    per_round: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.per_worker = np.zeros(self.num_workers, dtype=np.float64)

    def record_round(
        self, worker_ids: Sequence[int], energies: Sequence[float]
    ) -> float:
        """Record the energies spent by the participating workers of a round."""
        if len(worker_ids) != len(energies):
            raise ValueError("worker_ids and energies length mismatch")
        total = 0.0
        for wid, e in zip(worker_ids, energies):
            if not 0 <= wid < self.num_workers:
                raise ValueError(f"invalid worker id {wid}")
            if e < 0:
                raise ValueError("energy must be non-negative")
            self.per_worker[wid] += e
            total += e
        self.per_round.append(total)
        return total

    @property
    def total(self) -> float:
        """Total energy spent across all workers and rounds."""
        return float(self.per_worker.sum())

    def summary(self) -> Dict[str, float]:
        return {
            "total_energy_j": self.total,
            "mean_per_worker_j": float(self.per_worker.mean()),
            "max_per_worker_j": float(self.per_worker.max()),
            "rounds_recorded": float(len(self.per_round)),
        }
