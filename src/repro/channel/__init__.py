"""Wireless channel substrate: fading gains, AirComp MAC, OMA latency, energy."""

from .fading import ChannelModel, RayleighFading, StaticChannel, build_channel
from .aircomp import (
    AirCompResult,
    aircomp_aggregate,
    aircomp_latency,
    aggregation_error_term,
    ideal_group_average,
)
from .oma import OMAConfig, ofdma_round_time, tdma_round_time, worker_upload_time
from .energy import EnergyTracker, max_sigma_for_budget, transmit_energy

__all__ = [
    "ChannelModel",
    "RayleighFading",
    "StaticChannel",
    "build_channel",
    "AirCompResult",
    "aircomp_aggregate",
    "ideal_group_average",
    "aggregation_error_term",
    "aircomp_latency",
    "OMAConfig",
    "worker_upload_time",
    "tdma_round_time",
    "ofdma_round_time",
    "EnergyTracker",
    "max_sigma_for_budget",
    "transmit_energy",
]
