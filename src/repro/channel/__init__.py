"""Wireless channel substrate: fading gains, AirComp MAC, OMA latency, energy."""

from .fading import ChannelModel, RayleighFading, StaticChannel, build_channel
from .aircomp import (
    AirCompResult,
    AirCompWorkspace,
    aircomp_aggregate,
    aircomp_aggregate_reference,
    aircomp_latency,
    aggregation_error_term,
    ideal_group_average,
    ideal_group_average_reference,
)
from .oma import OMAConfig, ofdma_round_time, tdma_round_time, worker_upload_time
from .energy import EnergyTracker, max_sigma_for_budget, transmit_energy

__all__ = [
    "ChannelModel",
    "RayleighFading",
    "StaticChannel",
    "build_channel",
    "AirCompResult",
    "AirCompWorkspace",
    "aircomp_aggregate",
    "aircomp_aggregate_reference",
    "ideal_group_average",
    "ideal_group_average_reference",
    "aggregation_error_term",
    "aircomp_latency",
    "OMAConfig",
    "worker_upload_time",
    "tdma_round_time",
    "ofdma_round_time",
    "EnergyTracker",
    "max_sigma_for_budget",
    "transmit_energy",
]
