"""Model architectures used by the paper's evaluation.

The paper trains three model families:

* **LR on MNIST** — a fully connected network with two 512-unit hidden
  layers (the paper calls it "logistic regression"; its description in
  Section VI-A is an MLP).
* **CNN on MNIST / CIFAR-10** — two 5x5 convolution layers followed by two
  dense layers and a softmax output.
* **VGG-16 on ImageNet-100** — 13 convolution layers + 2 dense layers.

All models here are parameterized by input shape / width so that the
benchmarks can run scaled-down versions on synthetic data in reasonable
time while preserving the architecture family.  ``MiniVGG`` is the scaled
stand-in for VGG-16 (see DESIGN.md, substitution table).

Every model exposes:

* ``forward(x, training)`` → logits,
* ``backward(grad_logits)`` → accumulates parameter gradients,
* ``loss_and_grad(x, y)`` → convenience fused pass,
* ``parameters`` (a :class:`~repro.nn.params.ParameterSet`),
* ``get_vector()`` / ``set_vector(v)`` — flattened parameter access used by
  the channel and aggregation code.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .layers import (
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    collect_parameters)
from .losses import accuracy, softmax_cross_entropy
from .params import ParameterSet
from ..registry import get as _get_component
from ..registry import register as _register

__all__ = [
    "Model",
    "SequentialModel",
    "LogisticRegressionMLP",
    "MnistCNN",
    "CifarCNN",
    "MiniVGG",
    "build_model",
    "MODEL_REGISTRY",
]


class Model:
    """Abstract interface shared by every trainable model."""

    parameters: ParameterSet

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_logits: np.ndarray) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Convenience API used by the FL workers
    # ------------------------------------------------------------------
    def loss_and_grad(self, x: np.ndarray, y: np.ndarray) -> float:
        """Run a full forward/backward pass and return the mean loss.

        Parameter gradients are accumulated in place; callers should call
        ``zero_grad`` (via the optimizer) between batches.
        """
        logits = self.forward(x, training=True)
        loss, grad = softmax_cross_entropy(logits, y)
        self.backward(grad)
        return loss

    def evaluate(self, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> Tuple[float, float]:
        """Compute (loss, accuracy) over a dataset without touching gradients."""
        n = x.shape[0]
        if n == 0:
            return 0.0, 0.0
        total_loss = 0.0
        correct = 0.0
        for start in range(0, n, batch_size):
            xb = x[start : start + batch_size]
            yb = y[start : start + batch_size]
            logits = self.forward(xb, training=False)
            loss, _ = softmax_cross_entropy(logits, yb)
            total_loss += loss * xb.shape[0]
            correct += accuracy(logits, yb) * xb.shape[0]
        return total_loss / n, correct / n

    def get_vector(self, out: np.ndarray | None = None) -> np.ndarray:
        """Flattened copy of all parameters (the vector transmitted over MAC)."""
        return self.parameters.to_vector(out=out)

    def set_vector(self, vector: np.ndarray) -> None:
        """Load all parameters from a flat vector in place."""
        self.parameters.from_vector(vector)

    @property
    def dimension(self) -> int:
        """Model dimension ``q`` (number of scalar parameters)."""
        return self.parameters.total_size

    def zero_grad(self) -> None:
        self.parameters.zero_grad()


class SequentialModel(Model):
    """A model defined by an ordered list of layers."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers: List[Layer] = list(layers)
        self.parameters = collect_parameters(self.layers)
        # Inputs are cast to the parameter dtype so float32 simulation mode
        # keeps the whole forward/backward pass in float32.
        self._input_dtype = (
            self.parameters[0].value.dtype if len(self.parameters) else np.dtype(np.float64)
        )

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.asarray(x, dtype=self._input_dtype)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_logits: np.ndarray) -> None:
        grad = grad_logits
        for layer in reversed(self.layers):
            grad = layer.backward(grad)


class LogisticRegressionMLP(SequentialModel):
    """The paper's "LR" model: MLP with two hidden layers (default 512 units).

    Input is a flat feature vector (e.g. 784 for MNIST-shaped data).
    """

    def __init__(
        self,
        input_dim: int = 784,
        num_classes: int = 10,
        hidden: int = 512,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        layers: List[Layer] = [
            Dense("fc1", input_dim, hidden, rng),
            ReLU("relu1"),
            Dense("fc2", hidden, hidden, rng),
            ReLU("relu2"),
            Dense("out", hidden, num_classes, rng, activationless_init=True),
        ]
        super().__init__(layers)
        self.input_dim = input_dim
        self.num_classes = num_classes


class MnistCNN(SequentialModel):
    """Plain CNN for MNIST-shaped inputs (paper Section VI-A).

    Two 5x5 convolution layers (20, 50 channels by default) with 2x2 max
    pooling, followed by two dense layers and a softmax output.  ``scale``
    shrinks the channel/hidden widths proportionally so the same
    architecture runs quickly on synthetic data.
    """

    def __init__(
        self,
        image_size: int = 28,
        in_channels: int = 1,
        num_classes: int = 10,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4 for two 2x2 pools")
        rng = np.random.default_rng(seed)
        c1 = max(2, int(round(20 * scale)))
        c2 = max(2, int(round(50 * scale)))
        h1 = max(8, int(round(500 * scale)))
        spatial = image_size // 4
        flat = c2 * spatial * spatial
        layers: List[Layer] = [
            Conv2D("conv1", in_channels, c1, 5, rng, padding=2),
            ReLU("relu1"),
            MaxPool2D("pool1", 2),
            Conv2D("conv2", c1, c2, 5, rng, padding=2),
            ReLU("relu2"),
            MaxPool2D("pool2", 2),
            Flatten("flatten"),
            Dense("fc1", flat, h1, rng),
            ReLU("relu3"),
            Dense("out", h1, num_classes, rng, activationless_init=True),
        ]
        super().__init__(layers)
        self.image_size = image_size
        self.in_channels = in_channels
        self.num_classes = num_classes


class CifarCNN(SequentialModel):
    """Plain CNN for CIFAR-shaped inputs (3-channel colour images)."""

    def __init__(
        self,
        image_size: int = 32,
        in_channels: int = 3,
        num_classes: int = 10,
        scale: float = 1.0,
        seed: int = 0,
    ) -> None:
        if image_size % 4 != 0:
            raise ValueError("image_size must be divisible by 4 for two 2x2 pools")
        rng = np.random.default_rng(seed)
        c1 = max(2, int(round(32 * scale)))
        c2 = max(2, int(round(64 * scale)))
        h1 = max(8, int(round(512 * scale)))
        spatial = image_size // 4
        flat = c2 * spatial * spatial
        layers: List[Layer] = [
            Conv2D("conv1", in_channels, c1, 5, rng, padding=2),
            ReLU("relu1"),
            MaxPool2D("pool1", 2),
            Conv2D("conv2", c1, c2, 5, rng, padding=2),
            ReLU("relu2"),
            MaxPool2D("pool2", 2),
            Flatten("flatten"),
            Dense("fc1", flat, h1, rng),
            ReLU("relu3"),
            Dense("out", h1, num_classes, rng, activationless_init=True),
        ]
        super().__init__(layers)
        self.image_size = image_size
        self.in_channels = in_channels
        self.num_classes = num_classes


class MiniVGG(SequentialModel):
    """A scaled-down VGG-style network standing in for VGG-16.

    VGG-16 proper has 13 convolutional layers and ~138M parameters, which is
    impractical in a pure-NumPy substrate.  ``MiniVGG`` keeps the defining
    traits — stacked 3x3 convolutions in blocks of increasing width, each
    block ending in 2x2 max pooling, followed by two dense layers — at a
    width/depth that trains in seconds.  ``blocks`` controls depth.
    """

    def __init__(
        self,
        image_size: int = 32,
        in_channels: int = 3,
        num_classes: int = 100,
        base_channels: int = 8,
        blocks: int = 3,
        hidden: int = 64,
        seed: int = 0,
    ) -> None:
        if blocks < 1:
            raise ValueError("MiniVGG requires at least one block")
        if image_size % (2 ** blocks) != 0:
            raise ValueError(
                f"image_size {image_size} must be divisible by 2**blocks={2 ** blocks}"
            )
        rng = np.random.default_rng(seed)
        layers: List[Layer] = []
        channels = in_channels
        width = base_channels
        for b in range(blocks):
            layers.append(Conv2D(f"block{b + 1}.conv1", channels, width, 3, rng, padding=1))
            layers.append(ReLU(f"block{b + 1}.relu1"))
            layers.append(Conv2D(f"block{b + 1}.conv2", width, width, 3, rng, padding=1))
            layers.append(ReLU(f"block{b + 1}.relu2"))
            layers.append(MaxPool2D(f"block{b + 1}.pool", 2))
            channels = width
            width *= 2
        spatial = image_size // (2 ** blocks)
        flat = channels * spatial * spatial
        layers.extend(
            [
                Flatten("flatten"),
                Dense("fc1", flat, hidden, rng),
                ReLU("fc1.relu"),
                Dense("fc2", hidden, hidden, rng),
                ReLU("fc2.relu"),
                Dense("out", hidden, num_classes, rng, activationless_init=True),
            ]
        )
        super().__init__(layers)
        self.image_size = image_size
        self.in_channels = in_channels
        self.num_classes = num_classes


# ----------------------------------------------------------------------
# Registry used by the experiment harness
# ----------------------------------------------------------------------
def build_model(name: str, **kwargs) -> Model:
    """Construct a model by registry name.

    Recognized names: ``"lr"``, ``"mnist_cnn"``, ``"cifar_cnn"``,
    ``"mini_vgg"``.  Unknown names raise
    :class:`~repro.registry.UnknownComponentError` (a ``KeyError``) with
    close-match suggestions.
    """
    return _get_component("model", name)(**kwargs)


#: Deprecation shim: the ``"model"`` kind now lives in
#: :mod:`repro.registry`; this dict mirrors it for legacy callers.
MODEL_REGISTRY = {
    "lr": _register("model", "lr")(LogisticRegressionMLP),
    "mnist_cnn": _register("model", "mnist_cnn")(MnistCNN),
    "cifar_cnn": _register("model", "cifar_cnn")(CifarCNN),
    "mini_vgg": _register("model", "mini_vgg")(MiniVGG),
}
