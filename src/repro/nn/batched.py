"""Vectorized multi-worker execution engine (group-batched local training).

Every member of a federated group starts its local update from the *same*
base model vector, so the G per-worker SGD runs are structurally identical —
only the mini-batches (and, after the first step, the diverged parameters)
differ.  The scalar path in :meth:`repro.fl.base.BaseTrainer.local_update`
pays the full Python/NumPy dispatch overhead G times per round; this module
instead stacks the per-worker parameters into leading-axis tensors (Dense
weights become ``(G, in, out)``, Conv2D weights ``(G, C_out, C_in, kh, kw)``)
and runs **one** batched matmul per layer per SGD step for the whole group.

Kernels are composed through a registry: each supported layer type maps to a
:class:`BatchedKernel` factory via :func:`register_batched_kernel`, and
:meth:`BatchedWorkerEngine.try_build` succeeds exactly when every layer of a
:class:`~repro.nn.models.SequentialModel` has a registered kernel.  Built-in
kernels cover :class:`~repro.nn.layers.Dense`, :class:`~repro.nn.layers.ReLU`,
:class:`~repro.nn.layers.Flatten`, :class:`~repro.nn.layers.Conv2D` (batched
im2col — the ``(N, C, H, W)`` column transform of ``nn/layers.py`` lifted to a
``(G, N, C, H, W)`` leading group axis and contracted as one grouped matmul
over the ``(G, q_cols, k)`` column tensor), :class:`~repro.nn.layers.MaxPool2D`
(grouped argmax mask) and :class:`~repro.nn.layers.Dropout` — i.e. every
layer the paper's LR/CNN/MiniVGG workloads use.  Models containing other
(custom) layers are reported as unsupported and the trainers fall back to
the scalar per-worker path.

Multiprocess support (see :mod:`repro.parallel` and ``docs/API.md``):
:meth:`BatchedWorkerEngine.build_spec` returns a picklable
:class:`EngineSpec` from which pool workers rebuild the engine in their
own process; :func:`shared_stack_view` wraps externally owned memory
(e.g. ``multiprocessing.shared_memory``) as a ``(G, q)`` output stack the
engine writes into directly (buffer donation via ``run_group(out=...)``);
the ``pad_to`` argument of :meth:`BatchedWorkerEngine.run_group` pins a
shard of a ragged group to the full group's padded batch dimension so
sharded execution reproduces the serial GEMM shapes bit for bit; and
:func:`model_shard_safe` reports whether a model's group training may be
split across processes at all (active Dropout may not — its mask stream
spans the whole group).

Numerical contract: for a given ``(seed, worker_id, round_index)`` the
engine draws exactly the same mini-batch indices as the scalar path and
performs the same sequence of per-worker matmul/elementwise operations, so
the stacked results match the sequential reference to ~1e-9 per parameter
in float64 (bit-identical up to BLAS reduction-order differences; with
uniform per-worker batch sizes the per-slice GEMM shapes equal the scalar
shapes and the match is bit-for-bit).  Dropout kernels consume the layer's
own random stream in the scalar path's worker-major order, so dropout
models keep the same equivalence guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .layers import Conv2D, Dense, Dropout, Flatten, Layer, MaxPool2D, ReLU
from .models import Model, SequentialModel

__all__ = [
    "BatchedKernel",
    "BatchedWorkerEngine",
    "EngineSpec",
    "StepTransform",
    "batched_layer_supported",
    "model_shard_safe",
    "register_batched_kernel",
    "shared_stack_view",
]


@dataclass(frozen=True)
class StepTransform:
    """Per-SGD-step affine parameter correction applied around the update.

    Mechanism families with a regularized local objective (FedProx's
    proximal term, FedDyn's drift correction) modify the plain SGD step

        ``w ← w − lr · ∇f(w)``

    into an affine variant

        ``w ← scale · w − lr · ∇f(w) + offset``

    where the gradient is evaluated at the *pre-scale* parameters.  Both
    execution paths (the batched engine and the scalar per-worker loop)
    apply the same three element-wise stages in the same order — scale the
    parameters, take the SGD step, add the offset — so batched and scalar
    runs of a transformed mechanism stay bit-identical in float64, exactly
    like the untransformed path.

    ``offset`` is a flat model-vector array: ``(q,)`` when every group
    member shares the correction (FedProx: ``lr·mu·base``) or ``(G, q)``
    with one row per dispatched worker (FedDyn: ``lr·(λ·base + h_i)``).
    ``None`` offset / ``scale == 1.0`` stages are skipped entirely, and a
    ``None`` transform is the legacy code path, untouched.
    """

    scale: float = 1.0
    offset: Optional[np.ndarray] = None

    def rows(self, index) -> "StepTransform":
        """The transform restricted to a subset/slice of group rows."""
        if self.offset is None or self.offset.ndim == 1:
            return self
        return StepTransform(scale=self.scale, offset=self.offset[index])


class BatchedKernel(Protocol):
    """Protocol implemented by batched (leading group axis) layer kernels.

    A kernel operates on ``(G, B, ...)`` tensors where ``G`` is the group
    size and ``B`` the (padded) per-worker mini-batch size.

    Required interface:

    * ``param_size`` — number of scalar parameters the kernel owns in the
      flat model vector (0 for activation/reshape kernels);
    * ``forward(x)`` / ``backward(grad_out)`` — stacked forward/backward.

    Parametric kernels (``param_size > 0``) additionally implement
    ``bind(group, batch, dtype)`` (attach per-signature buffers),
    ``load(base_vector)`` (broadcast the shared base parameters),
    ``dump(out)`` (write each member's flat parameters into its row) and
    ``sgd_step(lr)``.  Optional hooks, discovered by the engine via
    ``hasattr``: ``begin_round(batches, local_steps)`` called once per
    :meth:`BatchedWorkerEngine.run_group` and ``begin_step(step)`` called
    before each SGD step (used by stateful kernels such as Dropout).
    Kernels exposing a ``skip_input_grad`` attribute have it set to ``True``
    when they are the model's first parametric layer, allowing them to skip
    the (largest) input-gradient computation.
    """

    param_size: int

    def forward(self, x: np.ndarray) -> np.ndarray: ...

    def backward(self, grad_out: np.ndarray) -> np.ndarray: ...


#: Layer type -> kernel factory ``(layer, offset) -> BatchedKernel`` where
#: ``offset`` is the layer's position in the flat parameter vector.
_KERNEL_REGISTRY: Dict[type, Callable[[Layer, int], BatchedKernel]] = {}

#: Cache-blocking tile size (elements of padded gradient image per chunk)
#: for the stride-1 col2im scatter-add: ~256 KiB of float64 keeps the
#: chunk's gradient tile L2-resident across the kh·kw accumulation passes.
_COL2IM_TILE = 32768

#: Convolutional models run the group in sub-tiles of this many workers:
#: image-sized activation/column buffers for a large group overflow the CPU
#: caches and every pass streams from DRAM, so tiling is faster despite the
#: extra dispatches (measured ~25% on the 50-worker CNN grouped round).
#: Per-worker results are unchanged — each member's per-slice GEMM shapes
#: and elementwise ops do not depend on how the group is split, so tiling
#: preserves the scalar-path equivalence bit for bit.  Dense/MLP models
#: stay untiled (their per-worker buffers are small and the one-big-matmul
#: layout is what delivers their speedup).
_CONV_GROUP_TILE = 12


def register_batched_kernel(
    layer_type: type,
) -> Callable[[Callable[[Layer, int], BatchedKernel]], Callable[[Layer, int], BatchedKernel]]:
    """Register a :class:`BatchedKernel` factory for ``layer_type``.

    Usable as a class decorator::

        @register_batched_kernel(MyLayer)
        class _BatchedMyLayer:
            param_size = 0
            ...

    Lookup walks the layer's MRO, so subclasses inherit their base class's
    kernel unless they register their own.
    """

    def decorator(factory: Callable[[Layer, int], BatchedKernel]):
        _KERNEL_REGISTRY[layer_type] = factory
        return factory

    return decorator


def _kernel_factory(layer: object) -> Optional[Callable[[Layer, int], BatchedKernel]]:
    for klass in type(layer).__mro__:
        factory = _KERNEL_REGISTRY.get(klass)
        if factory is not None:
            return factory
    return None


def batched_layer_supported(layer: object) -> bool:
    """Whether ``layer`` has a batched (leading group axis) kernel."""
    return _kernel_factory(layer) is not None


def model_shard_safe(model: object) -> bool:
    """Whether a group may be *sharded* across independent engine instances.

    The multiprocess executor splits one group's members over several
    worker processes, each running its own :class:`BatchedWorkerEngine`.
    That is result-preserving for every built-in kernel except active
    :class:`~repro.nn.layers.Dropout`: its masks are drawn worker-major
    from one generator stream spanning the *whole* group, which a shard
    holding only part of the group cannot replay.  Such models must train
    in a single process (the executor refuses them and the trainer falls
    back to the serial engine).
    """
    layers = getattr(model, "layers", None)
    if layers is None:
        return False
    return not any(
        isinstance(layer, Dropout) and layer.rate > 0.0 for layer in layers
    )


def shared_stack_view(
    buffer, group: int, dimension: int, dtype=np.float64, offset: int = 0
) -> np.ndarray:
    """Wrap externally owned memory as a ``(group, dimension)`` output stack.

    This is the engine's buffer-donation entry point: the returned view is
    writable whenever ``buffer`` is (e.g. ``multiprocessing.shared_memory
    .SharedMemory.buf``) and is accepted directly as the ``out`` argument
    of :meth:`BatchedWorkerEngine.run_group`, so worker processes write
    their shard's updated models straight into the shared arena — no
    copies, no pickling.  ``offset`` is in *elements*, letting several
    shards view disjoint row ranges of one arena.
    """
    dt = np.dtype(dtype)
    arr = np.frombuffer(
        buffer, dtype=dt, count=group * dimension, offset=offset * dt.itemsize
    )
    return arr.reshape(group, dimension)


def _has_shared_dropout_rng(model: SequentialModel) -> bool:
    """Whether two active Dropout layers share one random generator.

    The batched Dropout kernel replays each layer's generator in the scalar
    path's worker-major order, which only reproduces the scalar stream when
    every Dropout layer owns its generator (see :class:`_BatchedDropout`).
    """
    rng_ids = [
        id(layer._rng)
        for layer in model.layers
        if isinstance(layer, Dropout) and layer.rate > 0.0
    ]
    return len(rng_ids) != len(set(rng_ids))


# ----------------------------------------------------------------------
# Batched layer kernels.
# ----------------------------------------------------------------------
@register_batched_kernel(Dense)
class _BatchedDense:
    """``y[g] = x[g] @ W[g] + b[g]`` for all group members at once."""

    def __init__(self, layer: Dense, offset: int) -> None:
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self.has_bias = layer.bias is not None
        self.weight_shape = layer.weight.value.shape
        self.weight_offset = offset
        self.weight_size = layer.weight.value.size
        self.bias_offset = offset + self.weight_size
        self.bias_size = layer.bias.value.size if self.has_bias else 0
        self.param_size = self.weight_size + self.bias_size
        # Stacked parameter / gradient / activation tensors, cached per
        # (group, batch) signature so trainers alternating between groups
        # of different sizes (the grouped-async event loop) never thrash a
        # single buffer set — steady-state steps run entirely in-place.
        self._buffers: Dict[Tuple[int, int], Tuple] = {}
        self.weight: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self.grad_weight: Optional[np.ndarray] = None
        self.grad_bias: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._grad_in: Optional[np.ndarray] = None
        self._cache_x: Optional[np.ndarray] = None

    def bind(self, group: int, batch: int, dtype: np.dtype) -> None:
        key = (group, batch)
        bufs = self._buffers.get(key)
        if bufs is None:
            weight = np.empty((group,) + self.weight_shape, dtype=dtype)
            grad_weight = np.empty_like(weight)
            bias = grad_bias = None
            if self.has_bias:
                bias = np.empty((group, self.out_features), dtype=dtype)
                grad_bias = np.empty_like(bias)
            out = np.empty((group, batch, self.out_features), dtype=dtype)
            grad_in = np.empty((group, batch, self.in_features), dtype=dtype)
            bufs = (weight, grad_weight, bias, grad_bias, out, grad_in)
            self._buffers[key] = bufs
        (
            self.weight,
            self.grad_weight,
            self.bias,
            self.grad_bias,
            self._out,
            self._grad_in,
        ) = bufs

    def load(self, base_vector: np.ndarray) -> None:
        """Broadcast the (shared) base parameters into every group slot."""
        w = base_vector[self.weight_offset : self.weight_offset + self.weight_size]
        np.copyto(self.weight, w.reshape(self.weight_shape)[None])
        if self.has_bias:
            b = base_vector[self.bias_offset : self.bias_offset + self.bias_size]
            np.copyto(self.bias, b[None])

    def dump(self, out: np.ndarray) -> None:
        """Write each member's flattened parameters into its row of ``out``."""
        g = self.weight.shape[0]
        out[:, self.weight_offset : self.weight_offset + self.weight_size] = (
            self.weight.reshape(g, self.weight_size)
        )
        if self.has_bias:
            out[:, self.bias_offset : self.bias_offset + self.bias_size] = self.bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_x = x
        out = self._out
        np.matmul(x, self.weight, out=out)
        if self.has_bias:
            out += self.bias[:, None, :]
        return out

    #: Set on the first parametric layer of the network: nothing upstream
    #: needs the input gradient, so its (largest) backward matmul is skipped.
    skip_input_grad = False

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache_x
        np.matmul(x.transpose(0, 2, 1), grad_out, out=self.grad_weight)
        if self.has_bias:
            np.sum(grad_out, axis=1, out=self.grad_bias)
        if self.skip_input_grad:
            return grad_out
        return np.matmul(grad_out, self.weight.transpose(0, 2, 1), out=self._grad_in)

    def sgd_step(self, lr: float) -> None:
        # In-place ``grad *= lr; w -= grad``: the same two floating-point
        # operations as the scalar ``w -= lr * grad`` without the O(G·q)
        # temporary (gradients are recomputed from scratch next step).
        self.grad_weight *= lr
        self.weight -= self.grad_weight
        if self.has_bias:
            self.grad_bias *= lr
            self.bias -= self.grad_bias

    def scale_params(self, scale: float) -> None:
        """Multiply every member's parameters in place (StepTransform)."""
        self.weight *= scale
        if self.has_bias:
            self.bias *= scale

    def add_offset(self, flat: np.ndarray) -> None:
        """Add this layer's slice of a flat offset vector (StepTransform).

        ``flat`` is ``(q,)`` (shared across the group, broadcast over the
        leading axis) or ``(G, q)`` with one row per member.
        """
        w = flat[..., self.weight_offset : self.weight_offset + self.weight_size]
        if flat.ndim == 1:
            self.weight += w.reshape(self.weight_shape)
        else:
            self.weight += w.reshape((flat.shape[0],) + self.weight_shape)
        if self.has_bias:
            b = flat[..., self.bias_offset : self.bias_offset + self.bias_size]
            self.bias += b


@register_batched_kernel(ReLU)
class _BatchedReLU:
    param_size = 0

    def __init__(self, layer: ReLU, offset: int) -> None:
        self._buffers: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bufs = self._buffers.get(x.shape)
        if bufs is None:
            # analyze: allow-alloc(first-touch mask/out buffers, cached per shape)
            bufs = (np.empty(x.shape, dtype=bool), np.empty(x.shape, dtype=x.dtype))
            self._buffers[x.shape] = bufs
        mask, out = bufs
        self._mask = mask
        np.greater(x, 0.0, out=mask)
        return np.maximum(x, 0.0, out=out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # In-place: grad_out is the downstream layer's scratch gradient
        # buffer and is not read again this step.
        np.multiply(grad_out, self._mask, out=grad_out)
        return grad_out


@register_batched_kernel(Flatten)
class _BatchedFlatten:
    param_size = 0

    def __init__(self, layer: Flatten, offset: int) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


@register_batched_kernel(Conv2D)
class _BatchedConv2D:
    """Grouped im2col convolution: one GEMM per group per direction.

    The scalar layer turns each worker's ``(N, C, H, W)`` input into a
    ``(N·oh·ow, C·kh·kw)`` column matrix and contracts it with the flattened
    filter bank.  This kernel lifts the transform to a leading group axis:
    the stacked ``(G, B, C, H, W)`` activations become one ``(G, B·oh·ow, k)``
    column tensor (built with the same stride-tricks window view, one copy),
    and the forward/weight-gradient/input-gradient contractions run as
    batched matmuls over the group axis.  The col2im scatter-add for the
    input gradient reuses the scalar loop structure on the fused ``(G·B)``
    batch.  Per-slice GEMM shapes equal the scalar layer's shapes, so the
    result matches the scalar path bit-for-bit for uniform batch sizes.
    """

    skip_input_grad = False

    def __init__(self, layer: Conv2D, offset: int) -> None:
        self.in_channels = layer.in_channels
        self.out_channels = layer.out_channels
        self.kernel_size = layer.kernel_size
        self.stride = layer.stride
        self.padding = layer.padding
        self.has_bias = layer.bias is not None
        self.weight_shape = layer.weight.value.shape
        self.weight_offset = offset
        self.weight_size = layer.weight.value.size
        self.bias_offset = offset + self.weight_size
        self.bias_size = layer.bias.value.size if self.has_bias else 0
        self.param_size = self.weight_size + self.bias_size
        self.k_cols = self.in_channels * self.kernel_size * self.kernel_size
        self._param_buffers: Dict[int, Tuple] = {}
        # Activation-side buffers (padded input, column tensor, GEMM outputs,
        # gradient scratch) depend on the input shape, which is only known at
        # forward time; cache per ``(G, B, C, H, W)`` signature.
        self._act: Dict[Tuple[int, ...], Dict[str, object]] = {}
        self.weight: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self.grad_weight: Optional[np.ndarray] = None
        self.grad_bias: Optional[np.ndarray] = None
        self._geo: Optional[Dict[str, object]] = None

    # -- parameter plumbing (same layout contract as _BatchedDense) ------
    def bind(self, group: int, batch: int, dtype: np.dtype) -> None:
        bufs = self._param_buffers.get(group)
        if bufs is None:
            weight = np.empty((group,) + self.weight_shape, dtype=dtype)
            grad_weight = np.empty_like(weight)
            bias = grad_bias = None
            if self.has_bias:
                bias = np.empty((group, self.out_channels), dtype=dtype)
                grad_bias = np.empty_like(bias)
            bufs = (weight, grad_weight, bias, grad_bias)
            self._param_buffers[group] = bufs
        self.weight, self.grad_weight, self.bias, self.grad_bias = bufs

    def load(self, base_vector: np.ndarray) -> None:
        w = base_vector[self.weight_offset : self.weight_offset + self.weight_size]
        np.copyto(self.weight, w.reshape(self.weight_shape)[None])
        if self.has_bias:
            b = base_vector[self.bias_offset : self.bias_offset + self.bias_size]
            np.copyto(self.bias, b[None])

    def dump(self, out: np.ndarray) -> None:
        g = self.weight.shape[0]
        out[:, self.weight_offset : self.weight_offset + self.weight_size] = (
            self.weight.reshape(g, self.weight_size)
        )
        if self.has_bias:
            out[:, self.bias_offset : self.bias_offset + self.bias_size] = self.bias

    def sgd_step(self, lr: float) -> None:
        self.grad_weight *= lr
        self.weight -= self.grad_weight
        if self.has_bias:
            self.grad_bias *= lr
            self.bias -= self.grad_bias

    def scale_params(self, scale: float) -> None:
        self.weight *= scale
        if self.has_bias:
            self.bias *= scale

    def add_offset(self, flat: np.ndarray) -> None:
        w = flat[..., self.weight_offset : self.weight_offset + self.weight_size]
        if flat.ndim == 1:
            self.weight += w.reshape(self.weight_shape)
        else:
            self.weight += w.reshape((flat.shape[0],) + self.weight_shape)
        if self.has_bias:
            b = flat[..., self.bias_offset : self.bias_offset + self.bias_size]
            self.bias += b

    # -- geometry / buffers ----------------------------------------------
    def _buffers_for(self, shape: Tuple[int, ...], dtype: np.dtype) -> Dict[str, object]:
        geo = self._act.get(shape)
        if geo is None:
            g, b, c, h, w = shape
            kh = self.kernel_size
            s, p = self.stride, self.padding
            out_h = (h + 2 * p - kh) // s + 1
            out_w = (w + 2 * p - kh) // s + 1
            if out_h <= 0 or out_w <= 0:
                raise ValueError(
                    f"kernel {(kh, kh)} with stride {s}, padding {p} does not "
                    f"fit input of spatial size {(h, w)}"
                )
            m = b * out_h * out_w
            geo = {
                "out_h": out_h,
                "out_w": out_w,
                "padded": (
                    np.zeros((g, b, c, h + 2 * p, w + 2 * p), dtype=dtype) if p else None
                ),
                "cols": np.empty((g, m, self.k_cols), dtype=dtype),
                "out_mat": np.empty((g, m, self.out_channels), dtype=dtype),
                "out": np.empty((g, b, self.out_channels, out_h, out_w), dtype=dtype),
                "grad_mat": np.empty((g, m, self.out_channels), dtype=dtype),
                "grad_cols": None,
                "grad_pad": None,
            }
            if not self.skip_input_grad:
                geo["grad_cols"] = np.empty((g, m, self.k_cols), dtype=dtype)
                geo["grad_pad"] = np.empty((g, b, c, h + 2 * p, w + 2 * p), dtype=dtype)
                if s == 1:
                    # Stride-1 col2im staging buffer: source rows padded from
                    # ow to the full padded width wp so each kernel-position
                    # add is one contiguous run per (image, channel) instead
                    # of an ow-strided window.  The [ow:wp) gap columns are
                    # zeroed once and never written, so they contribute
                    # exact zeros.  Sized for one image chunk (cache
                    # blocking): the 25 kernel-position adds re-walk the
                    # chunk's gradient tile while it is cache-hot instead of
                    # streaming the full (G·B) gradient from memory 25 times.
                    chunk = max(1, _COL2IM_TILE // max(1, c * (h + 2 * p) * (w + 2 * p)))
                    geo["chunk"] = chunk
                    geo["scatter"] = np.zeros(
                        (chunk, c, kh, kh, out_h, w + 2 * p), dtype=dtype
                    )
            self._act[shape] = geo
        return geo

    # -- forward / backward ----------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        g, b, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(
                f"batched Conv2D expects {self.in_channels} input channels, "
                f"got shape {x.shape}"
            )
        geo = self._buffers_for(x.shape, x.dtype)
        self._geo = geo
        self._x_shape = x.shape
        kh = self.kernel_size
        s, p = self.stride, self.padding
        oh, ow = geo["out_h"], geo["out_w"]
        if p:
            padded = geo["padded"]
            padded[:, :, :, p : p + h, p : p + w] = x
            src = padded
        else:
            src = x
        gb = g * b
        src4 = src.reshape(gb, c, h + 2 * p, w + 2 * p)
        s0, s1, s2, s3 = src4.strides
        windows = np.lib.stride_tricks.as_strided(
            src4,
            shape=(gb, c, oh, ow, kh, kh),
            strides=(s0, s1, s2 * s, s3 * s, s2, s3),
            writeable=False,
        )
        # One copy reorders the window view into the (G, B·oh·ow, k) column
        # tensor — the grouped equivalent of the scalar layer's im2col copy.
        cols = geo["cols"]
        cols6 = cols.reshape(gb, oh, ow, c, kh, kh)
        np.copyto(cols6, windows.transpose(0, 2, 3, 1, 4, 5))
        w_mat_t = self.weight.reshape(g, self.out_channels, self.k_cols).transpose(0, 2, 1)
        out_mat = geo["out_mat"]
        np.matmul(cols, w_mat_t, out=out_mat)
        if self.has_bias:
            out_mat += self.bias[:, None, :]
        out = geo["out"]
        np.copyto(
            out,
            out_mat.reshape(g, b, oh, ow, self.out_channels).transpose(0, 1, 4, 2, 3),
        )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        geo = self._geo
        g, b, c, h, w = self._x_shape
        co = self.out_channels
        oh, ow = geo["out_h"], geo["out_w"]
        grad_mat = geo["grad_mat"]
        np.copyto(
            grad_mat.reshape(g, b, oh, ow, co), grad_out.transpose(0, 1, 3, 4, 2)
        )
        cols = geo["cols"]
        np.matmul(
            grad_mat.transpose(0, 2, 1),
            cols,
            out=self.grad_weight.reshape(g, co, self.k_cols),
        )
        if self.has_bias:
            np.sum(grad_mat, axis=1, out=self.grad_bias)
        if self.skip_input_grad:
            return grad_out
        w_mat = self.weight.reshape(g, co, self.k_cols)
        grad_cols = geo["grad_cols"]
        np.matmul(grad_mat, w_mat, out=grad_cols)
        # col2im scatter-add over the fused (G·B) batch — the same i/j loop
        # order as the scalar ``col2im``, so the adds associate identically
        # per cell and the accumulated gradient matches the scalar path.
        kh = self.kernel_size
        s, p = self.stride, self.padding
        hp, wp = h + 2 * p, w + 2 * p
        grad_pad = geo["grad_pad"]
        grad_pad.fill(0.0)
        cols6 = grad_cols.reshape(g * b, oh, ow, c, kh, kh)
        if s == 1:
            # Fast path: stage the columns as zero-gap-padded rows (ow -> wp)
            # so every kernel position (i, j) adds one contiguous
            # ((oh-1)·wp + ow)-long run per (image, channel).  The gap cells
            # receive exact zeros, and real cells still accumulate their
            # contributions in the scalar (i, j) order — chunking over
            # images only partitions the cells, never reorders one cell's
            # adds, so the result stays identical to the scalar col2im.
            scatter = geo["scatter"]
            chunk = geo["chunk"]
            gp3 = grad_pad.reshape(g * b, c, hp * wp)
            run = (oh - 1) * wp + ow
            for n0 in range(0, g * b, chunk):
                n1 = min(n0 + chunk, g * b)
                sc = scatter[: n1 - n0]
                np.copyto(sc[..., :ow], cols6[n0:n1].transpose(0, 3, 4, 5, 1, 2))
                tile = gp3[n0:n1].reshape((n1 - n0) * c, hp * wp)
                sc2 = sc.reshape((n1 - n0) * c, kh * kh, oh * wp)
                idx = 0
                for i in range(kh):
                    for j in range(kh):
                        start = i * wp + j
                        tile[:, start : start + run] += sc2[:, idx, :run]
                        idx += 1
        else:
            gp4 = grad_pad.reshape(g * b, c, hp, wp)
            cols6t = cols6.transpose(0, 3, 1, 2, 4, 5)
            for i in range(kh):
                i_max = i + s * oh
                for j in range(kh):
                    j_max = j + s * ow
                    gp4[:, :, i:i_max:s, j:j_max:s] += cols6t[:, :, :, :, i, j]
        if p:
            return grad_pad[:, :, :, p:-p, p:-p]
        return grad_pad


@register_batched_kernel(MaxPool2D)
class _BatchedMaxPool2D:
    """Grouped non-overlapping max pooling with the scalar layer's tie rule.

    Pooling windows come from one reshape of the ``(G, B, C, H, W)`` tensor;
    the backward mask divides ties evenly exactly like the scalar layer
    (``mask / counts``), so gradients match bit-for-bit.  The spatial size
    must be divisible by ``pool_size`` — the same constraint the scalar
    :class:`~repro.nn.layers.MaxPool2D` validates at forward time.
    """

    param_size = 0

    def __init__(self, layer: MaxPool2D, offset: int) -> None:
        self.pool_size = layer.pool_size
        self.name = layer.name
        self._buffers: Dict[Tuple[int, ...], Dict[str, np.ndarray]] = {}
        self._geo: Optional[Dict[str, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        g, b, c, h, w = x.shape
        p = self.pool_size
        if h % p != 0 or w % p != 0:
            raise ValueError(
                f"MaxPool2D {self.name!r}: spatial size {(h, w)} is not divisible "
                f"by pool size {p}"
            )
        geo = self._buffers.get(x.shape)
        if geo is None:
            oh, ow = h // p, w // p
            # analyze: allow-alloc(first-touch pooling geometry, cached per shape)
            geo = {
                "out": np.empty((g, b, c, oh, ow), dtype=x.dtype),
                "mask_bool": np.empty((g, b, c, oh, p, ow, p), dtype=bool),
                "counts": np.empty((g, b, c, oh, ow), dtype=np.int64),
                "mask": np.empty((g, b, c, oh, p, ow, p), dtype=x.dtype),
                "grad": np.empty((g, b, c, h, w), dtype=x.dtype),
            }
            self._buffers[x.shape] = geo
        self._geo = geo
        out = geo["out"]
        # Each window position (i, j) lives on the strided "quarter" view
        # x[..., i::p, j::p]; p² element-wise passes replace the (slow)
        # multi-axis reductions over a 7-D window view.  max and the integer
        # tie count are order-independent, so the values are identical to
        # the scalar layer's ``windows.max(axis=(3, 5))`` / ``mask / counts``.
        np.copyto(out, x[:, :, :, 0::p, 0::p])
        for i in range(p):
            for j in range(p):
                if i or j:
                    np.maximum(out, x[:, :, :, i::p, j::p], out=out)
        mask_bool = geo["mask_bool"]
        counts = geo["counts"]
        mb7 = mask_bool
        for i in range(p):
            for j in range(p):
                np.equal(x[:, :, :, i::p, j::p], out, out=mb7[:, :, :, :, i, :, j])
                if i == 0 and j == 0:
                    np.copyto(counts, mb7[:, :, :, :, i, :, j], casting="unsafe")
                else:
                    counts += mb7[:, :, :, :, i, :, j]
        # Ties share the gradient evenly — identical to the scalar layer's
        # ``mask / counts`` normalisation.
        mask = geo["mask"]
        for i in range(p):
            for j in range(p):
                np.divide(
                    mb7[:, :, :, :, i, :, j], counts, out=mask[:, :, :, :, i, :, j]
                )
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        geo = self._geo
        grad = geo["grad"]
        mask = geo["mask"]
        np.multiply(
            mask,
            grad_out[:, :, :, :, None, :, None],
            out=grad.reshape(mask.shape),
        )
        return grad


@register_batched_kernel(Dropout)
class _BatchedDropout:
    """Grouped inverted dropout replaying the scalar path's random stream.

    The scalar path trains the group's workers sequentially, so a
    :class:`~repro.nn.layers.Dropout` layer draws its masks worker-major:
    all of worker k's steps before any of worker k+1's.  To stay equivalent,
    this kernel consumes the *same* generator (``layer._rng``) in the same
    order — on the first forward of a round it pre-draws every (worker,
    step) mask with the scalar call's exact shapes, then replays mask
    ``[step]`` on each batched step.  Padded rows keep an all-zero mask.

    Each Dropout layer must own its generator: the per-layer pre-draw
    reorders the stream relative to the scalar path's per-forward
    interleaving, so two Dropout layers *sharing* one generator would
    diverge — :meth:`BatchedWorkerEngine.try_build` detects that case and
    falls back to the scalar path.
    """

    param_size = 0

    def __init__(self, layer: Dropout, offset: int) -> None:
        self.rate = layer.rate
        self._rng = layer._rng
        self._batches: Optional[Sequence[int]] = None
        self._steps = 1
        self._step = 0
        self._masks: Optional[np.ndarray] = None
        #: Mask blocks cached per (steps, G, B, feat) signature — the masks
        #: are redrawn every round, but into the same buffer.  Kept float64
        #: regardless of the engine dtype: the scalar layer's
        #: ``(rng.random(...) < keep) / keep`` mask is float64 too.
        self._mask_bufs: Dict[Tuple[int, ...], np.ndarray] = {}
        self._mask: Optional[np.ndarray] = None
        self._out: Dict[Tuple[int, ...], np.ndarray] = {}

    def begin_round(self, batches: Sequence[int], local_steps: int) -> None:
        self._batches = batches
        self._steps = local_steps
        self._step = 0
        self._masks = None

    def begin_step(self, step: int) -> None:
        self._step = step

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.rate == 0.0:
            self._mask = None
            return x
        if self._masks is None:
            keep = 1.0 - self.rate
            g, b_max = x.shape[0], x.shape[1]
            feat = x.shape[2:]
            batches = self._batches if self._batches is not None else [b_max] * g
            key = (self._steps, g, b_max) + feat
            masks = self._mask_bufs.get(key)
            if masks is None:
                # analyze: allow-alloc(first-touch dropout masks, cached per signature)
                masks = np.empty((self._steps, g, b_max) + feat)
                self._mask_bufs[key] = masks
            # Zero first: padded rows (b_k < b_max) must carry a zero mask,
            # and the padding pattern may differ between groups that share
            # this buffer signature.
            masks.fill(0.0)
            for k in range(g):
                b_k = batches[k]
                for s in range(self._steps):
                    masks[s, k, :b_k] = (self._rng.random((b_k,) + feat) < keep) / keep
            self._masks = masks
        out = self._out.get(x.shape)
        if out is None:
            # analyze: allow-alloc(first-touch output buffer, cached per shape)
            out = np.empty(x.shape, dtype=x.dtype)
            self._out[x.shape] = out
        mask = self._masks[self._step]
        self._mask = mask
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        np.multiply(grad_out, self._mask, out=grad_out)
        return grad_out


# ----------------------------------------------------------------------
@dataclass
class EngineSpec:
    """A picklable recipe for rebuilding a :class:`BatchedWorkerEngine`.

    The spec carries the (validated) model object itself; models are plain
    layer lists over NumPy arrays and generators, all of which pickle.
    With the ``fork`` start method nothing is serialized at all — the spec
    is inherited — and with ``spawn``/``forkserver`` it is pickled exactly
    once at pool start-up, never per round.  Build the worker-side engine
    with :meth:`build`.
    """

    model: SequentialModel

    def build(self) -> "BatchedWorkerEngine":
        """Construct the engine in the current (worker) process."""
        return BatchedWorkerEngine(self.model)


class BatchedWorkerEngine:
    """Runs the local SGD of a whole worker group as batched tensor ops.

    Build one per trainer with :meth:`try_build`; the engine keeps its
    stacked parameter/activation buffers across rounds, so steady-state
    group updates allocate almost nothing.  Layer support is determined by
    the kernel registry (see :func:`register_batched_kernel`).
    """

    def __init__(self, model: SequentialModel) -> None:
        self.dimension = model.dimension
        self.dtype = (
            model.parameters[0].value.dtype
            if len(model.parameters)
            else np.dtype(np.float64)
        )
        if _has_shared_dropout_rng(model):
            raise ValueError(
                "multiple Dropout layers share one random generator; the "
                "batched kernel replays each layer's stream independently, "
                "so shared-generator models must use the scalar path "
                "(use BatchedWorkerEngine.try_build for a graceful fallback)"
            )
        self._kernels: List[BatchedKernel] = []
        self._params: List[BatchedKernel] = []
        offset = 0
        for layer in model.layers:
            factory = _kernel_factory(layer)
            if factory is None:
                raise ValueError(
                    f"layer {layer!r} has no batched kernel; "
                    "use BatchedWorkerEngine.try_build for a graceful fallback"
                )
            kernel = factory(layer, offset)
            offset += kernel.param_size
            self._kernels.append(kernel)
            if kernel.param_size:
                self._params.append(kernel)
        if offset != self.dimension:
            raise ValueError(
                "batched layer parameters do not cover the model vector "
                f"({offset} of {self.dimension} entries)"
            )
        # The input gradient of the network's first parametric layer is never
        # consumed (activation/reshape kernels before it carry no parameters).
        if self._params and hasattr(self._params[0], "skip_input_grad"):
            self._params[0].skip_input_grad = True
        # Backward pass stops at the first parametric kernel: it skips its
        # input gradient, and kernels before it own no parameters, so their
        # backward methods would only consume (mis-shaped) skipped output.
        self._first_param_index = (
            self._kernels.index(self._params[0]) if self._params else 0
        )
        self._round_hooks = [k for k in self._kernels if hasattr(k, "begin_round")]
        self._step_hooks = [k for k in self._kernels if hasattr(k, "begin_step")]
        self._tile: Optional[int] = (
            _CONV_GROUP_TILE
            if any(isinstance(k, _BatchedConv2D) for k in self._kernels)
            else None
        )
        # Cached sampling geometry (input buffers, padding masks, divisors),
        # keyed by the per-worker batch-size signature of a group.
        self._geometry: Dict[Tuple, Dict[str, np.ndarray]] = {}
        # Concatenated per-group training data (plus one all-zero pad row),
        # keyed by the group's worker-id tuple, so each step gathers the
        # whole group's mini-batches with a single np.take.
        self._datacat: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray, List[int], int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def try_build(cls, model: Model) -> Optional["BatchedWorkerEngine"]:
        """Build an engine for ``model``, or ``None`` if any layer lacks a
        batched kernel (the caller then uses the scalar per-worker path).

        Support conditions are defined once, in :meth:`build_spec`."""
        try:
            spec = cls.build_spec(model)
        except ValueError:
            return None
        return spec.build()

    @classmethod
    def build_spec(cls, model: Model) -> EngineSpec:
        """Validate ``model`` and return a picklable :class:`EngineSpec`.

        Raises :class:`ValueError` when the model has no batched-engine
        support (the same conditions under which :meth:`try_build` returns
        ``None``), so callers fail fast in the parent process instead of
        inside a pool worker.
        """
        if not isinstance(model, SequentialModel):
            raise ValueError(
                f"batched engine requires a SequentialModel, got {type(model).__name__}"
            )
        unsupported = [
            layer for layer in model.layers if not batched_layer_supported(layer)
        ]
        if unsupported:
            raise ValueError(
                f"layers without a batched kernel: {unsupported!r} "
                "(see repro.nn.batched.register_batched_kernel)"
            )
        if len(model.parameters) == 0:
            raise ValueError("model has no parameters")
        if _has_shared_dropout_rng(model):
            raise ValueError(
                "multiple Dropout layers share one random generator; "
                "the batched engine cannot reproduce the scalar stream"
            )
        return EngineSpec(model=model)

    @property
    def group_tile(self) -> Optional[int]:
        """Group sub-tile size used by convolutional models (``None`` when
        the model runs untiled).  Shard planners must align shard
        boundaries to this tile so sharded execution reproduces the serial
        call tree (see :class:`repro.parallel.ProcessGroupExecutor`)."""
        return self._tile

    # ------------------------------------------------------------------
    def run_group(
        self,
        worker_ids: Sequence[int],
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        base_vector: np.ndarray,
        round_index: int,
        *,
        learning_rate: float,
        local_steps: int,
        batch_size: int,
        seed: int,
        out: np.ndarray,
        pad_to: Optional[int] = None,
        transform: Optional[StepTransform] = None,
    ) -> np.ndarray:
        """Run every member's local SGD from ``base_vector``; fill ``out``.

        ``out`` must be a ``(len(worker_ids), q)`` array; row ``k`` receives
        worker ``worker_ids[k]``'s updated flat model.  Semantics match the
        scalar path exactly: per-worker batch indices are drawn from
        ``SeedSequence([seed, worker_id, round_index, 0x10CA1])`` and a
        worker with no data returns the base vector unchanged.

        ``pad_to`` pins the padded per-worker batch dimension (normally the
        group's max batch size).  A *shard* of a ragged group padded to the
        full group's batch dimension runs the exact GEMM shapes of the
        full-group call, which is what makes multiprocess sharding
        bit-identical to serial execution (padding rows gather the zero
        row and contribute exact ``+0.0`` terms).

        ``transform`` applies a per-step affine parameter correction (see
        :class:`StepTransform`); a ``(G, q)`` offset carries one row per
        entry of ``worker_ids``, in the same order.
        """
        ids = list(worker_ids)
        if out.shape != (len(ids), self.dimension):
            raise ValueError(
                f"out has shape {out.shape}, expected {(len(ids), self.dimension)}"
            )
        if (
            transform is not None
            and transform.offset is not None
            and transform.offset.ndim == 2
            and transform.offset.shape[0] != len(ids)
        ):
            raise ValueError(
                f"transform offset has {transform.offset.shape[0]} rows "
                f"for {len(ids)} workers"
            )
        # Convolutional models: split large groups into cache-sized tiles
        # (see _CONV_GROUP_TILE; per-worker results are identical).
        if self._tile is not None and len(ids) > self._tile:
            for k0 in range(0, len(ids), self._tile):
                k1 = min(k0 + self._tile, len(ids))
                self.run_group(
                    ids[k0:k1],
                    worker_data[k0:k1],
                    base_vector,
                    round_index,
                    learning_rate=learning_rate,
                    local_steps=local_steps,
                    batch_size=batch_size,
                    seed=seed,
                    out=out[k0:k1],
                    pad_to=pad_to,
                    transform=(
                        transform.rows(slice(k0, k1))
                        if transform is not None
                        else None
                    ),
                )
            return out
        # Workers without data keep the base model; train the rest together.
        has_data = [x.shape[0] > 0 for x, _ in worker_data]
        active = [k for k, ok in enumerate(has_data) if ok]
        for k, ok in enumerate(has_data):
            if not ok:
                out[k] = base_vector
        if not active:
            return out
        # Restrict a per-worker offset to the active (has-data) rows: workers
        # without data take no SGD steps, so no correction applies to them.
        if transform is not None and len(active) != len(ids):
            transform = transform.rows(np.asarray(active))
        t_scale = transform.scale if transform is not None else 1.0
        t_offset = transform.offset if transform is not None else None
        xs = [worker_data[k][0] for k in active]
        ys = [worker_data[k][1] for k in active]
        rngs = [
            np.random.default_rng(
                np.random.SeedSequence([seed, ids[k], round_index, 0x10CA1])
            )
            for k in active
        ]
        g = len(active)
        counts_py = [int(x.shape[0]) for x in xs]
        batches_py = [min(batch_size, c) for c in counts_py]
        b_max = max(batches_py)
        if pad_to is not None:
            if pad_to < b_max:
                raise ValueError(
                    f"pad_to={pad_to} is smaller than the largest member "
                    f"batch ({b_max})"
                )
            b_max = pad_to
        feat_shape = xs[0].shape[1:]

        # Concatenate the group's data once (cached per worker-id tuple)
        # with one trailing all-zero pad row, so every SGD step fills the
        # whole group's mini-batch tensor with a single np.take gather.
        cat_key = tuple(ids[k] for k in active)
        cat = self._datacat.get(cat_key)
        if cat is None:
            x_cat = np.concatenate(
                [np.ascontiguousarray(x, dtype=self.dtype) for x in xs]
                + [np.zeros((1,) + feat_shape, dtype=self.dtype)]
            )
            y_cat = np.concatenate(
                [np.asarray(y, dtype=np.int64) for y in ys]
                + [np.zeros(1, dtype=np.int64)]
            )
            offsets: List[int] = list(np.cumsum([0] + counts_py[:-1]))
            cat = (x_cat, y_cat, offsets, x_cat.shape[0] - 1)
            self._datacat[cat_key] = cat
        x_cat, y_cat, offsets, pad_row = cat

        # Sampling geometry (masks, per-worker divisors, buffers) is fully
        # determined by the per-worker batch sizes; cache it so the event
        # loop alternating between groups never rebuilds it.
        geo_key = (b_max, tuple(batches_py)) + feat_shape
        geo = self._geometry.get(geo_key)
        if geo is None:
            batches = np.array(batches_py)
            geo = {
                "xb": np.zeros((g, b_max) + feat_shape, dtype=self.dtype),
                "yb": np.zeros((g, b_max), dtype=np.int64),
                "gidx": np.full((g, b_max), -1, dtype=np.int64),
                "ragged": min(batches_py) != b_max,
                "valid": np.arange(b_max)[None, :] < batches[:, None],
                "row_index": np.arange(g * b_max),
                "batch_div": batches[:, None, None].astype(np.float64),
            }
            self._geometry[geo_key] = geo
        # Padding rows (workers with fewer samples than b_max) gather the
        # zero pad row and get zero loss gradients, so they contribute
        # exactly nothing to the batched weight-gradient matmuls.
        xb, yb, gidx = geo["xb"], geo["yb"], geo["gidx"]
        ragged, row_index = geo["ragged"], geo["row_index"]
        gidx.fill(pad_row)
        xb_flat = xb.reshape((g * b_max,) + feat_shape)
        yb_flat = yb.reshape(g * b_max)

        for kernel in self._params:
            kernel.bind(g, b_max, self.dtype)
            kernel.load(base_vector)
        for kernel in self._round_hooks:
            kernel.begin_round(batches_py, local_steps)

        for step in range(local_steps):
            for kernel in self._step_hooks:
                kernel.begin_step(step)
            for k in range(g):
                idx = rngs[k].choice(counts_py[k], size=batches_py[k], replace=False)
                idx += offsets[k]
                gidx[k, : batches_py[k]] = idx
            np.take(x_cat, gidx.reshape(-1), axis=0, out=xb_flat)
            np.take(y_cat, gidx.reshape(-1), out=yb_flat)
            h = xb
            for kernel in self._kernels:
                h = kernel.forward(h)
            # Fused softmax cross-entropy gradient: (softmax − one-hot) / B_k
            # per worker — exactly the scalar loss normalisation, computed
            # in place in the logits buffer; padded rows are zeroed by the
            # validity mask.
            h -= h.max(axis=-1, keepdims=True)
            np.exp(h, out=h)
            h /= h.sum(axis=-1, keepdims=True)
            grad = h
            flat = grad.reshape(g * b_max, -1)
            flat[row_index, yb.reshape(-1)] -= 1.0
            grad /= geo["batch_div"]
            if ragged:
                grad *= geo["valid"][:, :, None]
            for kernel in reversed(self._kernels[self._first_param_index :]):
                grad = kernel.backward(grad)
            # StepTransform stages (no-ops on the legacy path): gradients
            # were computed at the pre-scale parameters above, so the step
            # is ``w ← scale·w − lr·∇f(w) + offset`` — the same order of
            # element-wise operations as the scalar path.
            if t_scale != 1.0:
                for kernel in self._params:
                    kernel.scale_params(t_scale)
            for kernel in self._params:
                kernel.sgd_step(learning_rate)
            if t_offset is not None:
                for kernel in self._params:
                    kernel.add_offset(t_offset)

        rows = out[active] if len(active) != len(ids) else out
        for kernel in self._params:
            kernel.dump(rows)
        if rows is not out:
            out[active] = rows
        return out
