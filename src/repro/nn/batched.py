"""Vectorized multi-worker execution engine (group-batched local training).

Every member of a federated group starts its local update from the *same*
base model vector, so the G per-worker SGD runs are structurally identical —
only the mini-batches (and, after the first step, the diverged parameters)
differ.  The scalar path in :meth:`repro.fl.base.BaseTrainer.local_update`
pays the full Python/NumPy dispatch overhead G times per round; this module
instead stacks the per-worker parameters into leading-axis tensors (Dense
weights become ``(G, in, out)``) and runs **one** batched matmul per layer
per SGD step for the whole group.

Supported layers: :class:`~repro.nn.layers.Dense`,
:class:`~repro.nn.layers.ReLU` and :class:`~repro.nn.layers.Flatten` — which
covers the paper's "LR"/MLP workloads end to end.  Models containing other
layers (Conv2D, MaxPool2D, Dropout) are reported as unsupported and the
trainers fall back to the scalar per-worker path (see ROADMAP open items for
the batched Conv2D kernel follow-up).

Numerical contract: for a given ``(seed, worker_id, round_index)`` the
engine draws exactly the same mini-batch indices as the scalar path and
performs the same sequence of per-worker matmul/elementwise operations, so
the stacked results match the sequential reference to ~1e-9 per parameter
in float64 (bit-identical up to BLAS reduction-order differences).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layers import Dense, Flatten, ReLU
from .models import Model, SequentialModel

__all__ = ["BatchedWorkerEngine", "batched_layer_supported"]


def batched_layer_supported(layer: object) -> bool:
    """Whether ``layer`` has a batched (leading group axis) kernel."""
    return isinstance(layer, (Dense, ReLU, Flatten))


# ----------------------------------------------------------------------
# Batched layer kernels.  Activations operate on (G, B, ...) tensors where
# G is the group size and B the (padded) per-worker mini-batch size.
# ----------------------------------------------------------------------
class _BatchedDense:
    """``y[g] = x[g] @ W[g] + b[g]`` for all group members at once."""

    def __init__(self, layer: Dense, offset: int) -> None:
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        self.has_bias = layer.bias is not None
        self.weight_shape = layer.weight.value.shape
        self.weight_offset = offset
        self.weight_size = layer.weight.value.size
        self.bias_offset = offset + self.weight_size
        self.bias_size = layer.bias.value.size if self.has_bias else 0
        self.param_size = self.weight_size + self.bias_size
        # Stacked parameter / gradient / activation tensors, cached per
        # (group, batch) signature so trainers alternating between groups
        # of different sizes (the grouped-async event loop) never thrash a
        # single buffer set — steady-state steps run entirely in-place.
        self._buffers: Dict[Tuple[int, int], Tuple] = {}
        self.weight: Optional[np.ndarray] = None
        self.bias: Optional[np.ndarray] = None
        self.grad_weight: Optional[np.ndarray] = None
        self.grad_bias: Optional[np.ndarray] = None
        self._out: Optional[np.ndarray] = None
        self._grad_in: Optional[np.ndarray] = None
        self._cache_x: Optional[np.ndarray] = None

    def bind(self, group: int, batch: int, dtype: np.dtype) -> None:
        key = (group, batch)
        bufs = self._buffers.get(key)
        if bufs is None:
            weight = np.empty((group,) + self.weight_shape, dtype=dtype)
            grad_weight = np.empty_like(weight)
            bias = grad_bias = None
            if self.has_bias:
                bias = np.empty((group, self.out_features), dtype=dtype)
                grad_bias = np.empty_like(bias)
            out = np.empty((group, batch, self.out_features), dtype=dtype)
            grad_in = np.empty((group, batch, self.in_features), dtype=dtype)
            bufs = (weight, grad_weight, bias, grad_bias, out, grad_in)
            self._buffers[key] = bufs
        (
            self.weight,
            self.grad_weight,
            self.bias,
            self.grad_bias,
            self._out,
            self._grad_in,
        ) = bufs

    def load(self, base_vector: np.ndarray) -> None:
        """Broadcast the (shared) base parameters into every group slot."""
        w = base_vector[self.weight_offset : self.weight_offset + self.weight_size]
        np.copyto(self.weight, w.reshape(self.weight_shape)[None])
        if self.has_bias:
            b = base_vector[self.bias_offset : self.bias_offset + self.bias_size]
            np.copyto(self.bias, b[None])

    def dump(self, out: np.ndarray) -> None:
        """Write each member's flattened parameters into its row of ``out``."""
        g = self.weight.shape[0]
        out[:, self.weight_offset : self.weight_offset + self.weight_size] = (
            self.weight.reshape(g, self.weight_size)
        )
        if self.has_bias:
            out[:, self.bias_offset : self.bias_offset + self.bias_size] = self.bias

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_x = x
        out = self._out
        np.matmul(x, self.weight, out=out)
        if self.has_bias:
            out += self.bias[:, None, :]
        return out

    #: Set on the first layer of the network: nothing upstream needs the
    #: input gradient, so its (largest) backward matmul is skipped.
    skip_input_grad = False

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._cache_x
        np.matmul(x.transpose(0, 2, 1), grad_out, out=self.grad_weight)
        if self.has_bias:
            np.sum(grad_out, axis=1, out=self.grad_bias)
        if self.skip_input_grad:
            return grad_out
        return np.matmul(grad_out, self.weight.transpose(0, 2, 1), out=self._grad_in)

    def sgd_step(self, lr: float) -> None:
        # In-place ``grad *= lr; w -= grad``: the same two floating-point
        # operations as the scalar ``w -= lr * grad`` without the O(G·q)
        # temporary (gradients are recomputed from scratch next step).
        self.grad_weight *= lr
        self.weight -= self.grad_weight
        if self.has_bias:
            self.grad_bias *= lr
            self.bias -= self.grad_bias


class _BatchedReLU:
    def __init__(self) -> None:
        self._buffers: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]] = {}
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        bufs = self._buffers.get(x.shape)
        if bufs is None:
            bufs = (np.empty(x.shape, dtype=bool), np.empty_like(x))
            self._buffers[x.shape] = bufs
        mask, out = bufs
        self._mask = mask
        np.greater(x, 0.0, out=mask)
        return np.maximum(x, 0.0, out=out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # In-place: grad_out is the downstream layer's scratch gradient
        # buffer and is not read again this step.
        np.multiply(grad_out, self._mask, out=grad_out)
        return grad_out


class _BatchedFlatten:
    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


# ----------------------------------------------------------------------
class BatchedWorkerEngine:
    """Runs the local SGD of a whole worker group as batched tensor ops.

    Build one per trainer with :meth:`try_build`; the engine keeps its
    stacked parameter/activation buffers across rounds, so steady-state
    group updates allocate almost nothing.
    """

    def __init__(self, model: SequentialModel) -> None:
        self.dimension = model.dimension
        self.dtype = model.parameters[0].value.dtype if len(model.parameters) else np.dtype(np.float64)
        self._layers: List[object] = []
        self._dense: List[_BatchedDense] = []
        offset = 0
        for layer in model.layers:
            if isinstance(layer, Dense):
                bd = _BatchedDense(layer, offset)
                offset += bd.param_size
                self._layers.append(bd)
                self._dense.append(bd)
            elif isinstance(layer, ReLU):
                self._layers.append(_BatchedReLU())
            elif isinstance(layer, Flatten):
                self._layers.append(_BatchedFlatten())
            else:
                raise ValueError(
                    f"layer {layer!r} has no batched kernel; "
                    "use BatchedWorkerEngine.try_build for a graceful fallback"
                )
        if offset != self.dimension:
            raise ValueError(
                "batched layer parameters do not cover the model vector "
                f"({offset} of {self.dimension} entries)"
            )
        # The input gradient of the network's first layer is never consumed
        # (ReLU/Flatten before it carry no parameters either way).
        for layer in self._layers:
            if isinstance(layer, _BatchedDense):
                layer.skip_input_grad = True
                break
        # Cached sampling geometry (input buffers, padding masks, divisors),
        # keyed by the per-worker batch-size signature of a group.
        self._geometry: Dict[Tuple, Dict[str, np.ndarray]] = {}
        # Concatenated per-group training data (plus one all-zero pad row),
        # keyed by the group's worker-id tuple, so each step gathers the
        # whole group's mini-batches with a single np.take.
        self._datacat: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray, List[int], int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def try_build(cls, model: Model) -> Optional["BatchedWorkerEngine"]:
        """Build an engine for ``model``, or ``None`` if any layer lacks a
        batched kernel (the caller then uses the scalar per-worker path)."""
        if not isinstance(model, SequentialModel):
            return None
        if not all(batched_layer_supported(l) for l in model.layers):
            return None
        if len(model.parameters) == 0:
            return None
        return cls(model)

    # ------------------------------------------------------------------
    def run_group(
        self,
        worker_ids: Sequence[int],
        worker_data: Sequence[Tuple[np.ndarray, np.ndarray]],
        base_vector: np.ndarray,
        round_index: int,
        *,
        learning_rate: float,
        local_steps: int,
        batch_size: int,
        seed: int,
        out: np.ndarray,
    ) -> np.ndarray:
        """Run every member's local SGD from ``base_vector``; fill ``out``.

        ``out`` must be a ``(len(worker_ids), q)`` array; row ``k`` receives
        worker ``worker_ids[k]``'s updated flat model.  Semantics match the
        scalar path exactly: per-worker batch indices are drawn from
        ``SeedSequence([seed, worker_id, round_index, 0x10CA1])`` and a
        worker with no data returns the base vector unchanged.
        """
        ids = list(worker_ids)
        if out.shape != (len(ids), self.dimension):
            raise ValueError(
                f"out has shape {out.shape}, expected {(len(ids), self.dimension)}"
            )
        # Workers without data keep the base model; train the rest together.
        has_data = [x.shape[0] > 0 for x, _ in worker_data]
        active = [k for k, ok in enumerate(has_data) if ok]
        for k, ok in enumerate(has_data):
            if not ok:
                out[k] = base_vector
        if not active:
            return out
        xs = [worker_data[k][0] for k in active]
        ys = [worker_data[k][1] for k in active]
        rngs = [
            np.random.default_rng(
                np.random.SeedSequence([seed, ids[k], round_index, 0x10CA1])
            )
            for k in active
        ]
        g = len(active)
        counts_py = [int(x.shape[0]) for x in xs]
        batches_py = [min(batch_size, c) for c in counts_py]
        b_max = max(batches_py)
        feat_shape = xs[0].shape[1:]

        # Concatenate the group's data once (cached per worker-id tuple)
        # with one trailing all-zero pad row, so every SGD step fills the
        # whole group's mini-batch tensor with a single np.take gather.
        cat_key = tuple(ids[k] for k in active)
        cat = self._datacat.get(cat_key)
        if cat is None:
            x_cat = np.concatenate(
                [np.ascontiguousarray(x, dtype=self.dtype) for x in xs]
                + [np.zeros((1,) + feat_shape, dtype=self.dtype)]
            )
            y_cat = np.concatenate(
                [np.asarray(y, dtype=np.int64) for y in ys]
                + [np.zeros(1, dtype=np.int64)]
            )
            offsets: List[int] = list(np.cumsum([0] + counts_py[:-1]))
            cat = (x_cat, y_cat, offsets, x_cat.shape[0] - 1)
            self._datacat[cat_key] = cat
        x_cat, y_cat, offsets, pad_row = cat

        # Sampling geometry (masks, per-worker divisors, buffers) is fully
        # determined by the per-worker batch sizes; cache it so the event
        # loop alternating between groups never rebuilds it.
        geo_key = (b_max, tuple(batches_py)) + feat_shape
        geo = self._geometry.get(geo_key)
        if geo is None:
            batches = np.array(batches_py)
            geo = {
                "xb": np.zeros((g, b_max) + feat_shape, dtype=self.dtype),
                "yb": np.zeros((g, b_max), dtype=np.int64),
                "gidx": np.full((g, b_max), -1, dtype=np.int64),
                "ragged": min(batches_py) != b_max,
                "valid": np.arange(b_max)[None, :] < batches[:, None],
                "row_index": np.arange(g * b_max),
                "batch_div": batches[:, None, None].astype(np.float64),
            }
            self._geometry[geo_key] = geo
        # Padding rows (workers with fewer samples than b_max) gather the
        # zero pad row and get zero loss gradients, so they contribute
        # exactly nothing to the batched weight-gradient matmuls.
        xb, yb, gidx = geo["xb"], geo["yb"], geo["gidx"]
        ragged, row_index = geo["ragged"], geo["row_index"]
        gidx.fill(pad_row)
        xb_flat = xb.reshape((g * b_max,) + feat_shape)
        yb_flat = yb.reshape(g * b_max)

        for bd in self._dense:
            bd.bind(g, b_max, self.dtype)
            bd.load(base_vector)

        for _ in range(local_steps):
            for k in range(g):
                idx = rngs[k].choice(counts_py[k], size=batches_py[k], replace=False)
                idx += offsets[k]
                gidx[k, : batches_py[k]] = idx
            np.take(x_cat, gidx.reshape(-1), axis=0, out=xb_flat)
            np.take(y_cat, gidx.reshape(-1), out=yb_flat)
            h = xb
            for layer in self._layers:
                h = layer.forward(h)
            # Fused softmax cross-entropy gradient: (softmax − one-hot) / B_k
            # per worker — exactly the scalar loss normalisation, computed
            # in place in the logits buffer; padded rows are zeroed by the
            # validity mask.
            h -= h.max(axis=-1, keepdims=True)
            np.exp(h, out=h)
            h /= h.sum(axis=-1, keepdims=True)
            grad = h
            flat = grad.reshape(g * b_max, -1)
            flat[row_index, yb.reshape(-1)] -= 1.0
            grad /= geo["batch_div"]
            if ragged:
                grad *= geo["valid"][:, :, None]
            for layer in reversed(self._layers):
                grad = layer.backward(grad)
            for bd in self._dense:
                bd.sgd_step(learning_rate)

        rows = out[active] if len(active) != len(ids) else out
        for bd in self._dense:
            bd.dump(rows)
        if rows is not out:
            out[active] = rows
        return out
