"""Optimizers operating on :class:`~repro.nn.params.ParameterSet` objects.

The paper's local update rule (Eq. (4)) is plain gradient descent with step
size γ.  We also provide SGD with momentum and weight decay because several
baselines in the literature (and the ablations in ``benchmarks/``) use them.
All updates are performed in place on the parameter buffers so that repeated
rounds do not allocate.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .params import ParameterSet

__all__ = ["Optimizer", "SGD"]


class Optimizer:
    """Base class: holds a parameter set and applies in-place updates."""

    def __init__(self, params: ParameterSet) -> None:
        self.params = params

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.params.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    With ``momentum=0`` and ``weight_decay=0`` this is exactly the paper's
    local update ``w <- w - γ ∇f_i(w)``.
    """

    def __init__(
        self,
        params: ParameterSet,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * p.value
            if self.momentum > 0.0:
                v = self._velocity.get(p.name)
                if v is None:
                    v = np.zeros_like(p.value)
                    self._velocity[p.name] = v
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.value -= self.lr * update

    def set_lr(self, lr: float) -> None:
        """Change the learning rate (used by staleness-adaptive baselines)."""
        if lr <= 0.0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
