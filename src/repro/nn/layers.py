"""Neural-network layers with explicit forward/backward passes.

This is a small, dependency-free replacement for the PyTorch modules the
paper uses.  Every layer implements

* ``forward(x, training)`` — returns the layer output and caches whatever it
  needs for the backward pass, and
* ``backward(grad_out)`` — consumes the gradient of the loss with respect to
  the layer output, accumulates parameter gradients in place, and returns
  the gradient with respect to the layer input.

Implementation notes (following the HPC guides):

* Convolutions use the im2col/col2im transformation so that the inner work
  is a single large ``matmul`` instead of nested Python loops.
* Buffers are kept C-contiguous ``float64`` throughout; reshapes are views.
* Pooling uses reshape-based windowing (stride == kernel) which is the case
  for every model in the paper, avoiding fancy indexing on the hot path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import initializers
from .params import Parameter, ParameterSet

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
    "im2col",
    "col2im",
]


class Layer:
    """Base class for all layers.

    Sub-classes that own parameters must register them through
    :meth:`register_parameter` so that a :class:`~repro.nn.params.ParameterSet`
    can be assembled in a deterministic order.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._parameters: List[Parameter] = []

    # ------------------------------------------------------------------
    def register_parameter(self, suffix: str, value: np.ndarray) -> Parameter:
        param = Parameter(f"{self.name}.{suffix}", value)
        self._parameters.append(param)
        return param

    @property
    def parameters(self) -> List[Parameter]:
        return list(self._parameters)

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Dense(Layer):
    """Fully-connected layer ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output dimensionality.
    rng:
        Random generator for weight initialization.
    activationless_init:
        If ``True``, use Xavier initialization (for output/softmax layers);
        otherwise He initialization (for ReLU hidden layers).
    """

    def __init__(
        self,
        name: str,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
        activationless_init: bool = False,
    ) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense layer dimensions must be positive")
        init = (
            initializers.xavier_uniform
            if activationless_init
            else initializers.he_normal
        )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", init((in_features, out_features), rng)
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter(
                "bias", initializers.zeros((out_features,))
            )
        self._cache_x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(
                f"Dense layer {self.name!r} expects 2-D input, got shape {x.shape}"
            )
        if x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense layer {self.name!r} expects {self.in_features} features, "
                f"got {x.shape[1]}"
            )
        self._cache_x = x if training else None
        out = x @ self.weight.value
        if self.bias is not None:
            out += self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache_x is None:
            raise RuntimeError(
                "backward called before forward (or forward ran with training=False)"
            )
        x = self._cache_x
        self.weight.accumulate_grad(x.T @ grad_out)
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        return grad_out @ self.weight.value.T


class ReLU(Layer):
    """Element-wise rectified linear unit.

    The boolean mask needed by the backward pass is kept in a reusable
    buffer (re-allocated only when the batch shape changes), so steady-state
    training rounds do not allocate a fresh mask-sized array per forward.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._mask: Optional[np.ndarray] = None
        self._mask_buf: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if training:
            if self._mask_buf is None or self._mask_buf.shape != x.shape:
                self._mask_buf = np.empty(x.shape, dtype=bool)
            np.greater(x, 0.0, out=self._mask_buf)
            self._mask = self._mask_buf
        else:
            self._mask = None
        return np.maximum(x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._mask


class Flatten(Layer):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout.  Active only when ``training=True``."""

    def __init__(self, name: str, rate: float, rng: np.random.Generator) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


# ----------------------------------------------------------------------
# im2col helpers (vectorized convolution)
# ----------------------------------------------------------------------
def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input batch of shape ``(N, C, H, W)``.
    kernel:
        Kernel height and width ``(kh, kw)``.
    stride, padding:
        Convolution stride and symmetric zero padding.

    Returns
    -------
    cols, (out_h, out_w):
        ``cols`` has shape ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride}, padding {padding} does not "
            f"fit input of spatial size {(h, w)}"
        )
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # Use stride tricks to build a (N, C, out_h, out_w, kh, kw) view without
    # copying, then reorder once into the column matrix.
    s0, s1, s2, s3 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
        n * out_h * out_w, c * kh * kw
    )
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add columns back into an image."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = (h + 2 * padding - kh) // stride + 1
    out_w = (w + 2 * padding - kw) // stride + 1
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        i_max = i + stride * out_h
        for j in range(kw):
            j_max = j + stride * out_w
            padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, :, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


class Conv2D(Layer):
    """2-D convolution ``(N, C_in, H, W) -> (N, C_out, H', W')`` via im2col."""

    def __init__(
        self,
        name: str,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__(name)
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution geometry")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = self.register_parameter(
            "weight",
            initializers.he_normal(
                (out_channels, in_channels, kernel_size, kernel_size), rng
            ),
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = self.register_parameter(
                "bias", initializers.zeros((out_channels,))
            )
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...], Tuple[int, int]]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D {self.name!r} expects input (N, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        k = (self.kernel_size, self.kernel_size)
        cols, (out_h, out_w) = im2col(x, k, self.stride, self.padding)
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        out = cols @ w_mat.T
        if self.bias is not None:
            out += self.bias.value
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (cols, x.shape, (out_h, out_w))
        else:
            self._cache = None
        return np.ascontiguousarray(out)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, input_shape, (out_h, out_w) = self._cache
        n = input_shape[0]
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(
            n * out_h * out_w, self.out_channels
        )
        w_mat = self.weight.value.reshape(self.out_channels, -1)
        self.weight.accumulate_grad(
            (grad_mat.T @ cols).reshape(self.weight.value.shape)
        )
        if self.bias is not None:
            self.bias.accumulate_grad(grad_mat.sum(axis=0))
        grad_cols = grad_mat @ w_mat
        k = (self.kernel_size, self.kernel_size)
        return col2im(grad_cols, input_shape, k, self.stride, self.padding)


class MaxPool2D(Layer):
    """Non-overlapping max pooling (stride equals the pooling window).

    Shape constraint
    ----------------
    Both spatial dimensions of the input must be **divisible by
    ``pool_size``** — the layer uses reshape-based windowing (stride ==
    kernel, no implicit padding or truncation), which is the case for every
    model in the paper.  :meth:`forward` validates the constraint and raises
    a :class:`ValueError` naming the offending shape, so a mismatched
    architecture fails fast on its first batch rather than mid-training
    with an opaque reshape error.  Choose the input image size so that each
    pooling stage halves (for ``pool_size=2``) an even spatial extent, e.g.
    ``image_size % 4 == 0`` for the two-pool CNNs in
    :mod:`repro.nn.models`.
    """

    def __init__(self, name: str, pool_size: int = 2) -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._cache: Optional[Tuple[np.ndarray, np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        p = self.pool_size
        if h % p != 0 or w % p != 0:
            raise ValueError(
                f"MaxPool2D {self.name!r}: spatial size {(h, w)} is not divisible "
                f"by pool size {p}"
            )
        out_h, out_w = h // p, w // p
        windows = x.reshape(n, c, out_h, p, out_w, p)
        out = windows.max(axis=(3, 5))
        if training:
            # Remember which element in each window was the max.  Ties are
            # broken toward the first occurrence by comparing against the max
            # and normalizing the mask so the gradient is not double counted.
            mask = windows == out[:, :, :, None, :, None]
            counts = mask.sum(axis=(3, 5), keepdims=True)
            self._cache = (mask / counts, x.shape, (out_h, out_w))  # type: ignore[assignment]
        else:
            self._cache = None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, input_shape, _ = self._cache
        grad = mask * grad_out[:, :, :, None, :, None]
        return grad.reshape(input_shape)


def collect_parameters(layers: List[Layer]) -> ParameterSet:
    """Gather parameters from an ordered list of layers into a ParameterSet."""
    params = ParameterSet()
    for layer in layers:
        for p in layer.parameters:
            params.add(p)
    return params
