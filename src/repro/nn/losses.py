"""Loss functions.

The paper trains K-class classifiers with the cross-entropy loss (Eq. (1)/(2)).
We provide a numerically stable fused softmax + cross-entropy, which is what
both the global loss ``F(w)`` and the per-worker losses ``f_i(w)`` reduce to
when evaluated on empirical data.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "cross_entropy_from_probs",
    "accuracy",
]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient with respect to the logits.

    Parameters
    ----------
    logits:
        Raw scores of shape ``(batch, num_classes)``.
    labels:
        Integer class labels of shape ``(batch,)``.

    Returns
    -------
    loss, grad:
        Scalar mean loss and gradient array of the same shape as ``logits``.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
        raise ValueError(
            f"labels shape {labels.shape} incompatible with logits {logits.shape}"
        )
    n, k = logits.shape
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValueError("label values out of range for the given logits")
    log_probs = log_softmax(logits, axis=1)
    idx = np.arange(n)
    loss = -float(log_probs[idx, labels].mean())
    grad = softmax(logits, axis=1)
    grad[idx, labels] -= 1.0
    grad /= n
    return loss, grad


def cross_entropy_from_probs(probs: np.ndarray, labels: np.ndarray) -> float:
    """Cross-entropy given already-normalized probabilities (evaluation only)."""
    n = probs.shape[0]
    idx = np.arange(n)
    clipped = np.clip(probs[idx, np.asarray(labels)], 1e-12, 1.0)
    return -float(np.log(clipped).mean())


def accuracy(logits_or_probs: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy."""
    preds = np.argmax(logits_or_probs, axis=1)
    labels = np.asarray(labels)
    if preds.shape != labels.shape:
        raise ValueError("prediction/label shape mismatch")
    if labels.size == 0:
        return 0.0
    return float((preds == labels).mean())
