"""Parameter containers and vector <-> structured-parameter conversion.

The Air-FedGA mechanism (and AirComp aggregation in general) operates on the
*flattened* model parameter vector ``w``: workers transmit analog waveforms
whose amplitudes encode the entries of ``w``, and the parameter server
receives a noisy superposition of those vectors.  Every model in
:mod:`repro.nn` therefore exposes its parameters both as a list of named
NumPy arrays (convenient for layer-wise backpropagation) and as a single
contiguous 1-D ``float64`` vector (convenient for channel simulation and
aggregation).

The conversion helpers here are deliberately allocation-conscious: flattening
writes into a single pre-allocated buffer using ``np.concatenate`` on views,
and unflattening produces views that are reshaped copies only when strides
require it.  Hot training loops re-use the same buffer via
:meth:`ParameterVector.copy_into`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Parameter",
    "ParameterSet",
    "ParameterVector",
    "flatten_parameters",
    "unflatten_vector",
    "default_dtype",
    "parameter_dtype",
]

#: Floating dtypes a simulation may run in.  ``float64`` is the reference
#: mode (all equivalence tests run in it); ``float32`` halves the memory
#: bandwidth of the O(q) hot paths for large sweeps at the cost of ~1e-7
#: relative rounding per operation.
_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE = np.dtype(np.float64)


def default_dtype() -> np.dtype:
    """The dtype newly constructed :class:`Parameter` values are cast to."""
    return _DEFAULT_DTYPE


@contextmanager
def parameter_dtype(dtype: np.dtype | str):
    """Context manager switching the default parameter dtype.

    Trainers wrap their ``model_factory()`` call in this so a single
    config knob (``AirFedGAConfig.dtype``) switches the whole simulation
    between ``float64`` (reference) and ``float32`` (bandwidth-saving) mode
    without touching every layer constructor.
    """
    global _DEFAULT_DTYPE
    dt = np.dtype(dtype)
    if dt not in _SUPPORTED_DTYPES:
        raise ValueError(f"unsupported parameter dtype {dt}; use float32 or float64")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = dt
    try:
        yield
    finally:
        _DEFAULT_DTYPE = previous


@dataclass
class Parameter:
    """A single trainable tensor together with its gradient accumulator.

    Attributes
    ----------
    name:
        Human-readable identifier, unique within a :class:`ParameterSet`
        (e.g. ``"conv1.weight"``).
    value:
        The parameter tensor.  Always stored as ``float64`` and C-contiguous
        so that flattening is a cheap ``ravel`` view.
    grad:
        Gradient of the loss with respect to ``value``.  Allocated lazily on
        the first backward pass and zeroed in-place afterwards to avoid
        repeated allocation in training loops.
    """

    name: str
    value: np.ndarray
    grad: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.value = np.ascontiguousarray(self.value, dtype=default_dtype())

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    def ensure_grad(self) -> np.ndarray:
        """Return the gradient buffer, allocating it (zeroed) if needed."""
        if self.grad is None or self.grad.shape != self.value.shape:
            self.grad = np.zeros_like(self.value)
        return self.grad

    def zero_grad(self) -> None:
        """Zero the gradient buffer in place (no-op if never allocated)."""
        if self.grad is not None:
            self.grad.fill(0.0)

    def accumulate_grad(self, delta: np.ndarray) -> None:
        """Add ``delta`` into the gradient buffer in place."""
        g = self.ensure_grad()
        np.add(g, delta, out=g)


class ParameterSet:
    """Ordered collection of named :class:`Parameter` objects.

    The ordering is significant: the flattened vector layout is defined by
    insertion order, and every worker in a federated run must use the same
    layout for over-the-air aggregation to be meaningful.  Layers register
    their parameters at construction time, so identical model constructors
    yield identical layouts.
    """

    def __init__(self, parameters: Sequence[Parameter] | None = None) -> None:
        self._params: List[Parameter] = []
        self._by_name: Dict[str, Parameter] = {}
        if parameters:
            for p in parameters:
                self.add(p)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def add(self, param: Parameter) -> Parameter:
        if param.name in self._by_name:
            raise ValueError(f"duplicate parameter name: {param.name!r}")
        self._params.append(param)
        self._by_name[param.name] = param
        return param

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    def __getitem__(self, key: str | int) -> Parameter:
        if isinstance(key, int):
            return self._params[key]
        return self._by_name[key]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return [p.name for p in self._params]

    def shapes(self) -> List[Tuple[int, ...]]:
        return [p.shape for p in self._params]

    # ------------------------------------------------------------------
    # Vector conversion
    # ------------------------------------------------------------------
    @property
    def total_size(self) -> int:
        """Total number of scalar parameters (the model dimension ``q``)."""
        return sum(p.size for p in self._params)

    def to_vector(self, out: np.ndarray | None = None) -> np.ndarray:
        """Flatten all parameter values into a single 1-D ``float64`` vector."""
        return flatten_parameters([p.value for p in self._params], out=out)

    def grad_vector(self, out: np.ndarray | None = None) -> np.ndarray:
        """Flatten all gradients into a single 1-D vector (zeros if unset)."""
        grads = [
            p.grad if p.grad is not None else np.zeros_like(p.value)
            for p in self._params
        ]
        return flatten_parameters(grads, out=out)

    def from_vector(self, vector: np.ndarray) -> None:
        """Load parameter values in place from a flat vector."""
        blocks = unflatten_vector(vector, self.shapes())
        for p, block in zip(self._params, blocks):
            np.copyto(p.value, block)

    def zero_grad(self) -> None:
        for p in self._params:
            p.zero_grad()

    def copy(self) -> "ParameterSet":
        """Deep copy of the parameter set (gradients are not copied)."""
        return ParameterSet(
            [Parameter(p.name, p.value.copy()) for p in self._params]
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {p.name: p.value.copy() for p in self._params}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        missing = [n for n in self._by_name if n not in state]
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        for name, value in state.items():
            if name not in self._by_name:
                raise KeyError(f"unexpected parameter in state dict: {name!r}")
            param = self._by_name[name]
            if param.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{param.shape} vs {value.shape}"
                )
            np.copyto(param.value, value)


@dataclass
class ParameterVector:
    """A flat model vector paired with the layout needed to restore it.

    This is the unit that travels through the simulated wireless channel.
    ``data`` is always 1-D, C-contiguous ``float64`` so that AirComp
    superposition (element-wise sums of many vectors) vectorizes cleanly.
    """

    data: np.ndarray
    shapes: List[Tuple[int, ...]] = field(default_factory=list)

    def __post_init__(self) -> None:
        data = np.asarray(self.data)
        if data.dtype not in _SUPPORTED_DTYPES:
            data = data.astype(np.float64)
        self.data = np.ascontiguousarray(data).ravel()

    @property
    def dimension(self) -> int:
        return int(self.data.size)

    def norm(self) -> float:
        """Euclidean norm of the flat vector (used for the model bound W_t)."""
        return float(np.linalg.norm(self.data))

    def copy(self) -> "ParameterVector":
        return ParameterVector(self.data.copy(), list(self.shapes))

    def copy_into(self, out: np.ndarray) -> np.ndarray:
        """Copy the vector into a pre-allocated buffer and return it."""
        if out.shape != self.data.shape:
            raise ValueError(
                f"buffer shape {out.shape} does not match vector shape "
                f"{self.data.shape}"
            )
        np.copyto(out, self.data)
        return out


def flatten_parameters(
    arrays: Sequence[np.ndarray], out: np.ndarray | None = None
) -> np.ndarray:
    """Concatenate arbitrary-shaped arrays into one flat ``float64`` vector.

    Parameters
    ----------
    arrays:
        Tensors to flatten, in layout order.
    out:
        Optional pre-allocated destination of the correct total size.  When
        given, no new vector is allocated; each block is copied into its
        slice of ``out``.
    """
    total = sum(int(a.size) for a in arrays)
    if out is None:
        dtype = (
            np.result_type(*(np.asarray(a).dtype for a in arrays))
            if arrays
            else np.float64
        )
        if dtype not in _SUPPORTED_DTYPES:
            dtype = np.dtype(np.float64)
        out = np.empty(total, dtype=dtype)
    elif out.size != total:
        raise ValueError(
            f"output buffer has size {out.size}, expected {total}"
        )
    offset = 0
    for a in arrays:
        n = int(a.size)
        out[offset : offset + n] = np.asarray(a).ravel()
        offset += n
    return out


def unflatten_vector(
    vector: np.ndarray, shapes: Sequence[Tuple[int, ...]]
) -> List[np.ndarray]:
    """Split a flat vector back into blocks of the given shapes.

    The returned arrays are reshaped *views* into ``vector`` whenever the
    vector is contiguous, so callers that only read the blocks pay no copy.
    """
    vector = np.asarray(vector)
    if vector.dtype not in _SUPPORTED_DTYPES:
        vector = vector.astype(np.float64)
    vector = vector.ravel()
    expected = sum(int(np.prod(s)) if s else 1 for s in shapes)
    if vector.size != expected:
        raise ValueError(
            f"vector has {vector.size} entries but shapes require {expected}"
        )
    blocks: List[np.ndarray] = []
    offset = 0
    for shape in shapes:
        n = int(np.prod(shape)) if shape else 1
        blocks.append(vector[offset : offset + n].reshape(shape))
        offset += n
    return blocks
