"""NumPy neural-network substrate.

A minimal, dependency-free replacement for the PyTorch models the paper
uses: layers with explicit forward/backward passes, classification losses,
SGD, and flat-vector parameter access for over-the-air aggregation.
"""

from .params import (
    Parameter,
    ParameterSet,
    ParameterVector,
    default_dtype,
    flatten_parameters,
    parameter_dtype,
    unflatten_vector,
)
from .batched import (
    BatchedKernel,
    BatchedWorkerEngine,
    EngineSpec,
    batched_layer_supported,
    model_shard_safe,
    register_batched_kernel,
    shared_stack_view,
)
from .layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    col2im,
    im2col,
)
from .losses import (
    accuracy,
    cross_entropy_from_probs,
    log_softmax,
    softmax,
    softmax_cross_entropy,
)
from .optim import SGD, Optimizer
from .models import (
    CifarCNN,
    LogisticRegressionMLP,
    MiniVGG,
    MnistCNN,
    Model,
    SequentialModel,
    MODEL_REGISTRY,
    build_model,
)

__all__ = [
    "Parameter",
    "ParameterSet",
    "ParameterVector",
    "flatten_parameters",
    "unflatten_vector",
    "default_dtype",
    "parameter_dtype",
    "BatchedKernel",
    "BatchedWorkerEngine",
    "EngineSpec",
    "batched_layer_supported",
    "model_shard_safe",
    "register_batched_kernel",
    "shared_stack_view",
    "Layer",
    "Dense",
    "ReLU",
    "Flatten",
    "Dropout",
    "Conv2D",
    "MaxPool2D",
    "im2col",
    "col2im",
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "cross_entropy_from_probs",
    "accuracy",
    "Optimizer",
    "SGD",
    "Model",
    "SequentialModel",
    "LogisticRegressionMLP",
    "MnistCNN",
    "CifarCNN",
    "MiniVGG",
    "build_model",
    "MODEL_REGISTRY",
]
