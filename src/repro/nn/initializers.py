"""Weight initialization schemes for the NumPy neural-network substrate.

All initializers take an explicit :class:`numpy.random.Generator` so that
federated experiments are fully reproducible: every worker in a simulation
starts from the *same* global model, which requires the server to construct
the model once with a fixed seed and broadcast it.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "zeros",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "conv_fan",
]


def zeros(shape: Tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialization (used for biases)."""
    return np.zeros(shape, dtype=np.float64)


def uniform(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    low: float = -0.05,
    high: float = 0.05,
) -> np.ndarray:
    """Uniform initialization in ``[low, high)``."""
    return rng.uniform(low, high, size=shape).astype(np.float64)


def normal(
    shape: Tuple[int, ...],
    rng: np.random.Generator,
    std: float = 0.05,
) -> np.ndarray:
    """Zero-mean Gaussian initialization with standard deviation ``std``."""
    return (rng.standard_normal(shape) * std).astype(np.float64)


def _dense_fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out for a dense weight matrix ``(in, out)``."""
    if len(shape) != 2:
        raise ValueError(f"dense fan computation expects a 2-D shape, got {shape}")
    return shape[0], shape[1]


def conv_fan(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out for a conv kernel ``(out_ch, in_ch, kh, kw)``."""
    if len(shape) != 4:
        raise ValueError(f"conv fan computation expects a 4-D shape, got {shape}")
    out_ch, in_ch, kh, kw = shape
    receptive = kh * kw
    return in_ch * receptive, out_ch * receptive


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 2:
        return _dense_fans(shape)
    if len(shape) == 4:
        return conv_fan(shape)
    n = int(np.prod(shape))
    return n, n


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float64)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) uniform initialization, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) normal initialization, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float64)
