"""Figure 9: model-aggregation energy consumption vs. target accuracy.

Paper result (CNN on MNIST and CIFAR-10): to reach the same accuracy,
Air-FedGA spends slightly more transmit energy than Air-FedAvg (its groups
aggregate more often) but clearly less than Dynamic (which needs many more
rounds because its worker selection ignores the data distribution) — e.g.
28432 J (Air-FedAvg) vs 30856 J (Air-FedGA) vs 42343 J (Dynamic) at 55% on
CIFAR-10.
"""

from __future__ import annotations

from repro.experiments import energy_vs_accuracy, format_table
from .workloads import ACCURACY_TARGETS, fig4_config


def run_energy():
    config = fig4_config(num_workers=30, max_time=2200.0)
    targets = ACCURACY_TARGETS["cnn_mnist"]
    return energy_vs_accuracy(config, accuracy_targets=targets), targets


def test_fig9_energy(benchmark):
    results, targets = benchmark.pedantic(run_energy, rounds=1, iterations=1)

    rows = []
    for name, entry in results.items():
        rows.append(
            tuple(
                [name]
                + [entry[t] for t in targets]
                + [entry["_final_accuracy"], entry["_total_energy"]]
            )
        )
    print("\n=== Fig. 9 — aggregation energy vs accuracy (CNN on synthetic MNIST) ===")
    print(
        format_table(
            ["mechanism"]
            + [f"E@{int(t*100)}% (J)" for t in targets]
            + ["final acc", "total energy (J)"],
            rows,
            precision=1,
        )
    )

    # Every AirComp mechanism spends transmit energy.
    for name, entry in results.items():
        assert entry["_total_energy"] > 0, f"{name} recorded no transmit energy"

    # Paper ordering per accuracy level: Air-FedAvg <= Air-FedGA (the grouped
    # mechanism aggregates more often, so it pays somewhat more energy), and
    # Dynamic is the most expensive way to reach a given accuracy — either it
    # spends more energy than Air-FedGA at the highest level both reach, or it
    # simply never reaches the levels Air-FedGA reaches within the budget.
    reached_by_ga = [t for t in targets if results["air_fedga"][t] is not None]
    assert reached_by_ga, "Air-FedGA reached none of the accuracy targets"
    lowest = reached_by_ga[0]
    if results["air_fedavg"][lowest] is not None:
        assert results["air_fedavg"][lowest] <= results["air_fedga"][lowest] * 1.2

    highest = reached_by_ga[-1]
    dyn_at_highest = results["dynamic"][highest]
    if dyn_at_highest is not None:
        assert results["air_fedga"][highest] <= dyn_at_highest * 1.2
    else:
        # Dynamic never reached the accuracy Air-FedGA reached: its energy to
        # that accuracy is effectively unbounded, which is the paper's point.
        assert results["dynamic"]["_final_accuracy"] <= results["air_fedga"]["_final_accuracy"]
