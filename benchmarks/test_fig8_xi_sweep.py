"""Figure 8: training time to target accuracy as a function of ξ.

Paper result: time-to-accuracy is minimized at ξ = 0.3; ξ → 0 degenerates to
fully-asynchronous single-worker updates without AirComp gains (training time
explodes to >14000 s) and ξ → 1 recreates the straggler problem (823 s vs
485 s at 80%).  At benchmark scale we sweep ξ ∈ {0, 0.3, 1} and check that
one of the extreme settings is not better than the paper's ξ = 0.3 operating
point.
"""

from __future__ import annotations

import math

from repro.experiments import format_table, xi_sweep
from .workloads import ACCURACY_TARGETS, fig3_config


XI_VALUES = (0.0, 0.3, 1.0)


def run_sweep():
    config = fig3_config(num_workers=30, max_time=2000.0)
    targets = ACCURACY_TARGETS["lr_mnist"]
    return xi_sweep(config, xi_values=XI_VALUES, accuracy_targets=targets), targets


def test_fig8_xi_sweep(benchmark):
    results, targets = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    for xi in XI_VALUES:
        entry = results[xi]
        rows.append(
            (
                xi,
                entry["_num_groups"],
                entry["_final_accuracy"],
                entry[targets[0]],
                entry[targets[1]],
                entry[targets[2]],
            )
        )
    print("\n=== Fig. 8 — training time vs xi (Air-FedGA) ===")
    print(
        format_table(
            ["xi", "groups", "final acc"] + [f"t@{int(t*100)}% (s)" for t in targets],
            rows,
        )
    )

    # xi = 0 must produce (many) more groups than xi = 1.
    assert results[0.0]["_num_groups"] > results[1.0]["_num_groups"]

    # The paper's operating point xi = 0.3 reaches the first target, and at
    # least one of the extremes is no better than it (the U-shape of Fig. 8).
    def time_or_inf(xi, target):
        value = results[xi][target]
        return math.inf if value is None else value

    target = targets[0]
    t_mid = time_or_inf(0.3, target)
    assert t_mid < math.inf, "Air-FedGA at xi=0.3 never reached the target accuracy"
    assert t_mid <= max(time_or_inf(0.0, target), time_or_inf(1.0, target)) * 1.1
