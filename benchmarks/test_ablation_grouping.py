"""Ablation E-A2: grouping strategy — data-aware greedy vs time tiers vs random.

DESIGN.md calls out the grouping objective as the second design choice worth
ablating.  All strategies run the *same* Air-FedGA aggregation mechanism and
differ only in how the groups are formed:

* ``greedy``    — the paper's Algorithm 3 (time-similar groups, near-IID
  inter-group label distributions),
* ``tier``      — TiFL-style tiers by local-training time only,
* ``random``    — random assignment into the same number of groups,
* ``singleton`` — every worker alone (fully asynchronous, no AirComp gain).
"""

from __future__ import annotations

from repro.data import average_emd
from repro.experiments import build_experiment, format_table
from repro.fl import AirFedGATrainer
from .workloads import ACCURACY_TARGETS, fig3_config


STRATEGIES = ("greedy", "tier", "random", "singleton")


def run_ablation():
    config = fig3_config(num_workers=30, max_time=1500.0)
    results = {}
    greedy_groups = None
    for strategy in STRATEGIES:
        experiment = build_experiment(config)
        kwargs = {}
        if strategy in ("tier", "random") and greedy_groups is not None:
            kwargs["num_groups"] = greedy_groups
        trainer = AirFedGATrainer(experiment, grouping_strategy=strategy, **kwargs)
        if strategy == "greedy":
            greedy_groups = trainer.grouping_result.num_groups
        history = trainer.run(max_rounds=config.max_rounds, max_time=config.max_time)
        results[strategy] = {
            "history": history,
            "num_groups": trainer.grouping_result.num_groups,
            "emd": average_emd(experiment.partition, trainer.groups),
        }
    return results


def test_ablation_grouping(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    target = ACCURACY_TARGETS["lr_mnist"][0]

    rows = []
    for strategy in STRATEGIES:
        entry = results[strategy]
        h = entry["history"]
        rows.append(
            (
                strategy,
                entry["num_groups"],
                entry["emd"],
                h.total_rounds,
                h.best_accuracy(),
                h.time_to_accuracy(target),
            )
        )
    print("\n=== Ablation — grouping strategy (Air-FedGA mechanism) ===")
    print(
        format_table(
            ["strategy", "groups", "avg EMD", "rounds", "best acc",
             f"t@{int(target*100)}% (s)"],
            rows,
        )
    )

    greedy = results["greedy"]
    # The data-aware greedy grouping yields lower inter-group EMD than time
    # tiers and random groups of the same group count.
    assert greedy["emd"] <= results["tier"]["emd"] + 1e-9
    assert greedy["emd"] <= results["random"]["emd"] + 0.1
    # The greedy grouping learns: it reaches the target within the budget.
    assert greedy["history"].time_to_accuracy(target) is not None
    # Fully-asynchronous singleton groups perform many more (smaller) updates.
    assert results["singleton"]["num_groups"] > greedy["num_groups"]
