"""Ablation E-A1: the power-control algorithm (Algorithm 2) vs. naive settings.

DESIGN.md calls out power control as a design choice worth ablating: the
alternating optimization of (σ_t, η_t) minimizes the per-round aggregation
error C_t under the energy budget.  This benchmark compares, across channel
realizations and group sizes:

* Algorithm 2 (the paper's choice),
* a naive policy that transmits at the energy cap with no denoising (η = 1),
* a matched-but-timid policy using 10% of the allowed power.

and reports the resulting error term and the end-to-end effect on training
accuracy under a strongly noisy channel.
"""

from __future__ import annotations

import numpy as np

from repro.channel import RayleighFading, aggregation_error_term
from repro.core import AirCompConfig, solve_power_control
from repro.experiments import format_table, run_mechanism
from .workloads import fig3_config


def error_term_study(num_rounds: int = 20, num_workers: int = 12, seed: int = 0):
    """Compare C_t of Algorithm 2 against naive policies over many rounds."""
    rng = np.random.default_rng(seed)
    channel = RayleighFading(num_workers=num_workers, seed=seed)
    sizes = rng.integers(20, 80, size=num_workers).astype(float)
    model_bound = 30.0
    cfg = AirCompConfig(noise_variance=1e-4, energy_budget_j=10.0)
    group_size = float(sizes.sum())

    ratios_naive, ratios_timid = [], []
    for r in range(num_rounds):
        gains = channel.gains(r)
        pc = solve_power_control(sizes, gains, model_bound, cfg)
        naive = aggregation_error_term(
            pc.sigma_cap, 1.0, model_bound, cfg.noise_variance, group_size
        )
        timid_sigma = 0.1 * pc.sigma_cap
        timid = aggregation_error_term(
            timid_sigma, timid_sigma**2, model_bound, cfg.noise_variance, group_size
        )
        # The timid policy is matched (sigma = sqrt(eta)) so its residual is
        # purely the noise term; compare everything to Algorithm 2.
        ratios_naive.append(naive / pc.error_term)
        ratios_timid.append(timid / max(pc.error_term, 1e-300))
    return float(np.mean(ratios_naive)), float(np.mean(ratios_timid))


def end_to_end_study():
    """Effect of power control on training under a very noisy channel."""
    config = fig3_config(num_workers=20, max_time=1200.0)
    noisy = config.scaled(
        config=type(config.config)(
            aircomp=AirCompConfig(noise_variance=100.0, energy_budget_j=10.0)
        )
    )
    with_pc = run_mechanism(noisy, "air_fedga")
    # Comparing against a heavily reduced budget shows the cost of operating
    # with less transmit power: sigma is capped far below sqrt(eta), so the
    # aggregation error term grows and training degrades.
    starved = noisy.scaled(
        config=type(config.config)(
            aircomp=AirCompConfig(noise_variance=100.0, energy_budget_j=0.5)
        )
    )
    with_tiny_budget = run_mechanism(starved, "air_fedga")
    return with_pc, with_tiny_budget


def test_ablation_power_control(benchmark):
    (naive_ratio, timid_ratio), (with_pc, starved) = benchmark.pedantic(
        lambda: (error_term_study(), end_to_end_study()), rounds=1, iterations=1
    )

    print("\n=== Ablation — power control (Algorithm 2) ===")
    print(
        format_table(
            ["policy", "mean C_t relative to Algorithm 2"],
            [
                ("Algorithm 2 (paper)", 1.0),
                ("energy cap, eta = 1", naive_ratio),
                ("10% of allowed power", timid_ratio),
            ],
        )
    )
    print(
        format_table(
            ["setting", "best accuracy", "total energy (J)"],
            [
                ("noisy channel, full energy budget", with_pc.best_accuracy(),
                 with_pc.total_energy),
                ("noisy channel, 0.1% energy budget", starved.best_accuracy(),
                 starved.total_energy),
            ],
        )
    )

    # Algorithm 2 is never worse than the naive policies on the error term.
    assert naive_ratio >= 1.0
    assert timid_ratio >= 1.0
    # With a starved energy budget the aggregation is noisier, so training is
    # not better than with the full budget.  If the starved run diverges to
    # non-finite values, that is an even stronger demonstration of the same
    # point, so only compare energies when both runs stayed finite.
    assert with_pc.best_accuracy() >= starved.best_accuracy() - 0.05
    if np.isfinite(starved.total_energy):
        assert starved.total_energy < with_pc.total_energy
