"""Figure 5: Loss/Accuracy vs. time for CNN on CIFAR-10 (AirComp mechanisms).

Paper shape: the CIFAR-10 task saturates at a much lower accuracy than MNIST
(≈55-60% in the paper), with the same mechanism ordering: Air-FedGA first,
then Air-FedAvg, then Dynamic.
"""

from __future__ import annotations

from .figure_utils import assert_air_fedga_competitive, run_and_report_figure
from .workloads import ACCURACY_TARGETS, fig5_config


def test_fig5_cnn_cifar10(benchmark):
    config = fig5_config()
    targets = ACCURACY_TARGETS["cnn_cifar10"]

    histories = benchmark.pedantic(
        run_and_report_figure,
        args=(config, "Fig. 5 — CNN on synthetic CIFAR-10", targets),
        rounds=1,
        iterations=1,
    )

    for name, history in histories.items():
        assert history.best_accuracy() > 0.2, f"{name} failed to learn"
    # The harder task keeps accuracies below the MNIST workloads' plateau,
    # mirroring the paper's Fig. 4 vs Fig. 5 relationship.
    assert_air_fedga_competitive(histories, target=targets[0])
