"""Figure 7: per-group spread of local training times at ξ = 0.3.

Paper result: with 100 heterogeneous workers (local training times 8.1 s to
61.6 s) Algorithm 3 clusters workers of comparable speed — e.g. group 7 spans
49.1-61.6 s.  This benchmark regenerates the box-plot data (min / quartiles /
max per group) and checks that every group's spread respects the ξ·Δl
constraint.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import format_table, grouping_boxplot_data


NUM_WORKERS = 100
XI = 0.3


def generate():
    return grouping_boxplot_data(num_workers=NUM_WORKERS, xi=XI, seed=0)


def test_fig7_grouping_boxplot(benchmark):
    data = benchmark.pedantic(generate, rounds=1, iterations=1)

    rows = []
    for group, times in sorted(data.items()):
        arr = np.asarray(times)
        rows.append(
            (
                group,
                len(times),
                float(arr.min()),
                float(np.percentile(arr, 25)),
                float(np.median(arr)),
                float(np.percentile(arr, 75)),
                float(arr.max()),
            )
        )
    print("\n=== Fig. 7 — grouping of 100 heterogeneous workers (xi = 0.3) ===")
    print(
        format_table(
            ["group", "workers", "min (s)", "q25 (s)", "median (s)", "q75 (s)", "max (s)"],
            rows,
            precision=1,
        )
    )

    # Every worker is grouped exactly once.
    assert sum(len(v) for v in data.values()) == NUM_WORKERS

    # The intra-group time-similarity constraint (36d): each group's spread is
    # bounded by xi * (global spread).
    all_times = np.concatenate([np.asarray(v) for v in data.values()])
    slack = XI * (all_times.max() - all_times.min())
    for times in data.values():
        arr = np.asarray(times)
        assert arr.max() - arr.min() <= slack + 1e-9

    # Groups are ordered by speed: medians increase left to right, as in the
    # paper's box plot.
    medians = [float(np.median(v)) for _, v in sorted(data.items())]
    assert all(a <= b + 1e-9 for a, b in zip(medians, medians[1:]))
