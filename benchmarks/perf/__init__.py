"""Performance benchmarks for the vectorized training/aggregation engine."""
