"""Perf-harness smoke tests: the benchmark tiers run and the vectorized
paths are not slower than the scalar reference.

These are CI guards, not the real measurement — they use the ``--quick``
sizes and assert loose bounds so machine noise cannot flake them.  The
real numbers live in BENCH_perf_v1.json (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from repro.experiments.bench import (
    bench_aggregation_micro,
    bench_cnn_mnist_mini,
    bench_grouped_round,
    bench_grouped_round_cnn,
    bench_grouped_round_pipeline,
    write_bench_results,
)


def test_grouped_round_tier_reports_speedup():
    result = bench_grouped_round(10, rounds_per_group=1, repeats=1)
    assert result["num_workers"] == 10
    assert result["scalar_s_per_round"] > 0
    assert result["batched_s_per_round"] > 0
    # The batched engine must not regress below the scalar path (the real
    # ≥3x acceptance check at 50 workers runs in the non-quick bench).
    assert result["speedup"] > 1.0


def test_grouped_round_cnn_tier_reports_speedup():
    result = bench_grouped_round_cnn(10, rounds_per_group=1, repeats=1)
    assert result["num_workers"] == 10
    assert result["scalar_s_per_round"] > 0
    assert result["batched_s_per_round"] > 0
    # The batched Conv2D/MaxPool2D kernels must not regress below the
    # scalar path (the ≥2x acceptance check runs in the non-quick bench).
    assert result["speedup"] > 1.0


def test_grouped_round_pipeline_tier_runs_and_annotates_cpu_count():
    result = bench_grouped_round_pipeline(
        10, rounds_per_group=1, repeats=1, num_processes=1
    )
    assert result["num_workers"] == 10
    assert result["mp_s_per_round"] > 0
    assert result["pipeline_s_per_round"] > 0
    # Self-describing rows: the pipeline win depends on the host's core
    # count, so every record must carry it (docs/PERFORMANCE.md).
    assert result["cpu_count"] is not None
    # The tier refuses runs where speculation never engaged, so a recorded
    # row always reflects actual pipelined execution.
    assert result["pipeline_hits"] > 0


def test_aggregation_micro_tier_reports_speedup():
    result = bench_aggregation_micro(dim=20_000, group_size=8, repeats=2)
    assert result["aircomp_vectorized_s"] > 0
    assert result["aircomp_speedup"] > 1.0
    assert result["average_speedup"] > 1.0


def test_cnn_mini_tier_runs():
    result = bench_cnn_mnist_mini(max_rounds=2)
    assert result["scalar_s"] > 0 and result["vectorized_s"] > 0


def test_bench_suite_appends_json(tmp_path):
    record = {
        "timestamp": "t",
        "quick": True,
        "grouped_round": [],
        "cnn_mnist_mini": {},
        "aggregation_micro": {},
    }
    path = write_bench_results(record, label="smoke", output_dir=tmp_path)
    assert path.name == "BENCH_smoke.json"
    path2 = write_bench_results(record, label="smoke", output_dir=tmp_path)
    import json

    data = json.loads(path2.read_text())
    assert len(data["runs"]) == 2
