#!/usr/bin/env python
"""Run the performance benchmark suite and append to BENCH_<label>.json.

Thin wrapper around :mod:`repro.experiments.bench` so the harness lives
with the other benchmarks.  Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py [--quick] [--label perf_v1]

Equivalent entry points: ``make bench`` and
``python -m repro.experiments bench``.

Tiers 1-4 time the seed-equivalent ``engine="scalar"`` path against the
vectorized ``engine="auto"`` path; tier 5 times the vectorized path
against itself with the multiprocess group executor on top:

1. one Air-FedGA grouped round at 10/50/200 workers (MLP workload),
2. the same grouped round on the fig4 CNN workload (batched Conv2D/
   MaxPool2D kernels),
3. a fig4-style CNN-MNIST mini-run,
4. ``aircomp_aggregate`` / ``ideal_group_average`` microbenchmarks,
5. serial batched engine vs. ``ProcessGroupExecutor`` worker-process
   pool (``grouped_round_mp``; spawns process pools and records
   ``cpu_count`` alongside the speedup).
"""

from __future__ import annotations

import sys

from repro.experiments.bench import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
