"""Benchmark-scale reproductions of the paper's tables and figures.

Making this directory a package lets the figure benchmarks use relative
imports (``from .workloads import ...``) under plain ``python -m pytest``
from the repository root — pytest then imports them as ``benchmarks.test_*``
instead of top-level modules with no parent package.
"""
