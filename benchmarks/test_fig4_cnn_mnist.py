"""Figure 4: Loss/Accuracy vs. time for CNN on MNIST (AirComp mechanisms).

Paper shape: same ordering as Fig. 3 with the CNN model — Air-FedGA converges
fastest, Dynamic is slowest and jitters because its per-round worker
selection ignores the data distribution.
"""

from __future__ import annotations

from .figure_utils import assert_air_fedga_competitive, run_and_report_figure
from .workloads import ACCURACY_TARGETS, fig4_config


def test_fig4_cnn_mnist(benchmark):
    config = fig4_config()
    targets = ACCURACY_TARGETS["cnn_mnist"]

    histories = benchmark.pedantic(
        run_and_report_figure,
        args=(config, "Fig. 4 — CNN on synthetic MNIST", targets),
        rounds=1,
        iterations=1,
    )

    for name, history in histories.items():
        assert history.best_accuracy() > 0.25, f"{name} failed to learn"
    assert_air_fedga_competitive(histories, target=targets[0])
