"""Figure 10: single-round and total training time vs. the number of workers.

Paper result (CNN on MNIST, N from 20 to 100):

* the average single-round time of FedAvg *grows* with N (sequential OMA
  uploads), while Air-FedAvg/Dynamic stay flat and TiFL/Air-FedGA *decrease*
  (more groups -> more frequent asynchronous updates);
* the total training time to 80% accuracy of the OMA mechanisms grows with
  N while that of the AirComp mechanisms decreases; at N = 100 the ordering
  is FedAvg (13755 s) > Dynamic (3799 s) > TiFL (3319 s) > Air-FedAvg
  (1536 s) > Air-FedGA (1077 s).
"""

from __future__ import annotations

from repro.experiments import ALL_MECHANISMS, format_table, scalability_sweep
from .workloads import fig3_config


WORKER_COUNTS = (10, 20, 40)
TARGET = 0.5


def run_sweep():
    base = fig3_config(num_workers=WORKER_COUNTS[0], max_time=1500.0)
    return scalability_sweep(
        base,
        worker_counts=WORKER_COUNTS,
        mechanisms=ALL_MECHANISMS,
        accuracy_target=TARGET,
    )


def test_fig10_scalability(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print("\n=== Fig. 10 (left) — average single-round time (s) vs N ===")
    rows = [
        tuple([name] + [results[name][n]["avg_round_time"] for n in WORKER_COUNTS])
        for name in ALL_MECHANISMS
    ]
    print(format_table(["mechanism"] + [f"N={n}" for n in WORKER_COUNTS], rows, precision=2))

    print("\n=== Fig. 10 (right) — time to reach "
          f"{int(TARGET*100)}% accuracy (s) vs N ===")
    rows = [
        tuple([name] + [results[name][n]["time_to_target"] for n in WORKER_COUNTS])
        for name in ALL_MECHANISMS
    ]
    print(format_table(["mechanism"] + [f"N={n}" for n in WORKER_COUNTS], rows, precision=1))

    small, large = WORKER_COUNTS[0], WORKER_COUNTS[-1]

    # FedAvg's single-round time grows with N (sequential OMA uploads).
    assert (
        results["fedavg"][large]["avg_round_time"]
        > results["fedavg"][small]["avg_round_time"]
    )
    # Air-FedGA's single-round time does not grow with N (more groups, more
    # frequent updates).
    assert (
        results["air_fedga"][large]["avg_round_time"]
        <= results["air_fedga"][small]["avg_round_time"] * 1.1
    )
    # AirComp aggregation keeps Air-FedAvg's round time roughly flat while
    # FedAvg's grows: at the largest N, Air-FedAvg rounds are shorter.
    assert (
        results["air_fedavg"][large]["avg_round_time"]
        < results["fedavg"][large]["avg_round_time"]
    )
    # At the largest worker count Air-FedGA reaches the target no later than
    # FedAvg (the paper's ordering at N = 100).
    ga = results["air_fedga"][large]["time_to_target"]
    fedavg = results["fedavg"][large]["time_to_target"]
    assert ga is not None
    if fedavg is not None:
        assert ga <= fedavg
