"""Shared reporting for the Figs. 3-6 loss/accuracy-vs-time benchmarks."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments import (
    AIRCOMP_MECHANISMS,
    ExperimentConfig,
    format_series,
    format_table,
    run_comparison,
)
from repro.fl.history import TrainingHistory

__all__ = ["run_and_report_figure", "AIRCOMP_MECHANISMS"]


def run_and_report_figure(
    config: ExperimentConfig,
    title: str,
    accuracy_targets: Sequence[float],
    mechanisms: Sequence[str] = AIRCOMP_MECHANISMS,
) -> Dict[str, TrainingHistory]:
    """Run the mechanism comparison behind one loss/accuracy figure and print it.

    Returns the histories so the calling benchmark can assert the expected
    qualitative shape (Air-FedGA reaches the targets no later than the
    baselines within the shared time budget).
    """
    run = run_comparison(config, mechanisms=mechanisms)
    histories = run.histories

    series = {
        name: {"time": h.times(), "loss": h.losses(), "accuracy": h.accuracies()}
        for name, h in histories.items()
    }
    print(f"\n=== {title} ===")
    print("Accuracy vs simulated time:")
    print(format_series(series, x_key="time", y_key="accuracy", max_points=8))
    print("\nLoss vs simulated time:")
    print(format_series(series, x_key="time", y_key="loss", max_points=8))

    rows = []
    for name, h in histories.items():
        row = [name, h.total_rounds, h.average_round_time(), h.final_accuracy, h.final_loss]
        for target in accuracy_targets:
            row.append(h.time_to_accuracy(target))
        rows.append(tuple(row))
    headers = ["mechanism", "rounds", "avg round (s)", "final acc", "final loss"] + [
        f"t@{int(t * 100)}% (s)" for t in accuracy_targets
    ]
    print()
    print(format_table(headers, rows, title=f"{title} — summary"))
    return histories


def assert_air_fedga_competitive(
    histories: Dict[str, TrainingHistory], target: float, slack: float = 1.15
) -> None:
    """Check the paper's headline shape on one workload.

    Air-FedGA must reach the target accuracy, and do so no later than
    ``slack`` times the best baseline that also reaches it.  (The slack keeps
    the benchmark robust to simulation noise while still catching regressions
    that invert the ordering.)
    """
    ga = histories["air_fedga"].time_to_accuracy(target)
    assert ga is not None, f"Air-FedGA never reached {target:.0%} accuracy"
    baseline_times = [
        h.time_to_accuracy(target)
        for name, h in histories.items()
        if name != "air_fedga"
    ]
    reached = [t for t in baseline_times if t is not None]
    if reached:
        assert ga <= min(reached) * slack, (
            f"Air-FedGA needed {ga:.0f}s to reach {target:.0%}, baselines needed "
            f"{min(reached):.0f}s"
        )
