"""Benchmark-scale workload definitions shared by the figure benchmarks.

The four workloads mirror the paper's model/dataset pairs (Figs. 3-6); the
sizes below are chosen so each mechanism comparison runs in roughly a minute
of wall-clock time while the simulated-time axis stays comparable to the
paper's (hundreds to thousands of simulated seconds).
"""

from __future__ import annotations

from repro.experiments import (
    ExperimentConfig,
    cnn_cifar10_config,
    cnn_mnist_config,
    lr_mnist_config,
    vgg_imagenet100_config,
)

__all__ = [
    "fig3_config",
    "fig4_config",
    "fig5_config",
    "fig6_config",
    "ACCURACY_TARGETS",
]

#: Accuracy targets used for time-to-accuracy reporting, per workload.  The
#: synthetic datasets saturate at different levels than the real ones, so the
#: targets are chosen inside each workload's reachable range.
ACCURACY_TARGETS = {
    "lr_mnist": (0.5, 0.6, 0.7),
    "cnn_mnist": (0.4, 0.5, 0.6),
    "cnn_cifar10": (0.3, 0.4, 0.5),
    "vgg_imagenet100": (0.12, 0.2, 0.3),
}


def fig3_config(num_workers: int = 40, max_time: float = 2500.0) -> ExperimentConfig:
    """Fig. 3 workload: "LR" (two-hidden-layer MLP) on MNIST-like data."""
    return lr_mnist_config(
        num_workers=num_workers, num_train=1600, image_size=8, hidden=32,
        max_rounds=4000,
    ).scaled(
        learning_rate=0.2, local_steps=5, batch_size=32,
        eval_every=5, max_eval_samples=200, max_time=max_time,
    )


def fig4_config(num_workers: int = 30, max_time: float = 2200.0) -> ExperimentConfig:
    """Fig. 4 workload: CNN on MNIST-like data."""
    return cnn_mnist_config(
        num_workers=num_workers, num_train=900, image_size=8, scale=0.1,
        max_rounds=4000,
    ).scaled(
        learning_rate=0.15, local_steps=3, batch_size=32,
        eval_every=5, max_eval_samples=150, max_time=max_time,
    )


def fig5_config(num_workers: int = 30, max_time: float = 3000.0) -> ExperimentConfig:
    """Fig. 5 workload: CNN on CIFAR-10-like data (noisier, lower plateau)."""
    return cnn_cifar10_config(
        num_workers=num_workers, num_train=900, image_size=8, scale=0.08,
        max_rounds=4000,
    ).scaled(
        learning_rate=0.15, local_steps=3, batch_size=32,
        eval_every=5, max_eval_samples=150, max_time=max_time,
    )


def fig6_config(num_workers: int = 20, max_time: float = 8000.0) -> ExperimentConfig:
    """Fig. 6 workload: VGG-style network on an ImageNet-100 stand-in (20 classes)."""
    return vgg_imagenet100_config(
        num_workers=num_workers, num_train=1600, image_size=8, num_classes=20,
        max_rounds=4000,
    ).scaled(
        learning_rate=0.25, local_steps=5, batch_size=32, base_local_time=12.0,
        eval_every=4, max_eval_samples=150, max_time=max_time,
    )
