"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper at *benchmark
scale*: the same structure (Non-IID label skew, κ ∈ [1, 10] heterogeneity,
1 MHz band, σ₀² = 1 W, Ê = 10 J, paper-scale model dimensions in the latency
model) but with synthetic data, scaled-down models and reduced time budgets
so the full suite finishes in minutes on a laptop CPU.

Each experiment runs exactly once per benchmark (``benchmark.pedantic`` with
one round); the printed tables are the reproduction artefacts recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
