"""Table I: qualitative comparison of FL mechanisms, backed by measurements.

The paper's Table I rates four mechanism families on communication
consumption, heterogeneity handling, Non-IID handling and scalability.  This
benchmark runs a short probe of all five implemented mechanisms on one
workload (plus a half-size workload for the scalability column) and prints
the measured quantities that back those ratings:

* communication consumption  -> average single-round time (upload phase),
* heterogeneity handling     -> average single-round time relative to the
                                 slowest worker's compute time,
* Non-IID handling           -> final accuracy under label skew,
* scalability                -> how the round time changes when the worker
                                 count doubles.
"""

from __future__ import annotations

from repro.experiments import format_table, mechanism_comparison
from .workloads import fig3_config


MECHANISMS = ("fedavg", "air_fedavg", "dynamic", "tifl", "air_fedga")


def run_probe():
    config = fig3_config(num_workers=24, max_time=1200.0)
    return mechanism_comparison(config=config, mechanisms=MECHANISMS, max_rounds=400)


def test_table1_mechanism_comparison(benchmark):
    results = benchmark.pedantic(run_probe, rounds=1, iterations=1)

    rows = []
    for name in MECHANISMS:
        entry = results[name]
        rows.append(
            (
                name,
                entry["avg_round_time_s"],
                entry["round_time_ratio_when_doubling_workers"],
                entry["final_accuracy"],
                entry["mean_staleness"],
                entry["total_energy_j"],
            )
        )
    print("\n=== Table I — measured mechanism characteristics ===")
    print(
        format_table(
            [
                "mechanism",
                "avg round (s)",
                "round-time ratio (2x workers)",
                "final acc (Non-IID)",
                "mean staleness",
                "energy (J)",
            ],
            rows,
        )
    )

    # Communication consumption: AirComp mechanisms have shorter rounds than
    # their OMA counterparts on the same schedule.
    assert results["air_fedavg"]["avg_round_time_s"] < results["fedavg"]["avg_round_time_s"]
    # Heterogeneity handling: group-asynchronous mechanisms have shorter
    # average rounds than fully synchronous ones.
    assert results["air_fedga"]["avg_round_time_s"] < results["air_fedavg"]["avg_round_time_s"]
    assert results["tifl"]["avg_round_time_s"] < results["fedavg"]["avg_round_time_s"]
    # Scalability: doubling the worker count inflates FedAvg's round time
    # (sequential OMA uploads) while the AirComp upload phase is unaffected.
    assert results["fedavg"]["round_time_ratio_when_doubling_workers"] > 1.1
    assert (
        results["air_fedavg"]["round_time_ratio_when_doubling_workers"]
        < results["fedavg"]["round_time_ratio_when_doubling_workers"]
    )
    # Air-FedGA's rounds stay an order of magnitude shorter than FedAvg's at
    # the doubled worker count even if its own ratio fluctuates (its group
    # count, unlike the paper's 100-worker setting, is small here).
    assert (
        results["air_fedga"]["avg_round_time_s"]
        < 0.5 * results["fedavg"]["avg_round_time_s"]
    )
    # Non-IID handling: Air-FedGA ends at least as accurate as Dynamic.
    assert results["air_fedga"]["final_accuracy"] >= results["dynamic"]["final_accuracy"] - 0.05
