"""Figure 6: Loss/Accuracy vs. time for VGG-16 on ImageNet-100 (AirComp mechanisms).

Substitution (see DESIGN.md): MiniVGG on a 20-class synthetic ImageNet-100
stand-in.  The paper's shape — Air-FedGA converging fastest among the three
AirComp mechanisms on the hardest workload, with overall accuracy well below
the MNIST workloads — is what this benchmark reproduces.
"""

from __future__ import annotations

from .figure_utils import assert_air_fedga_competitive, run_and_report_figure
from .workloads import ACCURACY_TARGETS, fig6_config


def test_fig6_vgg_imagenet100(benchmark):
    config = fig6_config()
    targets = ACCURACY_TARGETS["vgg_imagenet100"]

    histories = benchmark.pedantic(
        run_and_report_figure,
        args=(config, "Fig. 6 — MiniVGG on synthetic ImageNet-100", targets),
        rounds=1,
        iterations=1,
    )

    chance = 1.0 / 20
    for name, history in histories.items():
        assert history.best_accuracy() > 2 * chance, f"{name} failed to learn"
    # On the hardest workload the curves cross early (as in the paper's
    # Fig. 6 insets); the ordering that matters is at the higher accuracy
    # level, where grouping asynchrony has amortized its staleness cost.
    assert_air_fedga_competitive(histories, target=targets[1])
