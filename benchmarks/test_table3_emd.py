"""Table III: average EMD among groups under different grouping methods.

Paper result (100 workers, one label each):

    Original 1.8   |   TiFL 0.69   |   Air-FedGA 0.21

The "Original" value is exact (every worker holds a single class), and the
ordering Original > TiFL > Air-FedGA is the property the grouping algorithm
must reproduce; the precise TiFL/Air-FedGA values depend on the group count
the respective algorithms choose.
"""

from __future__ import annotations

import pytest

from repro.experiments import emd_comparison, format_table


def run_table3():
    return emd_comparison(num_workers=100, num_tiers=10, seed=0)


def test_table3_emd(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    print("\n=== Table III — average EMD across groups ===")
    print(
        format_table(
            ["method", "average EMD", "paper value"],
            [
                ("Original (no grouping)", result["original"], 1.8),
                ("TiFL (time tiers)", result["tifl"], 0.69),
                ("Air-FedGA (Alg. 3)", result["air_fedga"], 0.21),
            ],
            precision=3,
        )
    )

    # The Original column is analytic: 2 * (K-1) / K = 1.8 for 10 classes.
    assert result["original"] == pytest.approx(1.8, abs=0.05)
    # Orderings of Table III.
    assert result["air_fedga"] < result["tifl"] < result["original"]
    # Air-FedGA grouping gets the inter-group distribution close to IID.
    assert result["air_fedga"] < 0.5
