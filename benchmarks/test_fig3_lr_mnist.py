"""Figure 3: Loss/Accuracy vs. time for LR on MNIST (Air-FedGA vs AirComp baselines).

Paper result: Air-FedGA reaches a stable 80% accuracy ~29.9% faster than
Air-FedAvg and ~71.6% faster than Dynamic; final accuracy after 5000 s is
89.7% vs 88.3% (Air-FedAvg) and 82.5% (Dynamic).  At benchmark scale we
check the same ordering on the synthetic MNIST stand-in.
"""

from __future__ import annotations

from .figure_utils import assert_air_fedga_competitive, run_and_report_figure
from .workloads import ACCURACY_TARGETS, fig3_config


def test_fig3_lr_mnist(benchmark):
    config = fig3_config()
    targets = ACCURACY_TARGETS["lr_mnist"]

    histories = benchmark.pedantic(
        run_and_report_figure,
        args=(config, "Fig. 3 — LR on synthetic MNIST", targets),
        rounds=1,
        iterations=1,
    )

    # Shape checks: every mechanism learns, and Air-FedGA reaches the middle
    # target no later than the baselines (up to simulation slack).
    for name, history in histories.items():
        assert history.best_accuracy() > 0.3, f"{name} failed to learn"
    assert_air_fedga_competitive(histories, target=targets[1])
