#!/usr/bin/env python
"""Explore how Air-FedGA responds to edge heterogeneity and the ξ knob.

The paper's Fig. 8 shows that the intra-group time-similarity slack ξ has a
sweet spot: ξ → 0 degenerates into fully-asynchronous single-worker groups
(losing the AirComp aggregation benefit), ξ → 1 allows slow and fast workers
to share a group (recreating the straggler problem).  This example sweeps ξ
and the heterogeneity level κ_max and reports the time to reach the target
accuracy, plus the number of groups Algorithm 3 ends up forming.

Run with::

    python examples/heterogeneity_sweep.py
"""

from __future__ import annotations

from repro.core import AirFedGAConfig, GroupingConfig
from repro.experiments import format_table, lr_mnist_config, run_mechanism


def xi_sweep_demo() -> None:
    base = lr_mnist_config(
        num_workers=30, num_train=1200, image_size=8, hidden=32, max_rounds=1000
    ).scaled(learning_rate=0.2, local_steps=5, eval_every=5, max_time=1800.0)

    rows = []
    for xi in (0.0, 0.2, 0.4, 0.8):
        cfg = base.scaled(
            config=AirFedGAConfig(grouping=GroupingConfig(xi=xi))
        )
        history = run_mechanism(cfg, "air_fedga")
        groups = len({r.group_id for r in history.records if r.group_id >= 0})
        rows.append(
            (
                xi,
                groups,
                history.total_rounds,
                history.final_accuracy,
                history.time_to_accuracy(0.6),
            )
        )
    print(
        format_table(
            ["xi", "groups used", "rounds", "final acc", "time to 60% (s)"],
            rows,
            title="Sweep of the grouping slack xi (Fig. 8 trade-off)",
        )
    )


def heterogeneity_demo() -> None:
    rows = []
    for kappa_max in (1.0, 4.0, 10.0):
        cfg = lr_mnist_config(
            num_workers=30, num_train=1200, image_size=8, hidden=32, max_rounds=1000
        ).scaled(
            learning_rate=0.2,
            local_steps=5,
            eval_every=5,
            max_time=1800.0,
            kappa_max=kappa_max,
        )
        ga = run_mechanism(cfg, "air_fedga")
        avg = run_mechanism(cfg, "air_fedavg")
        rows.append(
            (
                kappa_max,
                ga.time_to_accuracy(0.6),
                avg.time_to_accuracy(0.6),
                ga.final_accuracy,
                avg.final_accuracy,
            )
        )
    print()
    print(
        format_table(
            ["kappa_max", "Air-FedGA t60 (s)", "Air-FedAvg t60 (s)",
             "Air-FedGA final acc", "Air-FedAvg final acc"],
            rows,
            title="Effect of edge heterogeneity (kappa ~ U[1, kappa_max])",
        )
    )
    print("\nWith homogeneous workers (kappa_max=1) the two mechanisms are similar;")
    print("the Air-FedGA advantage grows with heterogeneity, as in the paper.")


def main() -> None:
    xi_sweep_demo()
    heterogeneity_demo()


if __name__ == "__main__":
    main()
