#!/usr/bin/env python
"""Inspect the two optimization algorithms of the paper in isolation.

Part 1 — Worker grouping (Algorithm 3): build a population of 100
heterogeneous workers with label-skewed data, run the greedy grouping and
compare its average earth-mover distance (EMD) and estimated training time
against TiFL-style time tiers and random groups (Table III / Fig. 7).

Part 2 — Power control (Algorithm 2): for one group and one fading
realization, run the alternating optimization of the power scaling factor
σ_t and denoising factor η_t, and show how the aggregation error term C_t
shrinks relative to naive choices, and how it responds to the energy budget.

Run with::

    python examples/grouping_and_power_control.py
"""

from __future__ import annotations

import numpy as np

from repro.channel import RayleighFading
from repro.core import (
    AirCompConfig,
    AirFedGAConfig,
    GroupingProblem,
    greedy_grouping,
    random_grouping,
    solve_power_control,
    tier_grouping,
)
from repro.channel.aircomp import aggregation_error_term
from repro.data import average_emd, make_mnist_like, partition_label_skew, worker_emds
from repro.experiments import format_table
from repro.sim import HeterogeneityModel, LatencyTable


def grouping_demo(num_workers: int = 100, seed: int = 7) -> None:
    dataset = make_mnist_like(num_train=2000, num_test=200, image_size=8, seed=seed)
    partition = partition_label_skew(dataset, num_workers=num_workers, seed=seed)
    latency = LatencyTable(
        num_workers=num_workers,
        base_time=6.0,
        heterogeneity=HeterogeneityModel(num_workers=num_workers, seed=seed + 1),
    )
    problem = GroupingProblem(
        data_sizes=partition.data_sizes(),
        class_counts=partition.class_counts(),
        local_times=latency.nominal_times(),
        model_dimension=670_730,
        config=AirFedGAConfig(),
    )

    greedy = greedy_grouping(problem)
    tiers = tier_grouping(problem, num_groups=greedy.num_groups)
    rand = random_grouping(problem, num_groups=greedy.num_groups, seed=seed)

    rows = [
        ("original (1 worker = 1 group)", num_workers,
         float(worker_emds(partition).mean()), float("nan")),
        ("TiFL time tiers", tiers.num_groups,
         average_emd(partition, tiers.groups), float(tiers.group_times.max())),
        ("random groups", rand.num_groups,
         average_emd(partition, rand.groups), float(rand.group_times.max())),
        ("Air-FedGA greedy (Alg. 3)", greedy.num_groups,
         average_emd(partition, greedy.groups), float(greedy.group_times.max())),
    ]
    print(
        format_table(
            ["grouping method", "groups", "avg EMD", "slowest group time (s)"],
            rows,
            title="Part 1 - worker grouping (100 workers, label-skew Non-IID)",
        )
    )
    print()
    print("Per-group spread of local training times under Algorithm 3 (Fig. 7):")
    times = latency.nominal_times()
    for gid, members in enumerate(sorted(greedy.groups, key=lambda g: np.median(times[g]))):
        member_times = times[list(members)]
        print(
            f"  group {gid + 1}: {len(members):3d} workers, "
            f"times {member_times.min():5.1f}s .. {member_times.max():5.1f}s, "
            f"median {np.median(member_times):5.1f}s"
        )


def power_control_demo(seed: int = 11) -> None:
    num_workers = 10
    rng = np.random.default_rng(seed)
    channel = RayleighFading(num_workers=num_workers, seed=seed)
    gains = channel.gains(0)
    data_sizes = rng.integers(20, 80, size=num_workers).astype(float)
    model_bound = 25.0
    config = AirCompConfig(noise_variance=1e-4, energy_budget_j=10.0)

    result = solve_power_control(
        data_sizes=data_sizes,
        channel_gains=gains,
        model_bound=model_bound,
        config=config,
    )
    group_size = float(data_sizes.sum())
    naive_sigma = result.sigma_cap
    naive_eta = 1.0
    naive_error = aggregation_error_term(
        naive_sigma, naive_eta, model_bound, config.noise_variance, group_size
    )

    print()
    print("Part 2 - power control (Algorithm 2) for one group / one round")
    print(f"  converged in {result.iterations} iterations "
          f"(converged={result.converged})")
    print(f"  sigma* = {result.sigma:.6f}   (energy cap {result.sigma_cap:.6f})")
    print(f"  eta*   = {result.eta:.6e}")
    print(f"  error term C_t with Algorithm 2 : {result.error_term:.6e}")
    print(f"  error term C_t with naive eta=1 : {naive_error:.6e}")
    print(f"  improvement factor              : {naive_error / result.error_term:.1f}x")

    print("\n  Effect of the per-round energy budget on C_t:")
    rows = []
    for budget in (0.1, 1.0, 10.0, 100.0):
        cfg = AirCompConfig(noise_variance=1e-4, energy_budget_j=budget)
        res = solve_power_control(data_sizes, gains, model_bound, cfg)
        rows.append((budget, res.sigma, res.eta, res.error_term))
    print(
        format_table(
            ["energy budget (J)", "sigma*", "eta*", "C_t"],
            rows,
            precision=6,
        )
    )


def main() -> None:
    grouping_demo()
    power_control_demo()


if __name__ == "__main__":
    main()
