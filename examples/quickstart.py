#!/usr/bin/env python
"""Quickstart: train a federated model with Air-FedGA in ~30 seconds.

This example builds the smallest end-to-end Air-FedGA run:

1. generate a synthetic MNIST-like dataset,
2. partition it across 20 heterogeneous workers with label skew (each worker
   holds samples of a single class, the paper's Non-IID setting),
3. group the workers with the paper's greedy grouping algorithm,
4. train with grouping-asynchronous over-the-air aggregation, and
5. print the loss/accuracy trace and the time to reach the target accuracy.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations


from repro.channel import RayleighFading
from repro.core import AirFedGAConfig
from repro.data import make_mnist_like, partition_label_skew
from repro.experiments import format_table
from repro.fl import AirFedGATrainer, FLExperiment
from repro.nn import LogisticRegressionMLP
from repro.sim import HeterogeneityModel, LatencyTable


def main() -> None:
    num_workers = 20
    seed = 42

    # 1. Data: 10-class MNIST-shaped synthetic dataset, flattened for the MLP.
    dataset = make_mnist_like(num_train=1200, num_test=300, image_size=8, seed=seed)
    dataset = dataset.flattened()

    # 2. Non-IID partition + simulated edge heterogeneity (kappa in [1, 10]).
    partition = partition_label_skew(dataset, num_workers=num_workers, seed=seed)
    heterogeneity = HeterogeneityModel(num_workers=num_workers, seed=seed + 1)
    latency = LatencyTable(
        num_workers=num_workers, base_time=6.0, heterogeneity=heterogeneity
    )
    channel = RayleighFading(num_workers=num_workers, seed=seed + 2)

    experiment = FLExperiment(
        dataset=dataset,
        partition=partition,
        model_factory=lambda: LogisticRegressionMLP(
            input_dim=64, hidden=32, num_classes=10, seed=seed
        ),
        latency=latency,
        channel=channel,
        config=AirFedGAConfig(),
        learning_rate=0.2,
        local_steps=5,
        batch_size=32,
        eval_every=5,
        seed=seed,
    )

    # 3./4. Group the workers and train asynchronously over the air.
    trainer = AirFedGATrainer(experiment)
    print("Worker groups found by Algorithm 3:")
    for gid, members in enumerate(trainer.groups):
        times = [experiment.latency.nominal_time(w) for w in members]
        print(
            f"  group {gid}: {len(members):2d} workers, "
            f"local training times {min(times):.1f}s - {max(times):.1f}s, "
            f"label EMD {trainer.grouping_result.lambdas[gid]:.2f}"
        )

    history = trainer.run(max_rounds=200, max_time=1500.0)

    # 5. Report.
    rows = [
        (r.round_index, r.time, r.loss, r.accuracy, r.staleness)
        for r in history.records[:: max(1, len(history.records) // 12)]
    ]
    print()
    print(
        format_table(
            ["round", "time (s)", "loss", "accuracy", "staleness"],
            rows,
            title="Air-FedGA training trace",
        )
    )
    print()
    t60 = history.time_to_accuracy(0.6)
    print(f"final accuracy: {history.final_accuracy:.3f}")
    print(f"time to 60% accuracy: {t60:.0f}s" if t60 else "60% accuracy not reached")
    print(f"total transmit energy: {history.total_energy:.1f} J")
    print(f"max observed staleness: {history.max_staleness()}")


if __name__ == "__main__":
    main()
