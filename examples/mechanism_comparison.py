#!/usr/bin/env python
"""Compare Air-FedGA against the paper's baselines on one workload.

Reproduces a miniature of Fig. 3 (LR on MNIST): all five mechanisms —
FedAvg, TiFL, Air-FedAvg, Dynamic and Air-FedGA — train the same model on
the same Non-IID partition under the same simulated heterogeneity and
channel, for the same simulated time budget.  The script prints accuracy-
vs-time traces and the time each mechanism needs to reach the target
accuracy, which is the paper's headline comparison.

Run with::

    python examples/mechanism_comparison.py
"""

from __future__ import annotations

from repro.experiments import (
    format_series,
    format_table,
    lr_mnist_config,
    run_comparison,
)


def main() -> None:
    config = lr_mnist_config(
        num_workers=40, num_train=1600, image_size=8, hidden=32, max_rounds=2000
    ).scaled(
        learning_rate=0.2,
        local_steps=5,
        eval_every=5,
        max_time=2500.0,
    )

    mechanisms = ("fedavg", "tifl", "air_fedavg", "dynamic", "air_fedga")
    print(f"Running {len(mechanisms)} mechanisms on {config.name} "
          f"({config.num_workers} workers, Non-IID label skew)...")
    run = run_comparison(config, mechanisms=mechanisms)

    series = {
        name: {"time": h.times(), "accuracy": h.accuracies()}
        for name, h in run.histories.items()
    }
    print()
    print("Accuracy vs simulated time (seconds):")
    print(format_series(series, x_key="time", y_key="accuracy", max_points=8))

    target = 0.6
    rows = []
    for name, history in run.histories.items():
        rows.append(
            (
                name,
                history.total_rounds,
                history.average_round_time(),
                history.final_accuracy,
                history.time_to_accuracy(target),
                history.total_energy,
            )
        )
    print()
    print(
        format_table(
            ["mechanism", "rounds", "avg round (s)", "final acc",
             f"time to {int(target*100)}% (s)", "energy (J)"],
            rows,
            title="Mechanism comparison (same simulated time budget)",
        )
    )

    # Paper-style speedup statement.
    t_ga = run.histories["air_fedga"].time_to_accuracy(target)
    t_avg = run.histories["air_fedavg"].time_to_accuracy(target)
    t_dyn = run.histories["dynamic"].time_to_accuracy(target)
    if t_ga and t_avg:
        print(f"\nAir-FedGA is {100 * (1 - t_ga / t_avg):.1f}% faster than "
              f"Air-FedAvg to {int(target*100)}% accuracy")
    if t_ga and t_dyn:
        print(f"Air-FedGA is {100 * (1 - t_ga / t_dyn):.1f}% faster than "
              f"Dynamic to {int(target*100)}% accuracy")


if __name__ == "__main__":
    main()
