"""Unit tests for the training-history container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import RoundRecord, TrainingHistory


def record(i, time, acc, loss=1.0, energy=0.0, staleness=0):
    return RoundRecord(
        round_index=i,
        time=time,
        loss=loss,
        accuracy=acc,
        staleness=staleness,
        cumulative_energy_j=energy,
    )


def sample_history():
    h = TrainingHistory("test")
    accs = [0.1, 0.3, 0.5, 0.65, 0.8, 0.82]
    energies = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0]
    for i, (a, e) in enumerate(zip(accs, energies)):
        h.append(record(i, time=float(10 * i), acc=a, loss=2.0 - a, energy=e,
                        staleness=i % 3))
    return h


class TestAppend:
    def test_length(self):
        assert len(sample_history()) == 6

    def test_rejects_time_going_backwards(self):
        h = TrainingHistory("test")
        h.append(record(0, 5.0, 0.1))
        with pytest.raises(ValueError):
            h.append(record(1, 4.0, 0.2))

    def test_allows_equal_times(self):
        h = TrainingHistory("test")
        h.append(record(0, 5.0, 0.1))
        h.append(record(1, 5.0, 0.2))
        assert len(h) == 2


class TestAccessors:
    def test_column_arrays(self):
        h = sample_history()
        np.testing.assert_allclose(h.times(), [0, 10, 20, 30, 40, 50])
        assert h.accuracies()[-1] == pytest.approx(0.82)
        assert h.losses()[0] == pytest.approx(1.9)
        assert h.energies()[-1] == pytest.approx(50.0)

    def test_final_and_best(self):
        h = sample_history()
        assert h.final_accuracy == pytest.approx(0.82)
        assert h.best_accuracy() == pytest.approx(0.82)
        assert h.final_loss == pytest.approx(2.0 - 0.82)
        assert h.total_time == 50.0
        assert h.total_rounds == 5
        assert h.total_energy == 50.0

    def test_empty_history_defaults(self):
        h = TrainingHistory("empty")
        assert h.final_accuracy == 0.0
        assert h.total_time == 0.0
        assert h.best_accuracy() == 0.0
        assert h.max_staleness() == 0
        assert h.average_round_time() == 0.0


class TestDerivedQueries:
    def test_time_to_accuracy(self):
        h = sample_history()
        assert h.time_to_accuracy(0.5) == 20.0
        assert h.time_to_accuracy(0.8) == 40.0
        assert h.time_to_accuracy(0.99) is None

    def test_time_to_accuracy_validates_target(self):
        with pytest.raises(ValueError):
            sample_history().time_to_accuracy(0.0)
        with pytest.raises(ValueError):
            sample_history().time_to_accuracy(1.5)

    def test_energy_to_accuracy(self):
        h = sample_history()
        assert h.energy_to_accuracy(0.5) == pytest.approx(20.0)
        assert h.energy_to_accuracy(0.95) is None

    def test_rounds_to_accuracy(self):
        h = sample_history()
        assert h.rounds_to_accuracy(0.65) == 3

    def test_max_staleness(self):
        assert sample_history().max_staleness() == 2

    def test_average_round_time(self):
        h = sample_history()
        # Last record is round 5 at time 50, independent of how many records
        # were actually evaluated.
        assert h.average_round_time() == pytest.approx(10.0)

    def test_summary_keys(self):
        s = sample_history().summary()
        for key in ("mechanism", "rounds", "total_time_s", "final_accuracy",
                    "total_energy_j", "max_staleness"):
            assert key in s

    def test_downsample(self):
        h = sample_history()
        small = h.downsample(3)
        assert len(small) == 3
        assert small.records[0].round_index == 0
        assert small.records[-1].round_index == 5

    def test_downsample_no_op_when_small(self):
        h = sample_history()
        assert len(h.downsample(100)) == len(h)

    def test_downsample_validates(self):
        with pytest.raises(ValueError):
            sample_history().downsample(0)
