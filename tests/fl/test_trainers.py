"""Tests for the five federated mechanisms (unit-level behaviour + short runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import (
    MECHANISMS,
    AirFedAvgTrainer,
    AirFedGATrainer,
    DynamicTrainer,
    FedAvgTrainer,
    TiFLTrainer,
    build_trainer,
)


class TestRegistry:
    def test_contains_all_registered_mechanisms(self):
        assert set(MECHANISMS) == {
            "fedavg",
            "tifl",
            "air_fedavg",
            "dynamic",
            "air_fedga",
            "fedprox",
            "feddyn",
            "fedasync",
        }

    def test_build_trainer(self, small_experiment):
        trainer = build_trainer("fedavg", small_experiment)
        assert isinstance(trainer, FedAvgTrainer)

    def test_build_trainer_unknown(self, small_experiment):
        with pytest.raises(KeyError, match="unknown mechanism"):
            build_trainer("fedsgd", small_experiment)

    def test_kwargs_forwarded(self, small_experiment):
        trainer = build_trainer("dynamic", small_experiment, select_fraction=0.5)
        assert trainer.select_fraction == 0.5


class TestFedAvg:
    def test_short_run_produces_history(self, small_experiment):
        history = FedAvgTrainer(small_experiment).run(max_rounds=3)
        assert history.mechanism == "fedavg"
        assert history.total_rounds == 3
        # Initial evaluation + 3 rounds with eval_every=1.
        assert len(history) == 4

    def test_times_strictly_increase(self, small_experiment):
        history = FedAvgTrainer(small_experiment).run(max_rounds=3)
        times = history.times()
        assert np.all(np.diff(times) > 0)

    def test_all_workers_participate(self, small_experiment):
        history = FedAvgTrainer(small_experiment).run(max_rounds=2)
        assert history.records[-1].num_participants == small_experiment.num_workers

    def test_no_transmit_energy_for_oma(self, small_experiment):
        history = FedAvgTrainer(small_experiment).run(max_rounds=2)
        assert history.total_energy == 0.0

    def test_max_time_stops_run(self, small_experiment):
        history = FedAvgTrainer(small_experiment).run(max_rounds=50, max_time=1.0)
        assert history.total_rounds < 50

    def test_first_round_is_exact_weighted_average(self, quiet_experiment):
        trainer = FedAvgTrainer(quiet_experiment)
        initial = trainer.global_vector.copy()
        locals_ = [trainer.local_update(w, initial, 1) for w in range(quiet_experiment.num_workers)]
        expected = sum(a * v for a, v in zip(trainer.alphas, locals_))
        trainer.run(max_rounds=1)
        np.testing.assert_allclose(trainer.global_vector, expected)


class TestAirFedAvg:
    def test_short_run(self, small_experiment):
        history = AirFedAvgTrainer(small_experiment).run(max_rounds=3)
        assert history.total_rounds == 3
        assert history.mechanism == "air_fedavg"

    def test_records_energy_and_power_control(self, small_experiment):
        history = AirFedAvgTrainer(small_experiment).run(max_rounds=2)
        last = history.records[-1]
        assert last.round_energy_j > 0
        assert np.isfinite(last.sigma) and last.sigma > 0
        assert np.isfinite(last.eta) and last.eta > 0

    def test_round_time_shorter_than_fedavg(self, small_experiment, quiet_experiment):
        """AirComp upload is one symbol burst; OMA uploads are sequential."""
        air = AirFedAvgTrainer(small_experiment).run(max_rounds=2)
        oma = FedAvgTrainer(quiet_experiment).run(max_rounds=2)
        assert air.average_round_time() <= oma.average_round_time() + 1e-9

    def test_zero_staleness(self, small_experiment):
        history = AirFedAvgTrainer(small_experiment).run(max_rounds=3)
        assert history.max_staleness() == 0


class TestDynamic:
    def test_selection_size(self, small_experiment):
        trainer = DynamicTrainer(small_experiment, select_fraction=0.5)
        selected = trainer.select_workers(1)
        assert len(selected) == 4
        assert len(set(selected)) == len(selected)

    def test_selection_at_least_one(self, small_experiment):
        trainer = DynamicTrainer(small_experiment, select_fraction=0.01)
        assert len(trainer.select_workers(1)) == 1

    def test_selection_changes_with_round(self, small_experiment):
        trainer = DynamicTrainer(small_experiment, select_fraction=0.4)
        sels = {tuple(trainer.select_workers(r)) for r in range(6)}
        assert len(sels) > 1

    def test_invalid_parameters(self, small_experiment):
        with pytest.raises(ValueError):
            DynamicTrainer(small_experiment, select_fraction=0.0)
        with pytest.raises(ValueError):
            DynamicTrainer(small_experiment, exploration=1.5)

    def test_short_run_participants_bounded(self, small_experiment):
        trainer = DynamicTrainer(small_experiment, select_fraction=0.3)
        history = trainer.run(max_rounds=3)
        for rec in history.records[1:]:
            assert 1 <= rec.num_participants <= small_experiment.num_workers


class TestTiFL:
    def test_groups_cover_all_workers(self, small_experiment):
        trainer = TiFLTrainer(small_experiment, num_tiers=3)
        assert sorted(w for g in trainer.groups for w in g) == list(range(8))

    def test_tiers_are_time_homogeneous(self, small_experiment):
        trainer = TiFLTrainer(small_experiment, num_tiers=3)
        times = small_experiment.latency.nominal_times()
        maxima = [times[g].max() for g in trainer.groups]
        minima = [times[g].min() for g in trainer.groups]
        order = np.argsort(maxima)
        for a, b in zip(order[:-1], order[1:]):
            assert maxima[a] <= minima[b] + 1e-9

    def test_invalid_tier_count(self, small_experiment):
        with pytest.raises(ValueError):
            TiFLTrainer(small_experiment, num_tiers=0)

    def test_short_run_has_staleness(self, small_experiment):
        history = TiFLTrainer(small_experiment, num_tiers=3).run(max_rounds=8)
        assert history.total_rounds == 8
        # With several asynchronous tiers some update must be stale.
        assert history.max_staleness() >= 1

    def test_no_transmit_energy_for_oma(self, small_experiment):
        history = TiFLTrainer(small_experiment, num_tiers=3).run(max_rounds=4)
        assert history.total_energy == 0.0


class TestAirFedGA:
    def test_groups_cover_all_workers(self, small_experiment):
        trainer = AirFedGATrainer(small_experiment)
        assert sorted(w for g in trainer.groups for w in g) == list(range(8))

    def test_grouping_strategies(self, small_experiment):
        greedy = AirFedGATrainer(small_experiment, grouping_strategy="greedy")
        singleton = AirFedGATrainer(small_experiment, grouping_strategy="singleton")
        assert singleton.grouping_result.num_groups == 8
        assert greedy.grouping_result.num_groups <= 8

    def test_unknown_grouping_strategy(self, small_experiment):
        with pytest.raises(ValueError):
            AirFedGATrainer(small_experiment, grouping_strategy="kmeans")

    def test_short_run(self, small_experiment):
        history = AirFedGATrainer(small_experiment).run(max_rounds=6)
        assert history.total_rounds == 6
        assert history.mechanism == "air_fedga"

    def test_records_energy_and_group_ids(self, small_experiment):
        trainer = AirFedGATrainer(small_experiment)
        history = trainer.run(max_rounds=6)
        group_ids = {r.group_id for r in history.records if r.round_index > 0}
        assert group_ids.issubset(set(range(len(trainer.groups))))
        assert history.total_energy > 0

    def test_faster_groups_participate_more(self, small_experiment):
        trainer = AirFedGATrainer(small_experiment)
        if len(trainer.groups) < 2:
            pytest.skip("greedy grouping produced a single group on this fixture")
        history = trainer.run(max_rounds=12)
        times = small_experiment.latency.nominal_times()
        group_time = [times[g].max() for g in trainer.groups]
        counts = np.zeros(len(trainer.groups))
        for rec in history.records[1:]:
            counts[rec.group_id] += 1
        assert counts[np.argmin(group_time)] >= counts[np.argmax(group_time)]

    def test_max_rounds_respected(self, small_experiment):
        history = AirFedGATrainer(small_experiment).run(max_rounds=4)
        assert history.total_rounds == 4

    def test_max_time_respected(self, small_experiment):
        history = AirFedGATrainer(small_experiment).run(max_rounds=100, max_time=20.0)
        assert history.total_time <= 20.0 + small_experiment.latency.nominal_times().max() + 1.0
        assert history.total_rounds < 100

    def test_deterministic_given_seed(self, quiet_experiment):
        a = AirFedGATrainer(quiet_experiment).run(max_rounds=4)
        b_trainer = AirFedGATrainer(quiet_experiment)
        # Fresh trainer on the same experiment reproduces the same history.
        b = b_trainer.run(max_rounds=4)
        np.testing.assert_allclose(a.accuracies(), b.accuracies())
        np.testing.assert_allclose(a.times(), b.times())
