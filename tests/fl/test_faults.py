"""Fault-injection behaviour of the grouped event loop.

The acceptance contract of the device-realism layer (ISSUE 6 /
docs/ARCHITECTURE.md, "Fault model"):

* the ``always-on`` default keeps :class:`TrainingHistory` bit-identical
  (float64) to a run with no client-state model at all;
* two runs of the same scenario JSON with a seeded fault model replay
  identical fault trajectories and histories;
* a mid-round dropout scenario completes, renormalizes survivor weights
  and reports non-zero fault counters;
* below-quorum rounds escalate retry → skip → park without advancing the
  global round counter.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core import FaultConfig
from repro.core.mechanism import GroupAsyncScheduler
from repro.core.timing import expected_dispatch_attempts, faulty_group_completion_time
from repro.experiments.scenario import FaultSpec, Scenario
from repro.fl import AirFedGATrainer, FLExperiment, TiFLTrainer
from repro.sim import (
    AlwaysOnModel,
    BernoulliAvailability,
    DropoutRejoinModel,
    PartialCompletionModel,
)


def _trace(history):
    """Every simulated per-round quantity the determinism contract covers."""
    return [
        (r.round_index, r.time, r.loss, r.accuracy, r.staleness, r.group_id,
         r.num_participants, r.round_energy_j, r.sigma, r.eta)
        for r in history.records
    ]


def _faulty_scenario(**fault_overrides):
    """The default tiny scenario with a seeded bernoulli dropout model."""
    faults = {
        "clientstate": {
            "name": "bernoulli",
            "params": {"availability": 0.7, "dropout_prob": 0.2},
        },
        "retry_backoff": 0.5,
    }
    faults.update(fault_overrides)
    return Scenario.default().with_(faults=faults)


class TestFaultConfigValidation:
    def test_quorum_fraction_range(self):
        with pytest.raises(ValueError, match="quorum_fraction"):
            FaultConfig(quorum_fraction=0.0)
        with pytest.raises(ValueError, match="quorum_fraction"):
            FaultConfig(quorum_fraction=1.5)

    def test_retry_and_parking_guards(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultConfig(max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultConfig(retry_backoff=0.0)
        with pytest.raises(ValueError, match="max_consecutive_failures"):
            FaultConfig(max_consecutive_failures=0)

    def test_experiment_rejects_mismatched_clientstate(self, quiet_experiment):
        with pytest.raises(ValueError, match="disagree on the number of workers"):
            dataclasses.replace(
                quiet_experiment,
                clientstate=BernoulliAvailability(num_workers=30),
            )


class TestSchedulerAbort:
    def test_abort_resets_ready_without_advancing_round(self):
        scheduler = GroupAsyncScheduler([[0, 1], [2, 3]])
        for w in (0, 1):
            scheduler.receive_ready(w)
        scheduler.abort_group(0)
        assert scheduler.current_round == 0
        # The group can run the round again from scratch.
        for w in (0, 1):
            scheduler.receive_ready(w)
        event = scheduler.complete_aggregation(0)
        assert event.round_index == 1

    def test_abort_requires_a_complete_group(self):
        scheduler = GroupAsyncScheduler([[0, 1]])
        scheduler.receive_ready(0)
        with pytest.raises(RuntimeError, match="not complete"):
            scheduler.abort_group(0)


class TestAlwaysOnBitIdentity:
    def test_always_on_matches_no_clientstate_exactly(self, quiet_experiment):
        plain = AirFedGATrainer(quiet_experiment)
        history_plain = plain.run(max_rounds=8)
        gv_plain = plain.global_vector.copy()

        with_model = dataclasses.replace(
            quiet_experiment,
            clientstate=AlwaysOnModel(num_workers=quiet_experiment.num_workers),
        )
        on = AirFedGATrainer(with_model)
        history_on = on.run(max_rounds=8)

        assert np.array_equal(gv_plain, on.global_vector)
        assert _trace(history_plain) == _trace(history_on)
        assert all(v == 0 for v in history_on.fault_counters().values())

    @pytest.mark.chaos
    def test_always_on_bit_identical_across_engines(self):
        # The fast path must hold under multiprocess execution too: the
        # always-on model is normalized away before the engine choice.
        scenario = Scenario.default().with_(faults="always-on")
        with scenario.build() as trainer:
            serial = trainer.run(max_rounds=6)
        with scenario.with_(
            parallelism={"mode": "processes", "num_processes": 2}
        ).build() as trainer:
            multi = trainer.run(max_rounds=6)
        assert _trace(serial) == _trace(multi)


class TestSeededFaultReproducibility:
    @pytest.mark.chaos
    def test_same_scenario_json_replays_identical_trajectory(self):
        doc = json.loads(json.dumps(_faulty_scenario().to_dict()))

        def run():
            with Scenario.from_dict(doc).build() as trainer:
                history = trainer.run(max_rounds=8)
            return _trace(history), history.fault_counters()

        trace_a, faults_a = run()
        trace_b, faults_b = run()
        assert trace_a == trace_b
        assert faults_a == faults_b
        assert sum(faults_a.values()) > 0, "the seeded model must inject faults"

    def test_different_seeds_different_trajectories(self):
        def counters(seed):
            with _faulty_scenario().with_(seed=seed).build() as trainer:
                history = trainer.run(max_rounds=8)
            return _trace(history)

        assert counters(0) != counters(1)


class TestMidRoundDropout:
    @pytest.mark.chaos
    def test_dropout_run_completes_with_nonzero_counters(self):
        with _faulty_scenario().build() as trainer:
            history = trainer.run(max_rounds=8)
        faults = history.fault_counters()
        assert faults["workers_unavailable"] > 0
        assert faults["workers_dropped"] > 0
        # The run still made training progress.
        rounds = [r for r in history.records if r.round_index > 0]
        assert len(rounds) >= 8
        assert all(np.isfinite(r.loss) for r in rounds)
        # Degraded aggregations really excluded workers: at least one
        # committed round had fewer participants than its group's size.
        assert any(
            0 < r.num_participants < len(trainer.groups[r.group_id])
            for r in rounds
        )

    def test_survivor_weights_renormalized(self, quiet_experiment):
        # Unit-level check of the renormalization contract: scaling the
        # survivors' weights by Σα_members / Σα_survivors makes the
        # degraded aggregation carry the full group's data mass, so it
        # pulls the global model exactly scale× further from the base.
        trainer = AirFedGATrainer(quiet_experiment, grouping_strategy="tier", num_groups=1)
        members = trainer.groups[0]
        survivors = members[:-2]
        scale = float(
            trainer.alphas[members].sum() / trainer.alphas[survivors].sum()
        )
        assert scale > 1.0
        base = trainer.global_vector.copy()
        vectors = [base + (w + 1.0) for w in survivors]
        plain = trainer.exact_group_update(survivors, vectors).copy()
        scaled = trainer.exact_group_update(survivors, vectors, weight_scale=scale)
        assert np.linalg.norm(scaled - base) == pytest.approx(
            scale * np.linalg.norm(plain - base)
        )

    def test_weight_scale_one_is_bitwise_neutral(self, quiet_experiment):
        trainer = AirFedGATrainer(quiet_experiment)
        members = trainer.groups[0]
        vectors = [trainer.global_vector + w for w in members]
        a = trainer.exact_group_update(members, vectors).copy()
        b = trainer.exact_group_update(members, vectors, weight_scale=1.0)
        assert np.array_equal(a, b)

    def test_aircomp_update_accepts_weight_scale(self, quiet_experiment):
        trainer = AirFedGATrainer(quiet_experiment)
        members = trainer.groups[0]
        vectors = [trainer.global_vector + 0.01 for _ in members]
        scaled, _ = trainer.aggregate_group(
            0, members, vectors, 1, weight_scale=1.5
        )
        assert np.all(np.isfinite(scaled))

    def test_tifl_accepts_weight_scale(self, quiet_experiment):
        trainer = TiFLTrainer(quiet_experiment, num_tiers=2)
        members = trainer.groups[0]
        vectors = [trainer.global_vector + w for w in members]
        survivors = members[:1] if len(members) > 1 else members
        scaled, _ = trainer.aggregate_group(
            0, survivors, vectors[: len(survivors)], 1, weight_scale=2.0
        )
        assert np.all(np.isfinite(scaled))

    def test_invalid_weight_scale_rejected(self, quiet_experiment):
        trainer = AirFedGATrainer(quiet_experiment)
        members = trainer.groups[0]
        vectors = [trainer.global_vector for _ in members]
        with pytest.raises(ValueError, match="weight_scale"):
            trainer.aggregate_group(0, members, vectors, 1, weight_scale=0.0)


class TestQuorumEscalation:
    @pytest.mark.chaos
    def test_unreachable_fleet_parks_every_group(self):
        scenario = Scenario.default().with_(
            faults={
                "clientstate": {
                    "name": "bernoulli", "params": {"availability": 0.0},
                },
                "max_retries": 1,
                "retry_backoff": 0.5,
                "max_consecutive_failures": 4,
            }
        )
        with scenario.build() as trainer:
            history = trainer.run(max_rounds=8)
        faults = history.fault_counters()
        assert faults["groups_parked"] == len(trainer.groups)
        assert faults["quorum_retries"] > 0
        assert faults["quorum_skips"] > 0
        assert faults["workers_unavailable"] > 0
        # No aggregation ever happened: only the t=0 evaluation record.
        assert [r.round_index for r in history.records] == [0]

    def test_retries_consume_backoff_time(self, quiet_experiment):
        # availability=0.5 with a full-group quorum forces re-polls; the
        # recorded round times must grow by the configured backoff.
        exp = dataclasses.replace(
            quiet_experiment,
            clientstate=BernoulliAvailability(
                num_workers=quiet_experiment.num_workers, seed=3, availability=0.5
            ),
            fault=FaultConfig(quorum_fraction=1.0, retry_backoff=100.0),
        )
        trainer = AirFedGATrainer(exp)
        history = trainer.run(max_rounds=4)
        faults = history.fault_counters()
        assert faults["quorum_retries"] + faults["quorum_skips"] > 0
        # At least one round was delayed by a visible backoff window.
        times = [r.time for r in history.records if r.round_index > 0]
        assert times and max(times) >= 100.0

    def test_successful_round_resets_escalation_counters(self):
        with _faulty_scenario().build() as trainer:
            trainer.run(max_rounds=8)
            # After a completed run with mixed failures/successes, no group
            # that is still in play retains a stale escalation count.
            parked = trainer.history.groups_parked
            if parked == 0:
                assert all(
                    c < trainer.exp.fault.max_consecutive_failures
                    for c in trainer._consecutive_failures
                )


class TestPartialCompletion:
    def test_partial_updates_counted_and_times_unchanged(self, quiet_experiment):
        plain = AirFedGATrainer(quiet_experiment)
        history_plain = plain.run(max_rounds=6)

        exp = dataclasses.replace(
            quiet_experiment,
            clientstate=PartialCompletionModel(
                num_workers=quiet_experiment.num_workers, seed=5, partial_prob=0.7
            ),
        )
        partial = AirFedGATrainer(exp)
        history_partial = partial.run(max_rounds=6)

        faults = history_partial.fault_counters()
        assert faults["partial_updates"] > 0
        assert faults["workers_dropped"] == 0
        assert faults["groups_parked"] == 0
        # Partial work changes the models (losses) but not the schedule:
        # everyone stays available, so round times are bitwise equal.
        assert [r.time for r in history_partial.records] == [
            r.time for r in history_plain.records
        ]
        assert not np.array_equal(plain.global_vector, partial.global_vector)

    def test_partial_blend_shrinks_progress_toward_base(self, quiet_experiment):
        # The blend w ← base + f(w − base): with every worker completing
        # only a sliver of its round, the global model barely moves.
        def distance_travelled(clientstate):
            exp = dataclasses.replace(quiet_experiment, clientstate=clientstate)
            trainer = AirFedGATrainer(exp)
            start = trainer.global_vector.copy()
            history = trainer.run(max_rounds=4)
            return float(np.linalg.norm(trainer.global_vector - start)), history

        class _SliverModel(PartialCompletionModel):
            def completion_fraction(self, worker_id, round_index, sequence):
                self._check_worker(worker_id)
                return 0.01

        full, _ = distance_travelled(None)
        crawl, history = distance_travelled(
            _SliverModel(num_workers=quiet_experiment.num_workers, seed=5)
        )
        assert history.partial_updates > 0
        assert crawl < full * 0.5


class TestDropoutRejoin:
    @pytest.mark.chaos
    def test_rejoin_model_runs_and_drops_workers(self, quiet_experiment):
        exp = dataclasses.replace(
            quiet_experiment,
            clientstate=DropoutRejoinModel(
                num_workers=quiet_experiment.num_workers, seed=6,
                dropout_prob=0.3, rejoin_after=2,
            ),
            fault=FaultConfig(quorum_fraction=0.3, retry_backoff=0.5),
        )
        trainer = AirFedGATrainer(exp)
        history = trainer.run(max_rounds=10)
        faults = history.fault_counters()
        assert faults["workers_dropped"] > 0
        # Dropped workers sat out later dispatches.
        assert faults["workers_unavailable"] > 0
        rounds = [r for r in history.records if r.round_index > 0]
        assert rounds and all(np.isfinite(r.loss) for r in rounds)


class TestHistoryCounters:
    def test_counters_serialize_and_round_trip(self):
        with _faulty_scenario().build() as trainer:
            history = trainer.run(max_rounds=6)
        from repro.fl import TrainingHistory

        data = history.to_dict()
        assert data["faults"] == history.fault_counters()
        back = TrainingHistory.from_dict(json.loads(json.dumps(data)))
        assert back.fault_counters() == history.fault_counters()

    def test_unknown_counter_name_rejected(self):
        from repro.fl import TrainingHistory

        data = TrainingHistory(mechanism="air_fedga").to_dict()
        data["faults"] = {"not_a_counter": 3}
        with pytest.raises(ValueError, match="not_a_counter"):
            TrainingHistory.from_dict(data)


class TestFaultSpec:
    def test_round_trips_through_json(self):
        scenario = _faulty_scenario()
        doc = json.loads(json.dumps(scenario.to_dict()))
        back = Scenario.from_dict(doc)
        assert back.faults.to_dict() == scenario.faults.to_dict()

    def test_bare_model_name_shorthand(self):
        scenario = Scenario.default().with_(faults="bernoulli")
        assert scenario.faults.clientstate.name == "bernoulli"
        assert isinstance(scenario.faults, FaultSpec)

    def test_typo_in_model_name_fails_at_construction(self):
        with pytest.raises(KeyError, match="bernoulli"):
            Scenario.default().with_(faults="bernouli")

    def test_unknown_model_parameter_fails_at_construction(self):
        with pytest.raises((TypeError, ValueError)):
            Scenario.default().with_(
                faults={
                    "clientstate": {
                        "name": "bernoulli", "params": {"availabilty": 0.5},
                    }
                }
            )

    def test_policy_fields_validated_eagerly(self):
        with pytest.raises(ValueError, match="quorum_fraction"):
            FaultSpec(quorum_fraction=2.0)


class TestTimingHelpers:
    def test_expected_attempts_edge_cases(self):
        assert expected_dispatch_attempts(4, 1.0) == 1.0
        assert expected_dispatch_attempts(4, 0.0) == float("inf")

    def test_expected_attempts_monotone_in_availability(self):
        attempts = [
            expected_dispatch_attempts(8, p, quorum_fraction=0.5)
            for p in (0.3, 0.5, 0.9)
        ]
        assert attempts[0] > attempts[1] > attempts[2] >= 1.0

    def test_faulty_completion_time_reduces_to_plain_when_reliable(self):
        local = [2.0, 3.0, 5.0]
        plain = faulty_group_completion_time(local, upload_latency=1.0)
        assert plain == 6.0
        degraded = faulty_group_completion_time(
            local, upload_latency=1.0, availability=0.5, retry_backoff=2.0
        )
        assert degraded > plain


class TestSyncFamilyFaults:
    """Availability faults on the synchronous FedAvg-family round loop.

    The mechanism-families layer extends fault polling to the synchronous
    trainers: absent workers sit the round out, survivors are renormalized
    per ``FaultConfig``, and persistent per-worker mechanism state (FedDyn
    drift) both survives absence untouched and replays exactly under the
    seeded availability trajectory.
    """

    def _faulty_experiment(self, base, availability=0.6, seed=13):
        from repro.fl.base import FLExperiment  # noqa: F401  (doc pointer)

        return dataclasses.replace(
            base,
            population=None,  # fresh WorkerStateTable per run
            clientstate=BernoulliAvailability(
                num_workers=base.num_workers,
                seed=seed,
                availability=availability,
            ),
        )

    def test_fedavg_polls_availability_and_renormalizes(self, quiet_experiment):
        from repro.fl import FedAvgTrainer

        exp = self._faulty_experiment(quiet_experiment)
        trainer = FedAvgTrainer(exp)
        history = trainer.run(max_rounds=10)
        faults = history.fault_counters()
        assert faults["workers_unavailable"] > 0
        rounds = [r for r in history.records if r.round_index > 0]
        assert any(
            0 < r.num_participants < exp.num_workers for r in rounds
        )
        assert all(np.isfinite(r.loss) for r in rounds)

    def test_always_on_sync_family_bit_identical_to_plain(self, quiet_experiment):
        from repro.fl import FedProxTrainer

        plain = FedProxTrainer(quiet_experiment, mu=0.1)
        h_plain = plain.run(max_rounds=6)
        on_exp = dataclasses.replace(
            quiet_experiment,
            population=None,
            clientstate=AlwaysOnModel(num_workers=quiet_experiment.num_workers),
        )
        on = FedProxTrainer(on_exp, mu=0.1)
        h_on = on.run(max_rounds=6)
        assert _trace(h_plain) == _trace(h_on)
        assert np.array_equal(plain.global_vector, on.global_vector)

    def test_feddyn_replays_exactly_across_dropout_rejoin(self, quiet_experiment):
        from repro.fl import FedDynTrainer

        def run():
            exp = self._faulty_experiment(quiet_experiment)
            trainer = FedDynTrainer(exp, alpha_coef=0.05)
            history = trainer.run(max_rounds=10)
            return (
                _trace(history),
                history.fault_counters(),
                trainer.drift.copy(),
                trainer.global_vector.copy(),
            )

        trace_a, faults_a, drift_a, gv_a = run()
        trace_b, faults_b, drift_b, gv_b = run()
        assert faults_a["workers_unavailable"] > 0
        assert trace_a == trace_b
        assert faults_a == faults_b
        # The persistent drift state is part of the replay contract:
        # bit-identical across the two seeded fault trajectories.
        assert np.array_equal(drift_a, drift_b)
        assert np.array_equal(gv_a, gv_b)

    def test_feddyn_drift_of_absent_workers_survives_untouched(
        self, quiet_experiment
    ):
        from repro.fl import FedDynTrainer

        trainer = FedDynTrainer(quiet_experiment, alpha_coef=0.05)
        trainer.drift[:] = 1.0
        snapshot = trainer.drift.copy()
        participants = [0, 2, 5]
        base = trainer.global_vector
        vectors = np.stack([base + (w + 1.0) for w in participants])
        trainer.post_local_update(participants, vectors, base, 1)
        absent = [w for w in range(quiet_experiment.num_workers) if w not in participants]
        # Participants' drift moved; absent workers' rows are bit-identical.
        assert np.all(trainer.drift[participants] != snapshot[participants])
        assert np.array_equal(trainer.drift[absent], snapshot[absent])
