"""Equivalence and regression tests for the allocation-free hot paths.

Covers: vectorized exact/AirComp aggregation vs. the reference loops, the
engine="scalar" / engine="auto" trainer agreement, power-control caching
(hit counting, budget clamping), the float32 simulation mode and seeded
end-to-end determinism.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import (
    AirCompWorkspace,
    aircomp_aggregate,
    aircomp_aggregate_reference,
    ideal_group_average,
    ideal_group_average_reference,
)
from repro.core import AirCompConfig, AirFedGAConfig, PowerControlCache
from repro.data import partition_label_skew
from repro.fl import FLExperiment
from repro.fl.base import BaseTrainer
from repro.fl.registry import build_trainer
from repro.nn import LogisticRegressionMLP, MnistCNN


# ----------------------------------------------------------------------
# Channel-level equivalence (vectorized vs. the seed's loops)
# ----------------------------------------------------------------------
class TestChannelEquivalence:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.models = rng.standard_normal((7, 500))
        self.sizes = rng.uniform(5.0, 50.0, 7)
        self.gains = rng.uniform(0.2, 3.0, 7)

    def test_ideal_average_matches_reference(self):
        vec = ideal_group_average(self.models, self.sizes)
        ref = ideal_group_average_reference(list(self.models), self.sizes)
        np.testing.assert_allclose(vec, ref, rtol=1e-13, atol=1e-13)

    def test_ideal_average_out_buffer(self):
        out = np.empty(500)
        result = ideal_group_average(self.models, self.sizes, out=out)
        assert result is out
        np.testing.assert_allclose(
            out, ideal_group_average_reference(list(self.models), self.sizes),
            rtol=1e-13, atol=1e-13,
        )

    def test_aircomp_matches_reference_noiseless(self):
        kwargs = dict(
            data_sizes=self.sizes, channel_gains=self.gains,
            sigma_t=1.3, eta_t=1.7, noise_std=0.0,
        )
        vec = aircomp_aggregate(self.models, rng=np.random.default_rng(1), **kwargs)
        ref = aircomp_aggregate_reference(
            list(self.models), rng=np.random.default_rng(1), **kwargs
        )
        np.testing.assert_allclose(vec.estimate, ref.estimate, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(vec.received, ref.received, rtol=1e-12, atol=1e-12)
        np.testing.assert_allclose(
            vec.transmit_energies, ref.transmit_energies, rtol=1e-12
        )
        np.testing.assert_array_equal(vec.transmit_powers, ref.transmit_powers)

    def test_aircomp_matches_reference_with_noise(self):
        """Both implementations consume the RNG identically, so the injected
        noise vector — and hence the whole estimate — agrees."""
        kwargs = dict(
            data_sizes=self.sizes, channel_gains=self.gains,
            sigma_t=0.8, eta_t=2.0, noise_std=0.05,
        )
        vec = aircomp_aggregate(self.models, rng=np.random.default_rng(7), **kwargs)
        ref = aircomp_aggregate_reference(
            list(self.models), rng=np.random.default_rng(7), **kwargs
        )
        np.testing.assert_allclose(vec.estimate, ref.estimate, rtol=1e-12, atol=1e-12)
        assert vec.noise_norm == pytest.approx(ref.noise_norm, rel=1e-12)

    def test_workspace_reuse_no_stale_state(self):
        ws = AirCompWorkspace()
        kwargs = dict(
            data_sizes=self.sizes, channel_gains=self.gains,
            sigma_t=1.0, eta_t=1.0, noise_std=0.0,
        )
        first = aircomp_aggregate(
            self.models, rng=np.random.default_rng(2), workspace=ws, **kwargs
        ).estimate.copy()
        aircomp_aggregate(
            2.0 * self.models, rng=np.random.default_rng(2), workspace=ws, **kwargs
        )
        again = aircomp_aggregate(
            self.models, rng=np.random.default_rng(2), workspace=ws, **kwargs
        ).estimate
        np.testing.assert_array_equal(first, again)

    def test_ragged_models_rejected(self):
        with pytest.raises(ValueError):
            aircomp_aggregate(
                [np.zeros(3), np.zeros(4)], [1.0, 1.0], [1.0, 1.0],
                sigma_t=1.0, eta_t=1.0, noise_std=0.0,
                rng=np.random.default_rng(0),
            )


# ----------------------------------------------------------------------
# Trainer-level equivalence
# ----------------------------------------------------------------------
class TestTrainerAggregation:
    def test_exact_group_update_matches_loop(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        rng = np.random.default_rng(3)
        members = [0, 2, 5]
        vectors = [
            trainer.global_vector + rng.standard_normal(trainer.model.dimension)
            for _ in members
        ]
        result = trainer.exact_group_update(members, vectors)
        alphas = trainer.alphas[members]
        reference = (1.0 - alphas.sum()) * trainer.global_vector
        for a, vec in zip(alphas, vectors):
            reference = reference + a * vec
        np.testing.assert_allclose(result, reference, rtol=1e-12, atol=1e-12)

    def test_exact_group_update_accepts_stacked_and_out(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        stacked = np.stack([trainer.global_vector * (i + 1) for i in range(3)])
        members = [1, 3, 4]
        plain = trainer.exact_group_update(members, list(stacked))
        out = np.empty_like(trainer.global_vector)
        buffered = trainer.exact_group_update(members, stacked, out=out)
        assert buffered is out
        np.testing.assert_array_equal(plain, buffered)

    def test_aircomp_group_update_out_buffer(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        members = [0, 1, 2]
        vectors = np.stack([trainer.global_vector for _ in members])
        plain, _ = trainer.aircomp_group_update(members, vectors, round_index=1)
        # Fresh trainer to reset the noise RNG stream.
        trainer2 = BaseTrainer(quiet_experiment)
        out = np.empty_like(trainer2.global_vector)
        buffered, _ = trainer2.aircomp_group_update(
            members, vectors, round_index=1, out=out
        )
        assert buffered is out
        np.testing.assert_allclose(plain, buffered, rtol=1e-12, atol=1e-12)

    def test_scalar_engine_uses_reference_paths(
        self, small_dataset, small_partition, latency_table, static_channel
    ):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=lambda: LogisticRegressionMLP(
                input_dim=64, hidden=16, num_classes=10, seed=3
            ),
            latency=latency_table,
            channel=static_channel,
            seed=11,
            engine="scalar",
        )
        trainer = build_trainer("air_fedga", exp)
        assert trainer._engine is None
        assert trainer._pc_cache is None
        history = trainer.run(max_rounds=5)
        assert len(history) > 0

    def test_invalid_engine_rejected(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        with pytest.raises(ValueError):
            FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=model_factory,
                latency=latency_table,
                channel=static_channel,
                engine="vectorised-please",
            )

    def test_batched_engine_accepted_for_cnn(
        self, small_image_dataset, latency_table, static_channel
    ):
        """Conv2D/MaxPool2D have batched kernels, so engine='batched' no
        longer rejects CNN models."""
        partition = partition_label_skew(
            small_image_dataset, num_workers=latency_table.num_workers, seed=7
        )
        exp = FLExperiment(
            dataset=small_image_dataset,
            partition=partition,
            model_factory=lambda: MnistCNN(image_size=8, scale=0.1, seed=3),
            latency=latency_table,
            channel=static_channel,
            engine="batched",
        )
        trainer = BaseTrainer(exp)
        assert trainer._engine is not None

    def test_batched_engine_rejected_for_unsupported_layer(
        self, small_image_dataset, latency_table, static_channel
    ):
        from repro.nn import SequentialModel
        from repro.nn.layers import Dense, Layer

        class _Exotic(Layer):
            def forward(self, x, training=True):
                return x

            def backward(self, grad_out):
                return grad_out

        def factory():
            flat = int(np.prod(small_image_dataset.x_train.shape[1:]))
            from repro.nn.layers import Flatten

            return SequentialModel(
                [
                    Flatten("flatten"),
                    _Exotic("exotic"),
                    Dense("fc", flat, 10, np.random.default_rng(0)),
                ]
            )

        partition = partition_label_skew(
            small_image_dataset, num_workers=latency_table.num_workers, seed=7
        )
        exp = FLExperiment(
            dataset=small_image_dataset,
            partition=partition,
            model_factory=factory,
            latency=latency_table,
            channel=static_channel,
            engine="batched",
        )
        with pytest.raises(ValueError):
            BaseTrainer(exp)


class TestEngineAgreement:
    def test_auto_and_scalar_trainers_agree(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        """Full seeded runs on both engines produce near-identical metrics.

        The engines may differ at the floating-point reassociation level
        (loop vs matmul aggregation) and in power-control caching, so the
        comparison is loose-tolerance, not bitwise.
        """
        # The power-control cache trades ~rel_tol sigma optimality for
        # speed; disable it so the only engine difference left is
        # floating-point reassociation in the aggregation matmul.
        config = AirFedGAConfig(
            aircomp=AirCompConfig(noise_variance=1e-12, power_control_cache=False)
        )
        histories = {}
        for engine in ("scalar", "auto"):
            exp = FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=model_factory,
                latency=latency_table,
                channel=static_channel,
                config=config,
                learning_rate=0.2,
                local_steps=2,
                batch_size=16,
                max_eval_samples=60,
                seed=11,
                engine=engine,
            )
            trainer = build_trainer("air_fedga", exp)
            if engine == "auto":
                assert trainer._engine is not None
            histories[engine] = trainer.run(max_rounds=12)
        a, s = histories["auto"], histories["scalar"]
        assert len(a) == len(s)
        np.testing.assert_array_equal(a.times(), s.times())
        np.testing.assert_allclose(a.losses(), s.losses(), rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(a.accuracies(), s.accuracies(), atol=1e-9)

    def test_seeded_runs_deterministic_on_auto_engine(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        def run_once():
            exp = FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=model_factory,
                latency=latency_table,
                channel=static_channel,
                seed=11,
            )
            return build_trainer("air_fedga", exp).run(max_rounds=10)

        a, b = run_once(), run_once()
        np.testing.assert_array_equal(a.losses(), b.losses())
        np.testing.assert_array_equal(a.accuracies(), b.accuracies())
        np.testing.assert_array_equal(a.energies(), b.energies())


# ----------------------------------------------------------------------
# Power-control memoization
# ----------------------------------------------------------------------
class TestPowerControlCache:
    def test_cache_hits_on_repeated_aggregation(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=model_factory,
            latency=latency_table,
            channel=static_channel,
            seed=11,
        )
        trainer = build_trainer("air_fedavg", exp)
        members = [0, 1, 2]
        vectors = np.stack([trainer.global_vector for _ in members])
        # Identical (gains, sizes, bound) instances: first solves, rest hit.
        trainer.aircomp_group_update(members, vectors, round_index=1)
        trainer.aircomp_group_update(members, vectors, round_index=1)
        trainer.aircomp_group_update(members, vectors, round_index=1)
        assert trainer.pc_cache_hits == 2
        assert trainer.pc_cache_misses == 1

    def test_cache_hits_surface_in_round_records(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=model_factory,
            latency=latency_table,
            channel=static_channel,
            seed=11,
        )
        trainer = build_trainer("air_fedavg", exp)
        history = trainer.run(max_rounds=6)
        assert history.records[-1].pc_cache_hits == trainer.pc_cache_hits
        hits = [r.pc_cache_hits for r in history.records]
        assert hits == sorted(hits)  # cumulative counter never decreases

    def test_cache_disabled_by_config(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=model_factory,
            latency=latency_table,
            channel=static_channel,
            config=AirFedGAConfig(aircomp=AirCompConfig(power_control_cache=False)),
            seed=11,
        )
        trainer = build_trainer("air_fedavg", exp)
        trainer.run(max_rounds=4)
        assert trainer.pc_cache_hits == 0
        assert trainer._pc_cache is None

    def test_hit_clamps_sigma_to_exact_cap(self):
        rel_tol = 1e-2
        cache = PowerControlCache(rel_tol=rel_tol)
        rng = np.random.default_rng(0)
        sizes = rng.uniform(10, 40, 5)
        gains = rng.uniform(0.5, 2.0, 5)
        cfg = AirCompConfig(noise_variance=1e-5)
        # Pick two bounds deterministically inside the same quantization
        # cell: the cell centre +/- a quarter of the grid step.
        step = np.log1p(rel_tol)
        centre = float(np.exp(np.round(np.log(10.0) / step) * step))
        low = centre * float(np.exp(-step / 4))
        high = centre * float(np.exp(step / 4))
        first = cache.solve(sizes, gains, low, cfg, group_key=(0,))
        # The larger bound hits the same key but tightens the energy cap;
        # the cached sigma must be clamped to stay feasible.
        second = cache.solve(sizes, gains, high, cfg, group_key=(0,))
        assert cache.hits == 1
        caps = gains * np.sqrt(cfg.energy_budget_j) / (sizes * high)
        assert second.sigma <= caps.min() + 1e-15
        assert first.sigma >= second.sigma

    def test_cache_preserves_behaviour_on_fading_channel(
        self, small_dataset, small_partition, latency_table, channel_model, model_factory
    ):
        """With warm start off (default), a Rayleigh channel makes every
        round a cache miss, and each miss is an ordinary from-cap solve —
        so the cached run is *identical* to the cache-off run."""
        histories = {}
        for cache in (True, False):
            exp = FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=model_factory,
                latency=latency_table,
                channel=channel_model,
                config=AirFedGAConfig(
                    aircomp=AirCompConfig(power_control_cache=cache)
                ),
                seed=11,
            )
            histories[cache] = build_trainer("air_fedga", exp).run(max_rounds=10)
        np.testing.assert_array_equal(
            histories[True].energies(), histories[False].energies()
        )
        np.testing.assert_array_equal(
            histories[True].losses(), histories[False].losses()
        )

    def test_distinct_inputs_miss(self):
        cache = PowerControlCache()
        cfg = AirCompConfig(noise_variance=1e-5)
        sizes = np.array([10.0, 20.0])
        cache.solve(sizes, np.array([1.0, 1.0]), 5.0, cfg)
        cache.solve(sizes, np.array([1.0, 2.0]), 5.0, cfg)
        cache.solve(sizes, np.array([1.0, 1.0]), 50.0, cfg)
        assert cache.hits == 0
        assert cache.misses == 3


# ----------------------------------------------------------------------
# float32 simulation mode
# ----------------------------------------------------------------------
class TestFloat32Mode:
    def test_end_to_end_float32_run(
        self, small_dataset, small_partition, latency_table, static_channel, model_factory
    ):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=model_factory,
            latency=latency_table,
            channel=static_channel,
            config=AirFedGAConfig(dtype="float32"),
            seed=11,
        )
        trainer = build_trainer("air_fedga", exp)
        assert trainer.global_vector.dtype == np.float32
        history = trainer.run(max_rounds=8)
        assert np.isfinite(history.losses()).all()
        assert history.final_accuracy >= 0.0

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError):
            AirFedGAConfig(dtype="float16")
