"""Tests for the shared grouping-asynchronous event loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import AirFedGATrainer, FLExperiment
from repro.fl.grouped import GroupedAsyncTrainer
from repro.nn import LogisticRegressionMLP
from repro.sim import LatencyTable


class TestAbstractHooks:
    def test_base_class_requires_build_groups(self, small_experiment):
        with pytest.raises(NotImplementedError):
            GroupedAsyncTrainer(small_experiment)


class TestChannelContention:
    def _experiment_with_slow_uplink(self, small_dataset, small_partition, channel_model):
        """Workers compute quickly but the uplink burst is long (0.5 s per symbol
        batch with a paper-scale model), so aggregations must queue."""
        latency = LatencyTable(num_workers=small_partition.num_workers, base_time=0.5)
        return FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
            latency=latency,
            channel=channel_model,
            learning_rate=0.1,
            local_steps=1,
            batch_size=8,
            eval_every=1,
            max_eval_samples=40,
            latency_model_dimension=6_400_000,  # L_u = 10 s >> compute time
        )

    def test_aggregations_serialized_on_shared_uplink(
        self, small_dataset, small_partition, channel_model
    ):
        exp = self._experiment_with_slow_uplink(small_dataset, small_partition, channel_model)
        trainer = AirFedGATrainer(exp, grouping_strategy="singleton")
        upload = trainer.aircomp_upload_latency()
        assert upload >= 9.0  # sanity on the constructed scenario
        history = trainer.run(max_rounds=12)
        times = history.times()[1:]  # skip the t=0 evaluation record
        # Consecutive global updates cannot be closer together than one upload
        # burst: the uplink carries a single aggregation at a time.
        gaps = np.diff(times)
        assert np.all(gaps >= upload - 1e-6)

    def test_contention_slows_down_many_small_groups(
        self, small_dataset, small_partition, channel_model
    ):
        """With a congested uplink, fewer groups finish more rounds per unit time
        than the same number of updates spread over many singleton groups."""
        exp = self._experiment_with_slow_uplink(small_dataset, small_partition, channel_model)
        singles = AirFedGATrainer(exp, grouping_strategy="singleton")
        h = singles.run(max_rounds=30, max_time=200.0)
        # 8 singleton groups each need a 10 s burst while computing takes only
        # 0.5 s, so the virtual time per update is bounded below by the burst.
        assert h.average_round_time() >= singles.aircomp_upload_latency() - 1e-6


class TestGroupBaseModels:
    def test_group_base_updated_only_for_participating_group(self, quiet_experiment):
        trainer = AirFedGATrainer(quiet_experiment)
        if len(trainer.groups) < 2:
            pytest.skip("need at least two groups for this test")
        trainer.run(max_rounds=1)
        # Exactly one group holds the round-1 global model; the others still
        # hold the initial model.
        fresh = [
            gid for gid, base in trainer._group_base.items()
            if np.array_equal(base, trainer.global_vector)
        ]
        assert len(fresh) == 1
