"""Tests for the FedProx / FedDyn / FedAsync mechanism families.

Acceptance contract of the mechanism-families layer:

* all three are registered under the ``mechanism`` registry kind, build
  through :func:`build_trainer` with validated params, and run through the
  declarative :class:`Scenario` API (hence are sweepable);
* FedProx with ``mu = 0`` is *bit-identical* to FedAvg — the transform
  hook returns ``None`` and the untouched legacy code path runs;
* every family produces near-identical trajectories on the batched and
  scalar engines (same tolerance class as the existing engine-agreement
  tests: floating-point reassociation only);
* FedDyn's per-worker drift state lives in the
  :class:`~repro.core.population.WorkerStateTable`, serializes through
  ``trainer.state_dict()`` as JSON-ready lists, and restores exactly;
* FedAsync commits per-update with recorded staleness and a strictly
  increasing clock, and refuses fault models it does not support.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.fl import (
    MECHANISMS,
    FedAsyncTrainer,
    FedAvgTrainer,
    FedDynTrainer,
    FedProxTrainer,
    build_trainer,
)
from repro.fl.feddyn import DRIFT_FIELD
from repro.sim import BernoulliAvailability


def _trace(history):
    return [
        (r.round_index, r.time, r.loss, r.accuracy, r.staleness,
         r.num_participants)
        for r in history.records
    ]


# ----------------------------------------------------------------------
# registry / scenario plumbing
# ----------------------------------------------------------------------
class TestRegistryPlumbing:
    def test_families_registered(self):
        assert {"fedprox", "feddyn", "fedasync"} <= set(MECHANISMS)

    def test_build_trainer_forwards_params(self, small_experiment):
        assert build_trainer("fedprox", small_experiment, mu=0.3).mu == 0.3
        assert (
            build_trainer("feddyn", small_experiment, alpha_coef=0.2).alpha_coef
            == 0.2
        )
        trainer = build_trainer(
            "fedasync", small_experiment, mix_weight=0.5, buffer_size=2
        )
        assert trainer.mix_weight == 0.5 and trainer.buffer_size == 2

    def test_unknown_param_rejected_with_context(self, small_experiment):
        with pytest.raises(TypeError, match="fedprox"):
            build_trainer("fedprox", small_experiment, proximal=0.1)

    @pytest.mark.parametrize(
        "name, params",
        [
            ("fedprox", {"mu": 0.05}),
            ("feddyn", {"alpha_coef": 0.05}),
            ("fedasync", {"mix_weight": 0.7}),
        ],
    )
    def test_scenario_builds_and_runs_each_family(self, name, params):
        from repro.experiments.scenario import Scenario

        scenario = Scenario.default().with_(
            mechanism=name, **{"mechanism.params": params}
        )
        # Scenario specs survive JSON (what the sweep grid serializes).
        scenario = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        with scenario.build() as trainer:
            history = trainer.run(max_rounds=3)
        assert history.mechanism == name
        assert history.total_rounds == 3
        assert all(np.isfinite(r.loss) for r in history.records)

    def test_scenario_rejects_bad_family_param_eagerly(self):
        from repro.experiments.scenario import Scenario

        with pytest.raises(TypeError, match="feddyn"):
            Scenario.default().with_(
                mechanism="feddyn", **{"mechanism.params": {"lambda_": 0.1}}
            )


# ----------------------------------------------------------------------
# FedProx
# ----------------------------------------------------------------------
class TestFedProx:
    def test_mu_zero_bit_identical_to_fedavg(self, small_experiment):
        avg = FedAvgTrainer(small_experiment)
        h_avg = avg.run(max_rounds=4)
        prox = FedProxTrainer(small_experiment, mu=0.0)
        h_prox = prox.run(max_rounds=4)
        assert _trace(h_avg) == _trace(h_prox)
        assert np.array_equal(avg.global_vector, prox.global_vector)

    def test_mu_zero_takes_the_untransformed_path(self, small_experiment):
        trainer = FedProxTrainer(small_experiment, mu=0.0)
        assert trainer.local_step_transform([0, 1], trainer.global_vector, 1) is None

    def test_positive_mu_changes_the_trajectory(self, small_experiment):
        h_avg = FedAvgTrainer(small_experiment).run(max_rounds=3)
        h_prox = FedProxTrainer(small_experiment, mu=0.5).run(max_rounds=3)
        assert _trace(h_avg) != _trace(h_prox)

    def test_proximal_term_pulls_toward_base(self, quiet_experiment):
        # One local update with a huge mu barely moves off the base model;
        # the plain update moves strictly further.
        plain = FedAvgTrainer(quiet_experiment)
        prox = FedProxTrainer(quiet_experiment, mu=4.9)  # lr=0.2 -> lr*mu<1
        base = plain.global_vector.copy()
        free = plain.local_update(0, base, 1)
        pulled = prox.local_update(
            0, base, 1,
            transform=prox.local_step_transform([0], base, 1),
        )
        assert np.linalg.norm(pulled - base) < np.linalg.norm(free - base)

    def test_param_validation(self, small_experiment):
        with pytest.raises(ValueError, match="mu"):
            FedProxTrainer(small_experiment, mu=-0.1)
        with pytest.raises(ValueError, match="overshoot"):
            FedProxTrainer(small_experiment, mu=5.1)  # lr=0.2 -> lr*mu >= 1


# ----------------------------------------------------------------------
# FedDyn
# ----------------------------------------------------------------------
class TestFedDyn:
    def test_drift_state_registered_and_updated(self, small_experiment):
        trainer = FedDynTrainer(small_experiment, alpha_coef=0.05)
        assert trainer.worker_state.has_field(DRIFT_FIELD)
        assert trainer.drift.shape == (
            small_experiment.num_workers,
            trainer.model.dimension,
        )
        assert np.all(trainer.drift == 0.0)
        trainer.run(max_rounds=2)
        # Every worker participated, so every drift row moved.
        assert np.all(np.any(trainer.drift != 0.0, axis=1))

    def test_differs_from_fedavg(self, small_experiment):
        h_avg = FedAvgTrainer(small_experiment).run(max_rounds=3)
        h_dyn = FedDynTrainer(small_experiment, alpha_coef=0.05).run(max_rounds=3)
        assert _trace(h_avg) != _trace(h_dyn)

    def test_state_dict_json_round_trip(self, small_experiment):
        trainer = FedDynTrainer(small_experiment, alpha_coef=0.05)
        trainer.run(max_rounds=3)
        # The checkpoint must survive JSON (durable-sweep serialization).
        state = json.loads(json.dumps(trainer.state_dict()))
        # An independent population: the restored trainer must not alias
        # the original's registered drift field.
        fresh_exp = dataclasses.replace(small_experiment, population=None)
        fresh = FedDynTrainer(fresh_exp, alpha_coef=0.05)
        assert fresh.drift is not trainer.drift
        assert not np.array_equal(fresh.drift, trainer.drift)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.global_vector, trainer.global_vector)
        np.testing.assert_array_equal(fresh.drift, trainer.drift)

    def test_state_dict_mechanism_mismatch_rejected(self, small_experiment):
        state = FedDynTrainer(small_experiment, alpha_coef=0.05).state_dict()
        with pytest.raises(ValueError, match="mechanism"):
            FedAvgTrainer(small_experiment).load_state_dict(state)

    def test_param_validation(self, small_experiment):
        with pytest.raises(ValueError, match="alpha_coef"):
            FedDynTrainer(small_experiment, alpha_coef=0.0)
        with pytest.raises(ValueError, match="overshoot"):
            FedDynTrainer(small_experiment, alpha_coef=5.0)


# ----------------------------------------------------------------------
# FedAsync
# ----------------------------------------------------------------------
class TestFedAsync:
    def test_commits_record_staleness_and_increasing_clock(self, small_experiment):
        history = FedAsyncTrainer(small_experiment).run(max_rounds=12)
        rounds = [r for r in history.records if r.round_index > 0]
        assert len(rounds) == 12
        assert all(r.num_participants == 1 for r in rounds)
        # Slow workers' updates arrive stale once the model has advanced.
        assert max(r.staleness for r in rounds) > 0
        times = [r.time for r in rounds]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_staleness_damping_changes_trajectory(self, small_experiment):
        damped = FedAsyncTrainer(small_experiment).run(max_rounds=8)
        flat = FedAsyncTrainer(small_experiment, staleness="constant").run(
            max_rounds=8
        )
        assert _trace(damped) != _trace(flat)

    def test_buffered_variant_runs(self, small_experiment):
        history = FedAsyncTrainer(small_experiment, buffer_size=3).run(max_rounds=9)
        assert history.total_rounds == 9

    def test_param_validation(self, small_experiment):
        with pytest.raises(ValueError, match="mix_weight"):
            FedAsyncTrainer(small_experiment, mix_weight=0.0)
        with pytest.raises(ValueError, match="mix_weight"):
            FedAsyncTrainer(small_experiment, mix_weight=1.5)
        with pytest.raises(ValueError, match="buffer_size"):
            FedAsyncTrainer(small_experiment, buffer_size=0)

    def test_rejects_fault_models(self, small_experiment):
        exp = dataclasses.replace(
            small_experiment,
            clientstate=BernoulliAvailability(
                num_workers=small_experiment.num_workers, availability=0.5
            ),
        )
        with pytest.raises(ValueError, match="fault"):
            FedAsyncTrainer(exp)


# ----------------------------------------------------------------------
# batched == scalar across the families
# ----------------------------------------------------------------------
class TestEngineAgreement:
    @pytest.mark.parametrize(
        "name, params",
        [
            ("fedprox", {"mu": 0.1}),
            ("feddyn", {"alpha_coef": 0.05}),
            ("fedasync", {}),
        ],
    )
    def test_batched_and_scalar_agree(self, quiet_experiment, name, params):
        trainers = {}
        for engine in ("batched", "scalar"):
            exp = dataclasses.replace(quiet_experiment, engine=engine)
            trainer = build_trainer(name, exp, **params)
            assert (trainer._engine is not None) == (engine == "batched")
            trainer.run(max_rounds=5)
            trainers[engine] = trainer
        # Same tolerance class as the existing engine-agreement tests:
        # only floating-point reassociation (loop vs matmul) may differ.
        np.testing.assert_allclose(
            trainers["batched"].global_vector,
            trainers["scalar"].global_vector,
            rtol=1e-9,
            atol=1e-12,
        )
