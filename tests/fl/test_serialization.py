"""Tests for history serialization and the staleness-damping extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl import AirFedGATrainer, RoundRecord, TrainingHistory, TiFLTrainer


def make_history(n=5):
    h = TrainingHistory("air_fedga")
    for i in range(n):
        h.append(
            RoundRecord(
                round_index=i,
                time=float(3 * i),
                loss=2.0 - 0.1 * i,
                accuracy=0.1 * i,
                staleness=i % 2,
                group_id=i % 3,
                num_participants=4,
                round_energy_j=1.5,
                cumulative_energy_j=1.5 * (i + 1),
                sigma=0.01,
                eta=1e-4,
            )
        )
    return h


class TestHistorySerialization:
    def test_dict_roundtrip(self):
        h = make_history()
        restored = TrainingHistory.from_dict(h.to_dict())
        assert restored.mechanism == h.mechanism
        assert len(restored) == len(h)
        np.testing.assert_allclose(restored.times(), h.times())
        np.testing.assert_allclose(restored.accuracies(), h.accuracies())
        np.testing.assert_allclose(restored.energies(), h.energies())

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            TrainingHistory.from_dict({"records": []})

    def test_json_roundtrip(self, tmp_path):
        h = make_history()
        path = h.save_json(tmp_path / "run" / "history.json")
        assert path.exists()
        restored = TrainingHistory.load_json(path)
        np.testing.assert_allclose(restored.losses(), h.losses())
        assert restored.records[2].group_id == h.records[2].group_id

    def test_summary_embedded_in_dict(self):
        data = make_history().to_dict()
        assert data["summary"]["mechanism"] == "air_fedga"

    def test_csv_export(self, tmp_path):
        h = make_history()
        path = h.save_csv(tmp_path / "history.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(h) + 1  # header + one row per record
        assert lines[0].startswith("round_index,time,loss,accuracy")


class TestStalenessDamping:
    def test_negative_exponent_rejected(self, small_experiment):
        with pytest.raises(ValueError):
            AirFedGATrainer(small_experiment, staleness_exponent=-1.0)

    def test_zero_exponent_matches_default(self, quiet_experiment):
        default = AirFedGATrainer(quiet_experiment).run(max_rounds=5)
        explicit = AirFedGATrainer(quiet_experiment, staleness_exponent=0.0).run(max_rounds=5)
        np.testing.assert_allclose(default.accuracies(), explicit.accuracies())

    def test_damping_changes_trajectory_when_stale(self, quiet_experiment):
        plain = AirFedGATrainer(quiet_experiment, grouping_strategy="singleton")
        damped = AirFedGATrainer(
            quiet_experiment, grouping_strategy="singleton", staleness_exponent=1.0
        )
        h_plain = plain.run(max_rounds=12)
        h_damped = damped.run(max_rounds=12)
        # Singleton groups guarantee staleness > 0 after the first rounds, so
        # the damped run must diverge from the plain one.
        assert h_plain.max_staleness() > 0
        assert not np.allclose(h_plain.losses(), h_damped.losses())

    def test_tifl_accepts_staleness_exponent(self, small_experiment):
        trainer = TiFLTrainer(small_experiment, num_tiers=3, staleness_exponent=0.5)
        history = trainer.run(max_rounds=5)
        assert history.total_rounds == 5
