"""Unit tests for the shared FL trainer machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel import StaticChannel
from repro.fl import FLExperiment
from repro.fl.base import BaseTrainer
from repro.nn import LogisticRegressionMLP
from repro.sim import LatencyTable


class TestFLExperimentValidation:
    def test_worker_count_mismatch_latency(self, small_dataset, small_partition, channel_model):
        bad_latency = LatencyTable(num_workers=3, base_time=1.0)
        with pytest.raises(ValueError, match="latency"):
            FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
                latency=bad_latency,
                channel=channel_model,
            )

    def test_worker_count_mismatch_channel(self, small_dataset, small_partition, latency_table):
        bad_channel = StaticChannel(num_workers=3)
        with pytest.raises(ValueError, match="channel"):
            FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
                latency=latency_table,
                channel=bad_channel,
            )

    @pytest.mark.parametrize(
        "field,value",
        [
            ("learning_rate", 0.0),
            ("local_steps", 0),
            ("batch_size", 0),
            ("eval_every", 0),
            ("max_eval_samples", 0),
            ("latency_model_dimension", 0),
        ],
    )
    def test_hyperparameter_validation(
        self, small_dataset, small_partition, latency_table, channel_model, field, value
    ):
        kwargs = dict(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
            latency=latency_table,
            channel=channel_model,
        )
        kwargs[field] = value
        with pytest.raises(ValueError):
            FLExperiment(**kwargs)

    def test_num_workers_property(self, small_experiment):
        assert small_experiment.num_workers == 8


class TestBaseTrainerSetup:
    def test_alphas_sum_to_one(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        assert trainer.alphas.sum() == pytest.approx(1.0)

    def test_global_vector_matches_factory_model(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        reference = small_experiment.model_factory().get_vector()
        np.testing.assert_array_equal(trainer.global_vector, reference)

    def test_run_not_implemented(self, small_experiment):
        with pytest.raises(NotImplementedError):
            BaseTrainer(small_experiment).run()


class TestLocalUpdate:
    def test_changes_parameters(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        base = trainer.global_vector.copy()
        updated = trainer.local_update(0, base, round_index=1)
        assert not np.array_equal(updated, base)

    def test_does_not_modify_base_vector(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        base = trainer.global_vector.copy()
        snapshot = base.copy()
        trainer.local_update(0, base, round_index=1)
        np.testing.assert_array_equal(base, snapshot)

    def test_deterministic_given_round_and_worker(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        base = trainer.global_vector
        a = trainer.local_update(2, base, round_index=5)
        b = trainer.local_update(2, base, round_index=5)
        np.testing.assert_array_equal(a, b)

    def test_different_rounds_sample_different_batches(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        base = trainer.global_vector
        a = trainer.local_update(2, base, round_index=1)
        b = trainer.local_update(2, base, round_index=2)
        assert not np.array_equal(a, b)

    def test_reduces_local_loss(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        x, y = trainer._worker_data[0]
        trainer.model.set_vector(trainer.global_vector)
        before, _ = trainer.model.evaluate(x, y)
        updated = trainer.local_update(0, trainer.global_vector, round_index=1)
        trainer.model.set_vector(updated)
        after, _ = trainer.model.evaluate(x, y)
        assert after < before


class TestExactGroupUpdate:
    def test_all_workers_is_weighted_average(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        vectors = [
            trainer.global_vector + (i + 1.0) for i in range(quiet_experiment.num_workers)
        ]
        result = trainer.exact_group_update(range(quiet_experiment.num_workers), vectors)
        expected = sum(a * v for a, v in zip(trainer.alphas, vectors))
        np.testing.assert_allclose(result, expected)

    def test_partial_group_keeps_rest_of_global(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        members = [0, 1]
        vectors = [trainer.global_vector * 0.0, trainer.global_vector * 0.0]
        result = trainer.exact_group_update(members, vectors)
        beta = trainer.alphas[members].sum()
        np.testing.assert_allclose(result, (1 - beta) * trainer.global_vector)

    def test_length_mismatch_rejected(self, quiet_experiment):
        trainer = BaseTrainer(quiet_experiment)
        with pytest.raises(ValueError):
            trainer.exact_group_update([0, 1], [trainer.global_vector])


class TestAirCompGroupUpdate:
    def test_quiet_channel_matches_exact_update(self, quiet_experiment):
        """With negligible noise the OTA update converges to the ideal Eq. (8)."""
        trainer = BaseTrainer(quiet_experiment)
        members = list(range(quiet_experiment.num_workers))
        vectors = [trainer.global_vector + 0.01 * (i + 1) for i in members]
        exact = trainer.exact_group_update(members, vectors)
        ota, info = trainer.aircomp_group_update(members, vectors, round_index=1)
        np.testing.assert_allclose(ota, exact, rtol=1e-3, atol=1e-5)
        assert info["round_energy_j"] >= 0

    def test_energy_budget_respected(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        members = [0, 1, 2]
        vectors = [trainer.global_vector for _ in members]
        _, info = trainer.aircomp_group_update(members, vectors, round_index=1)
        budget = small_experiment.config.aircomp.energy_budget_j
        per_worker = trainer.energy.per_worker[members]
        assert np.all(per_worker <= budget + 1e-6)

    def test_energy_accumulates_in_tracker(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        members = [0, 1]
        vectors = [trainer.global_vector for _ in members]
        trainer.aircomp_group_update(members, vectors, round_index=1)
        trainer.aircomp_group_update(members, vectors, round_index=2)
        assert len(trainer.energy.per_round) == 2
        assert trainer.energy.total > 0

    def test_empty_group_rejected(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        with pytest.raises(ValueError):
            trainer.aircomp_group_update([], [], round_index=1)


class TestLatencies:
    def test_aircomp_latency_uses_override_dimension(
        self, small_dataset, small_partition, latency_table, channel_model
    ):
        def make(dim):
            return FLExperiment(
                dataset=small_dataset,
                partition=small_partition,
                model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
                latency=latency_table,
                channel=channel_model,
                latency_model_dimension=dim,
            )

        small = BaseTrainer(make(10_000)).aircomp_upload_latency()
        large = BaseTrainer(make(1_000_000)).aircomp_upload_latency()
        assert large > small

    def test_oma_latency_grows_with_participants(self, small_experiment):
        trainer = BaseTrainer(small_experiment)
        few = trainer.oma_upload_latency([0, 1], round_index=0)
        many = trainer.oma_upload_latency(list(range(8)), round_index=0)
        assert many > few

    def test_record_round_eval_every(self, small_dataset, small_partition, latency_table, channel_model):
        exp = FLExperiment(
            dataset=small_dataset,
            partition=small_partition,
            model_factory=lambda: LogisticRegressionMLP(input_dim=64, hidden=8),
            latency=latency_table,
            channel=channel_model,
            eval_every=3,
            max_eval_samples=40,
        )
        trainer = BaseTrainer(exp)
        assert trainer.record_round(1, 1.0) is None
        assert trainer.record_round(2, 2.0) is None
        assert trainer.record_round(3, 3.0) is not None
        assert trainer.record_round(4, 4.0, force_eval=True) is not None
