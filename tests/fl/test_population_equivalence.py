"""Lazy materialization must not change a single bit of training history.

The population refactor's acceptance contract: at legacy scale, switching
``data.materialization`` from ``"eager"`` (per-worker copies, the seed's
allocation profile) to ``"lazy"`` (zero-copy shard views into the shared
store) leaves every float64 in :class:`TrainingHistory` unchanged — across
models, ragged groupings and active fault injection.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.scenario import Scenario


def _histories(scenario):
    eager = scenario.with_(**{"data.materialization": "eager"}).run()
    lazy = scenario.with_(**{"data.materialization": "lazy"}).run()
    return eager.to_dict(), lazy.to_dict()


def _assert_bit_identical(eager, lazy):
    assert json.dumps(eager, sort_keys=True) == json.dumps(lazy, sort_keys=True)


def test_lazy_matches_eager_mlp_default():
    _assert_bit_identical(*_histories(Scenario.default()))


def test_lazy_matches_eager_cnn():
    scenario = Scenario.default().with_(
        model="mnist_cnn",
        data={"flatten": False},
        **{"model.params": {"image_size": 8, "scale": 0.15, "num_classes": 10}},
        **{"training.max_rounds": 5},
    )
    _assert_bit_identical(*_histories(scenario))


def test_lazy_matches_eager_ragged_groups():
    # 11 workers over label-skew shards: unequal group sizes downstream.
    scenario = Scenario.default().with_(num_workers=11)
    _assert_bit_identical(*_histories(scenario))


def test_lazy_matches_eager_with_faults_active():
    scenario = Scenario.default().with_(
        faults={
            "clientstate": {
                "name": "bernoulli",
                "params": {"availability": 0.7, "dropout_prob": 0.2},
            },
            "retry_backoff": 0.5,
        }
    )
    _assert_bit_identical(*_histories(scenario))


def test_lazy_trainer_serves_zero_copy_shards_and_counts_events():
    from repro.fl.registry import build_trainer

    scenario = Scenario.default().with_(**{"data.materialization": "lazy"})
    experiment = scenario.build_experiment()
    trainer = build_trainer(scenario.mechanism.name, experiment)
    store = trainer.population.store
    assert np.shares_memory(trainer._worker_data[0].x, store.x)
    trainer.run(max_rounds=4)
    counters = trainer.worker_state.counters_summary()
    assert counters["dispatches"] > 0
    assert counters["dropped"] == 0  # always-on default: nobody drops
    # All pooled group stacks were returned on commit.
    assert trainer.population.stack_pool.outstanding == 0


def test_scenario_materialization_round_trips_exactly():
    scenario = Scenario.default().with_(**{"data.materialization": "lazy"})
    spec = scenario.to_dict()
    assert spec["data"]["materialization"] == "lazy"
    restored = Scenario.from_dict(json.loads(json.dumps(spec)))
    assert restored.to_dict() == spec
    assert restored.data.materialization == "lazy"
    # Default stays eager (the bit-identical path).
    assert Scenario.default().data.materialization == "eager"


def test_scenario_rejects_unknown_materialization_with_hint():
    with pytest.raises(ValueError, match=r"did you mean 'lazy'"):
        Scenario.default().with_(**{"data.materialization": "lzay"})
