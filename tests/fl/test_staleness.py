"""Tests for the staleness-policy component (registry kind ``"staleness"``)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import registry
from repro.fl import (
    AirFedGATrainer,
    ConstantStaleness,
    HingeStaleness,
    PolynomialStaleness,
    StalenessPolicy,
    resolve_staleness_policy,
)


class TestPolicies:
    def test_constant_weight(self):
        policy = ConstantStaleness(value=0.5)
        assert policy.weight(0) == 0.5
        assert policy.weight(100) == 0.5

    def test_constant_validates_range(self):
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            ConstantStaleness(value=0.0)
        with pytest.raises(ValueError, match="in \\(0, 1\\]"):
            ConstantStaleness(value=1.5)

    def test_polynomial_matches_legacy_formula_bitwise(self):
        # The legacy inline expression of the grouped event loop; the
        # policy must reproduce it bit-for-bit so the staleness_exponent
        # shorthand keeps histories unchanged.
        for exponent in (0.25, 0.5, 1.0, 2.0):
            policy = PolynomialStaleness(exponent=exponent)
            for tau in range(0, 12):
                legacy = 1.0 / (1.0 + tau) ** exponent
                assert policy.weight(tau) == legacy

    def test_polynomial_exponent_zero_is_identity(self):
        policy = PolynomialStaleness(exponent=0.0)
        assert policy.weight(7) == 1.0

    def test_polynomial_validates_exponent_and_staleness(self):
        with pytest.raises(ValueError, match="non-negative"):
            PolynomialStaleness(exponent=-0.5)
        with pytest.raises(ValueError, match="staleness"):
            PolynomialStaleness(exponent=0.5).weight(-1)

    def test_hinge_flat_then_hyperbolic(self):
        policy = HingeStaleness(a=2.0, b=3.0)
        assert policy.weight(0) == 1.0
        assert policy.weight(3) == 1.0
        assert policy.weight(4) == 0.5
        assert policy.weight(5) == 0.25

    def test_hinge_validates_parameters(self):
        with pytest.raises(ValueError, match="a must be >= 1"):
            HingeStaleness(a=0.5)
        with pytest.raises(ValueError, match="b must be non-negative"):
            HingeStaleness(b=-1.0)

    def test_weights_stay_in_unit_interval(self):
        for policy in (
            ConstantStaleness(0.7),
            PolynomialStaleness(1.5),
            HingeStaleness(a=1.0, b=0.0),
        ):
            for tau in range(0, 20):
                assert 0.0 < policy.weight(tau) <= 1.0

    def test_callable_protocol(self):
        policy = PolynomialStaleness(exponent=1.0)
        assert policy(3) == policy.weight(3)


class TestResolve:
    def test_none_with_zero_exponent_disables_damping(self):
        assert resolve_staleness_policy(None, 0.0) is None

    def test_legacy_exponent_maps_to_polynomial(self):
        policy = resolve_staleness_policy(None, 0.5)
        assert isinstance(policy, PolynomialStaleness)
        assert policy.exponent == 0.5

    def test_negative_exponent_rejected(self):
        # Satellite: staleness_exponent must be validated at construction,
        # not produce NaN weights rounds later.
        with pytest.raises(ValueError, match="non-negative"):
            resolve_staleness_policy(None, -1.0)

    def test_name_string_resolved_via_registry(self):
        policy = resolve_staleness_policy("constant")
        assert isinstance(policy, ConstantStaleness)

    def test_mapping_with_params(self):
        policy = resolve_staleness_policy(
            {"name": "hinge", "params": {"a": 4.0, "b": 1.0}}
        )
        assert isinstance(policy, HingeStaleness)
        assert (policy.a, policy.b) == (4.0, 1.0)

    def test_instance_passes_through(self):
        policy = HingeStaleness()
        assert resolve_staleness_policy(policy) is policy

    def test_both_spec_and_exponent_ambiguous(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_staleness_policy("hinge", 0.5)

    def test_mapping_shape_validated(self):
        with pytest.raises(ValueError, match="unknown"):
            resolve_staleness_policy({"name": "hinge", "prams": {}})
        with pytest.raises(ValueError, match="'name'"):
            resolve_staleness_policy({"params": {}})

    def test_garbage_type_rejected(self):
        with pytest.raises(ValueError, match="StalenessPolicy"):
            resolve_staleness_policy(3.14)

    def test_registry_kind_exists(self):
        assert set(registry.names("staleness")) >= {
            "constant", "polynomial", "hinge"
        }


class TestTrainerIntegration:
    def _run(self, experiment, **kwargs):
        trainer = AirFedGATrainer(experiment, **kwargs)
        history = trainer.run(max_rounds=8)
        return trainer.global_vector.copy(), [
            (r.round_index, r.time, r.loss, r.staleness) for r in history.records
        ]

    def test_exponent_and_polynomial_policy_bit_identical(self, quiet_experiment):
        gv_legacy, trace_legacy = self._run(
            quiet_experiment, staleness_exponent=0.5
        )
        gv_policy, trace_policy = self._run(
            quiet_experiment, staleness=PolynomialStaleness(exponent=0.5)
        )
        assert np.array_equal(gv_legacy, gv_policy)
        assert trace_legacy == trace_policy

    def test_constant_one_matches_no_damping(self, quiet_experiment):
        gv_off, trace_off = self._run(quiet_experiment)
        gv_const, trace_const = self._run(quiet_experiment, staleness="constant")
        assert np.array_equal(gv_off, gv_const)
        assert trace_off == trace_const

    def test_damping_changes_the_model_when_staleness_occurs(self, quiet_experiment):
        gv_off, trace_off = self._run(quiet_experiment)
        assert any(r[3] > 0 for r in trace_off[1:]), "scenario must have staleness"
        gv_damped, _ = self._run(
            quiet_experiment, staleness={"name": "constant", "params": {"value": 0.2}}
        )
        assert not np.array_equal(gv_off, gv_damped)

    def test_trainer_rejects_negative_exponent(self, quiet_experiment):
        with pytest.raises(ValueError, match="non-negative"):
            AirFedGATrainer(quiet_experiment, staleness_exponent=-0.1)

    def test_trainer_rejects_ambiguous_arguments(self, quiet_experiment):
        with pytest.raises(ValueError, match="not both"):
            AirFedGATrainer(
                quiet_experiment, staleness_exponent=0.5, staleness="hinge"
            )
