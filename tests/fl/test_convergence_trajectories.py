"""Multi-round convergence trajectories of the mechanism families.

These run longer seeded trainings than the tier-1 suite tolerates and
assert *qualitative* convergence facts rather than pinned numbers: every
family actually learns on a workload it is designed for, and FedDyn's
drift correction beats FedAvg under label skew at the horizon where
dynamic regularization pays off (the headline claim of the mechanism).

Two behaviours are deliberately *not* asserted, because they are genuine
properties of the algorithms rather than bugs: FedDyn with a fixed
learning rate oscillates once near its optimum (so very long horizons
can end above the mid-run minimum), and per-update FedAsync thrashes
under extreme label skew (each commit pulls the model toward a single
class-specialist) — it is therefore exercised on an IID partition, where
per-update mixing is well-posed.

Marked ``convergence`` (excluded from the default pytest run via
``addopts``) and ``slow``; the CI ``convergence-smoke`` job opts in with
``-m convergence``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data import partition_iid
from repro.fl import build_trainer

pytestmark = [pytest.mark.convergence, pytest.mark.slow]

ROUNDS = 30
# The horizon where FedDyn's drift correction is clearly ahead of plain
# averaging on the skewed workload; past ~20 rounds the fixed-LR
# oscillation narrows the gap.
DYN_ROUNDS = 12


def _final_loss(name, experiment, rounds=ROUNDS, **params):
    history = build_trainer(name, experiment, **params).run(max_rounds=rounds)
    losses = [v for v in history.losses() if np.isfinite(v)]
    return float(losses[0]), float(losses[-1])


@pytest.fixture
def iid_experiment(small_experiment):
    """The same seeded workload, re-partitioned IID for the async family."""
    partition = partition_iid(
        small_experiment.dataset,
        num_workers=small_experiment.num_workers,
        seed=7,
    )
    return dataclasses.replace(
        small_experiment, partition=partition, population=None
    )


class TestFamilyConvergence:
    @pytest.mark.parametrize(
        "name, params, rounds",
        [
            ("fedavg", {}, ROUNDS),
            ("fedprox", {"mu": 0.05}, ROUNDS),
            ("feddyn", {"alpha_coef": 0.05}, DYN_ROUNDS),
        ],
    )
    def test_synchronous_families_learn(
        self, small_experiment, name, params, rounds
    ):
        initial, final = _final_loss(
            name, small_experiment, rounds=rounds, **params
        )
        assert final < 0.75 * initial

    def test_fedasync_learns_on_iid_data(self, iid_experiment):
        # Per-update commits are cheap; give the async loop more of them.
        initial, final = _final_loss(
            "fedasync", iid_experiment, rounds=4 * ROUNDS
        )
        assert final < 0.6 * initial

    def test_feddyn_beats_fedavg_under_label_skew(self, small_experiment):
        _, avg = _final_loss("fedavg", small_experiment, rounds=DYN_ROUNDS)
        _, dyn = _final_loss(
            "feddyn", small_experiment, rounds=DYN_ROUNDS, alpha_coef=0.05
        )
        assert dyn < avg

    def test_fedprox_tracks_fedavg_closely(self, small_experiment):
        # A small proximal pull must not wreck convergence: final loss
        # stays within 20% of plain FedAvg on the same seeded workload.
        _, avg = _final_loss("fedavg", small_experiment)
        _, prox = _final_loss("fedprox", small_experiment, mu=0.01)
        assert prox < 1.2 * avg
