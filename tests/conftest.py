"""Shared fixtures for the test suite.

Everything here is deliberately tiny (8x8 images, tens of samples, models
with a few thousand parameters) so the whole suite runs in well under a
minute while still exercising every code path of the library.
"""

from __future__ import annotations

import pytest

from repro.channel import RayleighFading, StaticChannel
from repro.core import AirCompConfig, AirFedGAConfig
from repro.data import Dataset, make_mnist_like, partition_label_skew
from repro.fl import FLExperiment
from repro.nn import LogisticRegressionMLP
from repro.sim import HeterogeneityModel, LatencyTable


NUM_WORKERS = 8
IMAGE_SIZE = 8
NUM_TRAIN = 240
NUM_TEST = 80


@pytest.fixture(scope="session")
def small_dataset() -> Dataset:
    """A small flattened MNIST-like dataset shared by many tests."""
    return make_mnist_like(
        num_train=NUM_TRAIN, num_test=NUM_TEST, image_size=IMAGE_SIZE, seed=123
    ).flattened()


@pytest.fixture(scope="session")
def small_image_dataset() -> Dataset:
    """The same dataset kept in image form (for CNN tests)."""
    return make_mnist_like(
        num_train=NUM_TRAIN, num_test=NUM_TEST, image_size=IMAGE_SIZE, seed=123
    )


@pytest.fixture()
def small_partition(small_dataset):
    return partition_label_skew(small_dataset, num_workers=NUM_WORKERS, seed=7)


@pytest.fixture()
def latency_table():
    return LatencyTable(
        num_workers=NUM_WORKERS,
        base_time=2.0,
        heterogeneity=HeterogeneityModel(num_workers=NUM_WORKERS, seed=5),
    )


@pytest.fixture()
def channel_model():
    return RayleighFading(num_workers=NUM_WORKERS, seed=9)


@pytest.fixture()
def static_channel():
    return StaticChannel(num_workers=NUM_WORKERS, mean_gain=1.0, seed=9)


@pytest.fixture()
def default_config():
    return AirFedGAConfig()


@pytest.fixture()
def quiet_config():
    """Configuration with (almost) noiseless AirComp, for deterministic math."""
    return AirFedGAConfig(aircomp=AirCompConfig(noise_variance=1e-12))


def _model_factory(seed: int = 3):
    return lambda: LogisticRegressionMLP(
        input_dim=IMAGE_SIZE * IMAGE_SIZE, hidden=16, num_classes=10, seed=seed
    )


@pytest.fixture()
def model_factory():
    return _model_factory()


@pytest.fixture()
def small_experiment(small_dataset, small_partition, latency_table, channel_model):
    """A ready-to-run FLExperiment with 8 workers and a tiny MLP."""
    return FLExperiment(
        dataset=small_dataset,
        partition=small_partition,
        model_factory=_model_factory(),
        latency=latency_table,
        channel=channel_model,
        config=AirFedGAConfig(),
        learning_rate=0.2,
        local_steps=2,
        batch_size=16,
        eval_every=1,
        max_eval_samples=60,
        seed=11,
    )


@pytest.fixture()
def quiet_experiment(small_dataset, small_partition, latency_table, static_channel, quiet_config):
    """An FLExperiment with a static channel and negligible AirComp noise."""
    return FLExperiment(
        dataset=small_dataset,
        partition=small_partition,
        model_factory=_model_factory(),
        latency=latency_table,
        channel=static_channel,
        config=quiet_config,
        learning_rate=0.2,
        local_steps=2,
        batch_size=16,
        eval_every=1,
        max_eval_samples=60,
        seed=11,
    )
