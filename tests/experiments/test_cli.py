"""Tests for the command-line reproduction driver."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.cli import build_parser, main


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                    "table1", "table3"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("table3", scale=0.0)


class TestRunExperiment:
    def test_table3_runs_and_serializes(self, tmp_path):
        results = run_experiment("table3", output=str(tmp_path))
        assert "emd" in results
        written = json.loads((tmp_path / "table3.json").read_text())
        assert written["emd"]["original"] == pytest.approx(1.8, abs=0.05)

    def test_fig7_runs_small_scale(self):
        results = run_experiment("fig7", scale=0.2)
        groups = results["groups"]
        assert sum(len(v) for v in groups.values()) == 20


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "lr_mnist" in out

    def test_run_requires_known_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "fig99"])

    def test_compare_parser_defaults(self):
        args = build_parser().parse_args(["compare", "lr_mnist"])
        assert args.workload == "lr_mnist"
        assert "air_fedga" in args.mechanisms

    def test_run_table3_via_main(self, tmp_path, capsys):
        assert main(["run", "table3", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "table3.json").exists()

    def test_compare_via_main_writes_histories(self, tmp_path, capsys):
        code = main(
            [
                "compare", "lr_mnist",
                "--mechanisms", "air_fedavg",
                "--max-time", "50",
                "--workers", "6",
                "--output", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "air_fedavg" in out
        assert (tmp_path / "lr_mnist_air_fedavg.json").exists()
        assert (tmp_path / "lr_mnist_air_fedavg.csv").exists()
