"""Unit tests for the experiment configurations."""

from __future__ import annotations


from repro.experiments import (
    EXPERIMENT_CONFIGS,
    cnn_cifar10_config,
    cnn_mnist_config,
    lr_mnist_config,
    vgg_imagenet100_config,
)
from repro.experiments.configs import PAPER_DIMENSIONS


class TestRegistry:
    def test_all_four_workloads_present(self):
        assert set(EXPERIMENT_CONFIGS) == {
            "lr_mnist",
            "cnn_mnist",
            "cnn_cifar10",
            "vgg_imagenet100",
        }

    def test_paper_dimensions_are_large(self):
        """The latency model should describe paper-scale models, not the scaled ones."""
        assert PAPER_DIMENSIONS["lr"] > 500_000
        assert PAPER_DIMENSIONS["mini_vgg"] > 1_000_000


class TestConfigConstruction:
    def test_lr_mnist_builds_flat_model(self):
        cfg = lr_mnist_config(num_workers=5, num_train=100, image_size=8)
        assert cfg.flatten_inputs is True
        model = cfg.model_factory()
        dataset = cfg.dataset_factory()
        assert model.dimension > 0
        assert dataset.num_classes == 10

    def test_cnn_mnist_model_consumes_dataset_shape(self):
        cfg = cnn_mnist_config(num_workers=5, num_train=60, image_size=8)
        model = cfg.model_factory()
        ds = cfg.dataset_factory()
        out = model.forward(ds.x_train[:2], training=False)
        assert out.shape == (2, 10)

    def test_cnn_cifar10_uses_three_channels(self):
        cfg = cnn_cifar10_config(num_workers=5, num_train=60, image_size=8)
        ds = cfg.dataset_factory()
        assert ds.sample_shape[0] == 3

    def test_vgg_config_class_count(self):
        cfg = vgg_imagenet100_config(num_workers=5, num_train=200, image_size=8,
                                     num_classes=10)
        ds = cfg.dataset_factory()
        model = cfg.model_factory()
        assert ds.num_classes == 10
        out = model.forward(ds.x_train[:1], training=False)
        assert out.shape == (1, 10)

    def test_scaled_overrides_fields(self):
        cfg = lr_mnist_config(num_workers=5)
        new = cfg.scaled(num_workers=9, learning_rate=0.5)
        assert new.num_workers == 9
        assert new.learning_rate == 0.5
        # Original is unchanged (dataclasses.replace semantics).
        assert cfg.num_workers == 5

    def test_latency_dimension_set_from_paper_values(self):
        assert lr_mnist_config().latency_model_dimension == PAPER_DIMENSIONS["lr"]
        assert cnn_mnist_config().latency_model_dimension == PAPER_DIMENSIONS["mnist_cnn"]
