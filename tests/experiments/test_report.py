"""Tests for the consolidated sweep report generator."""

import json

import pytest

from repro.experiments.report import load_rows, sweep_report, write_report
from repro.experiments.reporting import format_markdown_table


def make_rows():
    """A small mixed grid: two successes (one cached), one failure."""

    def summary(acc, rounds=3.0, loss=1.2, time_s=40.0):
        return {
            "mechanism": "air_fedga",
            "rounds": rounds,
            "total_time_s": time_s,
            "avg_round_time_s": time_s / rounds,
            "final_loss": loss,
            "final_accuracy": acc,
            "best_accuracy": acc,
            "total_energy_j": 1.0,
            "max_staleness": 0,
        }

    return [
        {
            "index": 0,
            "scenario": "grid#0",
            "spec_hash": "a" * 64,
            "overrides": {"seed": 0},
            "cpu_count": 4,
            "attempts": 1,
            "cache_hit": False,
            "parallelism_mode": "none",
            "summary": summary(0.8),
            "faults": {"workers_dropped": 2, "quorum_retries": 1},
        },
        {
            "index": 1,
            "scenario": "grid#1",
            "spec_hash": "b" * 64,
            "overrides": {"seed": 1},
            "cpu_count": 4,
            "attempts": 0,
            "cache_hit": True,
            "parallelism_mode": "none",
            "summary": summary(0.6, time_s=50.0),
            "faults": {"workers_dropped": 1, "quorum_retries": 0},
        },
        {
            "index": 2,
            "scenario": "grid#2",
            "spec_hash": "c" * 64,
            "overrides": {"seed": 2},
            "cpu_count": 4,
            "attempts": 3,
            "cache_hit": False,
            "parallelism_mode": "none",
            "error": "RuntimeError: flaky dependency offline",
            "traceback": "Traceback (most recent call last):\n...",
        },
    ]


class TestMarkdownReport:
    def test_sections_and_aggregates(self):
        text = sweep_report(make_rows(), title="Kill grid")
        assert text.startswith("# Kill grid")
        for heading in (
            "## Overview",
            "## Per-axis aggregates",
            "### Axis `seed`",
            "## Device-fault counters",
            "## Failures and retries",
            "## Results",
        ):
            assert heading in text
        # Overview counts the mixed grid correctly.
        assert "| grid points | 3 |" in text
        assert "| succeeded | 2 |" in text
        assert "| failed | 1 |" in text
        assert "| cache hits | 1 |" in text
        assert "| executions (attempts) | 4 |" in text
        # Fault counters are totalled across rows.
        assert "| workers_dropped | 3 |" in text
        assert "| quorum_retries | 1 |" in text
        # The failure row carries the spec-hash prefix, attempts and error.
        assert "c" * 12 in text and "c" * 13 not in text
        assert "RuntimeError: flaky dependency offline" in text

    def test_failure_free_grid_says_so(self):
        rows = [row for row in make_rows() if "summary" in row]
        text = sweep_report(rows)
        assert "No failed grid points." in text

    def test_rows_without_fault_counters_say_so(self):
        rows = make_rows()
        for row in rows:
            row.pop("faults", None)
        assert "No rows carry fault counters." in sweep_report(rows)

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError, match="no sweep rows"):
            sweep_report([])

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="fmt"):
            sweep_report(make_rows(), fmt="pdf")


class TestHtmlReport:
    def test_self_contained_page_with_escaping(self):
        rows = make_rows()
        rows[2]["error"] = "ValueError: <bad> & worse"
        text = sweep_report(rows, fmt="html", title="Kill <grid>")
        assert text.startswith("<!DOCTYPE html>")
        assert "<style>" in text  # self-contained: inline CSS
        assert "<title>Kill &lt;grid&gt;</title>" in text
        assert "ValueError: &lt;bad&gt; &amp; worse" in text
        assert "<bad>" not in text


class TestWriteReport:
    def test_suffix_selects_the_format(self, tmp_path):
        md = write_report(make_rows(), tmp_path / "report.md")
        page = write_report(make_rows(), tmp_path / "report.HTML")
        assert md.read_text().startswith("# Sweep report")
        assert page.read_text().startswith("<!DOCTYPE html>")

    def test_explicit_format_overrides_the_suffix(self, tmp_path):
        path = write_report(make_rows(), tmp_path / "report.txt", fmt="html")
        assert path.read_text().startswith("<!DOCTYPE html>")

    def test_parent_directories_are_created(self, tmp_path):
        path = write_report(make_rows(), tmp_path / "deep" / "nest" / "r.md")
        assert path.exists()


class TestLoadRows:
    def test_orders_by_index_with_last_occurrence_winning(self, tmp_path):
        rows = make_rows()
        resumed = dict(rows[2])
        resumed.pop("error"), resumed.pop("traceback")
        resumed["summary"] = rows[0]["summary"]
        # Completion order 2,0,1 then a resumed duplicate of 2 and a torn tail.
        path = tmp_path / "rows.jsonl"
        lines = [rows[2], rows[0], rows[1], resumed]
        path.write_text("\n".join(json.dumps(r) for r in lines) + "\n" + '{"torn')
        loaded = load_rows(path)
        assert [row["index"] for row in loaded] == [0, 1, 2]
        assert "error" not in loaded[2] and "summary" in loaded[2]

    def test_rows_without_an_index_are_kept_at_the_end(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text(json.dumps({"note": "freeform"}) + "\n"
                        + json.dumps(make_rows()[0]) + "\n")
        loaded = load_rows(path)
        assert loaded[0]["index"] == 0 and loaded[1] == {"note": "freeform"}


class TestMarkdownTableHelper:
    def test_pipes_escaped_and_floats_formatted(self):
        table = format_markdown_table(["name", "acc"], [["a|b", 0.12345], ["c", None]])
        assert "a\\|b" in table
        assert "0.123" in table
        assert table.splitlines()[1].startswith("| ---")

    def test_header_cell_count_enforced(self):
        with pytest.raises(ValueError, match="headers"):
            format_markdown_table(["only"], [["a", "b"]])
