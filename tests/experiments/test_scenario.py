"""Tests for the declarative Scenario spec (repro.experiments.scenario)."""

import dataclasses
import json

import pytest

from repro import registry
from repro.core import AirFedGAConfig, ParallelismConfig
from repro.core.config import GroupingConfig
from repro.data.synthetic import make_mnist_like
from repro.experiments import (
    ComponentSpec,
    DataSpec,
    ExperimentConfig,
    Scenario,
    TimingSpec,
    TrainingSpec,
    run_mechanism,
)
from repro.fl import AirFedGATrainer, TiFLTrainer
from repro.registry import UnknownComponentError


def tiny_scenario(**overrides) -> Scenario:
    """A seconds-fast scenario used throughout this module."""
    scenario = Scenario(
        name="tiny",
        num_workers=6,
        seed=0,
        data=DataSpec(
            name="synthetic-mnist",
            params={"num_train": 120, "num_test": 60, "image_size": 8},
            flatten=True,
        ),
        model=ComponentSpec("lr", {"input_dim": 64, "hidden": 8, "num_classes": 10}),
        timing=TimingSpec(base_local_time=2.0),
        training=TrainingSpec(max_rounds=4, max_eval_samples=60),
    )
    return scenario.with_(**overrides) if overrides else scenario


class TestRoundTrip:
    def test_default_round_trips(self):
        s = Scenario.default()
        assert Scenario.from_dict(s.to_dict()) == s

    def test_json_round_trips(self, tmp_path):
        s = tiny_scenario()
        path = tmp_path / "scenario.json"
        s.to_json(path)
        with path.open() as handle:
            loaded = Scenario.from_dict(json.load(handle))
        assert loaded == s

    def test_from_json_accepts_text_and_path(self, tmp_path):
        s = tiny_scenario()
        assert Scenario.from_json(s.to_json()) == s
        path = tmp_path / "s.json"
        s.to_json(path)
        assert Scenario.from_json(path) == s

    @pytest.mark.parametrize("dataset", registry.names("dataset"))
    def test_round_trip_every_dataset(self, dataset):
        s = tiny_scenario(data=dataset)
        assert Scenario.from_dict(json.loads(s.to_json())).data.name == dataset

    @pytest.mark.parametrize("partitioner", registry.names("partitioner"))
    def test_round_trip_every_partitioner(self, partitioner):
        s = tiny_scenario(partition=partitioner)
        assert Scenario.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("channel", registry.names("channel"))
    def test_round_trip_every_channel(self, channel):
        s = tiny_scenario(channel=channel)
        assert Scenario.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("latency", registry.names("latency"))
    def test_round_trip_every_latency_model(self, latency):
        s = tiny_scenario(**{"timing.latency": latency})
        assert Scenario.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("mechanism", registry.names("mechanism"))
    def test_round_trip_every_mechanism(self, mechanism):
        s = tiny_scenario(mechanism=mechanism)
        assert Scenario.from_dict(s.to_dict()) == s

    @pytest.mark.parametrize("model", registry.names("model"))
    def test_round_trip_every_model(self, model):
        # Validation only resolves the name; params stay as data.
        s = tiny_scenario(model=model)
        assert Scenario.from_dict(s.to_dict()) == s

    def test_tuple_params_normalize_to_lists(self):
        a = tiny_scenario(**{"mechanism.params": {"num_groups": None}})
        spec = ComponentSpec("x", {"values": (1, 2)})
        assert spec.params == {"values": [1, 2]}
        assert a == Scenario.from_dict(a.to_dict())

    def test_partial_dict_takes_defaults(self):
        s = Scenario.from_dict({"num_workers": 4})
        assert s.num_workers == 4
        assert s.mechanism.name == "air_fedga"
        assert s.timing == TimingSpec()


class TestValidation:
    def test_unknown_component_names_fail_at_construction(self):
        with pytest.raises(UnknownComponentError, match="unknown dataset"):
            tiny_scenario(data="synthetic-mnst")
        with pytest.raises(UnknownComponentError, match="unknown partition strategy"):
            tiny_scenario(partition="label-skw")
        with pytest.raises(UnknownComponentError, match="unknown channel kind"):
            tiny_scenario(channel="awgn")
        with pytest.raises(UnknownComponentError, match="unknown latency model"):
            tiny_scenario(**{"timing.latency": "unifrom"})
        with pytest.raises(UnknownComponentError, match="unknown mechanism"):
            tiny_scenario(mechanism="air_fedgaa")

    def test_unknown_mechanism_params_fail_at_construction(self):
        with pytest.raises(TypeError, match="accepted parameters"):
            tiny_scenario(**{"mechanism.params": {"grouping": "greedy"}})

    def test_unknown_section_field_fails(self):
        with pytest.raises(ValueError, match="unknown field"):
            Scenario.from_dict({"training": {"max_round": 5}})

    def test_unknown_top_level_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'mechanism'"):
            Scenario.from_dict({"mechansim": {"name": "fedavg"}})

    def test_bad_scalars_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            Scenario(num_workers=0)
        with pytest.raises(ValueError, match="seed"):
            Scenario(seed=-1)
        with pytest.raises(ValueError, match="base_local_time"):
            TimingSpec(base_local_time=0.0)
        with pytest.raises(ValueError, match="max_rounds"):
            TrainingSpec(max_rounds=0)

    def test_parallelism_must_live_in_its_own_section(self):
        with pytest.raises(ValueError, match="scenario.parallelism"):
            Scenario(
                algorithm=AirFedGAConfig(
                    parallelism=ParallelismConfig(mode="processes")
                )
            )

    def test_parallelism_section_is_applied_at_build(self):
        s = tiny_scenario()
        s = dataclasses.replace(s, parallelism=ParallelismConfig(min_group_size=5))
        experiment = s.build_experiment()
        assert experiment.config.parallelism.min_group_size == 5


class TestBuilder:
    def test_default_is_valid_and_fast(self):
        s = Scenario.default()
        assert s.mechanism.name == "air_fedga"
        assert s.training.max_rounds <= 10

    def test_with_replaces_scalars_and_components(self):
        s = Scenario.default().with_(
            num_workers=4,
            mechanism="tifl",
            **{"timing.base_local_time": 1.5, "mechanism.params": {"num_tiers": 2}},
        )
        assert s.num_workers == 4
        assert s.mechanism == ComponentSpec("tifl", {"num_tiers": 2})
        assert s.timing.base_local_time == 1.5

    def test_with_component_shorthand_resets_params(self):
        s = tiny_scenario(**{"mechanism.params": {"staleness_exponent": 0.5}})
        switched = s.with_(mechanism="fedavg")
        assert switched.mechanism == ComponentSpec("fedavg")

    def test_with_section_mapping_merges(self):
        s = tiny_scenario().with_(training={"max_rounds": 2})
        assert s.training.max_rounds == 2
        assert s.training.batch_size == tiny_scenario().training.batch_size

    def test_with_unknown_field_suggests(self):
        with pytest.raises(ValueError, match="did you mean 'mechanism'"):
            tiny_scenario().with_(mechansim="fedavg")

    def test_with_does_not_mutate_the_original(self):
        s = tiny_scenario()
        s.with_(num_workers=3)
        assert s.num_workers == 6


class TestBuildAndRun:
    def test_build_returns_ready_trainer(self):
        trainer = tiny_scenario().build()
        assert isinstance(trainer, AirFedGATrainer)
        assert trainer.exp.num_workers == 6

    def test_mechanism_params_reach_the_trainer(self):
        trainer = tiny_scenario(
            mechanism={"name": "tifl", "params": {"num_tiers": 2}}
        ).build()
        assert isinstance(trainer, TiFLTrainer)
        assert trainer.num_tiers == 2

    def test_run_honours_the_budget(self):
        history = tiny_scenario().run()
        assert history.total_rounds == 4
        assert history.mechanism == "air_fedga"

    def test_flatten_respected(self):
        exp = tiny_scenario().build_experiment()
        assert exp.dataset.sample_shape == (64,)
        exp_img = tiny_scenario(data={"flatten": False}).build_experiment()
        assert exp_img.dataset.sample_shape == (1, 8, 8)


class TestLegacyEquivalence:
    """A scenario run is bit-identical to the hand-wired ExperimentConfig run."""

    def make_pair(self):
        scenario = Scenario(
            name="equivalence",
            num_workers=6,
            seed=3,
            data=DataSpec(
                name="synthetic-mnist",
                params={"num_train": 120, "num_test": 60, "image_size": 8},
                flatten=True,
            ),
            model=ComponentSpec(
                "lr", {"input_dim": 64, "hidden": 8, "num_classes": 10}
            ),
            timing=TimingSpec(base_local_time=2.0),
            training=TrainingSpec(max_rounds=5, max_eval_samples=60),
            algorithm=AirFedGAConfig(grouping=GroupingConfig(xi=0.3)),
        )
        config = ExperimentConfig(
            name="equivalence",
            dataset_factory=lambda: make_mnist_like(
                num_train=120, num_test=60, image_size=8, seed=3
            ),
            model_factory=lambda: registry.create(
                "model", "lr", input_dim=64, hidden=8, num_classes=10, seed=3
            ),
            flatten_inputs=True,
            num_workers=6,
            base_local_time=2.0,
            max_rounds=5,
            max_eval_samples=60,
            seed=3,
            config=AirFedGAConfig(grouping=GroupingConfig(xi=0.3)),
        )
        return scenario, config

    def test_bit_identical_history_from_json(self, tmp_path):
        scenario, config = self.make_pair()
        # The acceptance-criterion path: one JSON file reproduces the run.
        path = tmp_path / "equivalence.json"
        scenario.to_json(path)
        with path.open() as handle:
            loaded = Scenario.from_dict(json.load(handle))

        scenario_history = loaded.run()
        legacy_history = run_mechanism(config, "air_fedga")

        assert len(scenario_history.records) == len(legacy_history.records)
        for ours, theirs in zip(scenario_history.records, legacy_history.records):
            assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)

    def test_experiments_match_structurally(self):
        scenario, config = self.make_pair()
        from repro.experiments import build_experiment
        import numpy as np

        ours = scenario.build_experiment()
        theirs = build_experiment(config)
        np.testing.assert_array_equal(ours.dataset.x_train, theirs.dataset.x_train)
        np.testing.assert_array_equal(
            ours.partition.data_sizes(), theirs.partition.data_sizes()
        )
        np.testing.assert_array_equal(
            ours.latency.nominal_times(), theirs.latency.nominal_times()
        )
        np.testing.assert_array_equal(ours.channel.gains(0), theirs.channel.gains(0))
