"""Tests for the per-table experiment drivers."""

from __future__ import annotations

import pytest

from repro.experiments import emd_comparison, lr_mnist_config, mechanism_comparison


class TestEMDComparison:
    def test_original_matches_paper_value(self):
        """Single-label workers over 10 balanced classes give EMD = 1.8."""
        result = emd_comparison(num_workers=20, num_tiers=4, seed=0)
        assert result["original"] == pytest.approx(1.8, abs=0.05)

    def test_ordering_matches_table_iii(self):
        """Air-FedGA grouping reduces EMD below TiFL, which is below Original."""
        result = emd_comparison(num_workers=30, num_tiers=5, seed=0)
        assert result["air_fedga"] < result["tifl"] < result["original"]

    def test_values_within_emd_range(self):
        result = emd_comparison(num_workers=20, num_tiers=4, seed=1)
        for value in result.values():
            assert 0.0 <= value <= 2.0


class TestMechanismComparison:
    def test_probe_reports_all_mechanisms(self):
        cfg = lr_mnist_config(
            num_workers=6, num_train=120, image_size=8, hidden=8, max_rounds=3
        ).scaled(eval_every=1, max_eval_samples=40, local_steps=1)
        result = mechanism_comparison(
            config=cfg, mechanisms=("fedavg", "air_fedga"), max_rounds=3
        )
        assert set(result) == {"fedavg", "air_fedga"}
        for row in result.values():
            assert row["avg_round_time_s"] > 0
            assert 0.0 <= row["final_accuracy"] <= 1.0
