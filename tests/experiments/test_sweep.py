"""Tests for the concurrent scenario-grid sweep runner."""

import json

import pytest

from repro.experiments import SweepRunner, expand_grid, sweep_axes, sweep_points
from repro.experiments.cli import main as cli_main


def tiny_spec(**extra):
    spec = {
        "name": "grid",
        "num_workers": 6,
        "seed": [0, 1],
        "data": {
            "name": "synthetic-mnist",
            "params": {"num_train": 120, "num_test": 60, "image_size": 8},
            "flatten": True,
        },
        "model": {"name": "lr", "params": {"input_dim": 64, "hidden": 8, "num_classes": 10}},
        "timing": {"base_local_time": 2.0},
        "training": {"max_rounds": 3, "max_eval_samples": 60},
        "algorithm": {"grouping": {"xi": [0.3, 1.0]}},
    }
    spec.update(extra)
    return spec


class TestGridExpansion:
    def test_axes_found_at_any_depth(self):
        axes = sweep_axes(tiny_spec())
        assert axes == {"seed": [0, 1], "algorithm.grouping.xi": [0.3, 1.0]}

    def test_cross_product_size_and_names(self):
        scenarios = expand_grid(tiny_spec())
        assert len(scenarios) == 4
        assert [s.name for s in scenarios] == [f"grid#{i}" for i in range(4)]

    def test_overrides_are_applied(self):
        points = sweep_points(tiny_spec())
        combos = {
            (overrides["seed"], overrides["algorithm.grouping.xi"])
            for _, overrides in points
        }
        assert combos == {(0, 0.3), (0, 1.0), (1, 0.3), (1, 1.0)}
        for scenario, overrides in points:
            assert scenario.seed == overrides["seed"]
            assert scenario.algorithm.grouping.xi == overrides["algorithm.grouping.xi"]

    def test_no_axes_yields_single_point(self):
        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        points = sweep_points(spec)
        assert len(points) == 1
        assert points[0][0].name == "grid"
        assert points[0][1] == {}

    def test_typo_fails_before_any_run(self):
        spec = tiny_spec()
        spec["mechanism"] = {"name": "air_fedgaa"}
        with pytest.raises(KeyError, match="unknown mechanism"):
            sweep_points(spec)


class TestSweepRunner:
    def test_serial_four_point_grid_writes_jsonl(self, tmp_path):
        out = tmp_path / "results.jsonl"
        rows = SweepRunner(tiny_spec(), output=out, mode="serial").run()
        assert [row["index"] for row in rows] == [0, 1, 2, 3]
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 4
        for row in lines:
            assert row["scenario"].startswith("grid#")
            assert row["mechanism"] == "air_fedga"
            assert set(row["overrides"]) == {"seed", "algorithm.grouping.xi"}
            assert row["summary"]["rounds"] == 3.0
            # Satellite: every row is self-describing for multi-core analysis.
            assert isinstance(row["cpu_count"], int) and row["cpu_count"] >= 1
            assert row["parallelism_mode"] in ("none", "processes")
            assert row["parallelism_configured"] == "none"
            assert row["pipeline"] is False
            assert row["engine"] == "auto"

    def test_concurrent_execution_of_four_point_grid(self, tmp_path):
        out = tmp_path / "results.jsonl"
        rows = SweepRunner(tiny_spec(), output=out, max_workers=2).run()
        assert [row["index"] for row in rows] == [0, 1, 2, 3]
        assert {
            (row["overrides"]["seed"], row["overrides"]["algorithm.grouping.xi"])
            for row in rows
        } == {(0, 0.3), (0, 1.0), (1, 0.3), (1, 1.0)}
        assert all("summary" in row for row in rows)
        # The JSONL file holds the same four rows (in completion order).
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert sorted(row["index"] for row in lines) == [0, 1, 2, 3]

    def test_failed_point_becomes_error_row(self, tmp_path):
        # 50 workers on 120 samples makes the dirichlet min-sample
        # constraint unsatisfiable at build time.
        spec = tiny_spec(num_workers=[6, 500])
        spec["seed"] = 0
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        spec["partition"] = {"name": "dirichlet", "params": {}}
        rows = SweepRunner(spec, mode="serial").run()
        assert len(rows) == 2
        errors = [row for row in rows if "error" in row]
        assert len(errors) == 1
        assert errors[0]["overrides"]["num_workers"] == 500
        assert "summary" not in errors[0]

    def test_scenarios_sequence_accepted(self):
        scenarios = expand_grid(tiny_spec())[:2]
        runner = SweepRunner(scenarios, mode="serial")
        assert len(runner) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            SweepRunner(tiny_spec(), mode="threads")
        with pytest.raises(ValueError, match="start_method"):
            SweepRunner(tiny_spec(), start_method="nosuch")
        with pytest.raises(ValueError, match="max_workers"):
            SweepRunner(tiny_spec(), max_workers=0)
        with pytest.raises(ValueError, match="empty"):
            SweepRunner([])

    def test_invalid_spec_in_worker_becomes_error_row(self):
        # A pool worker re-validates the spec (e.g. a plug-in component
        # registered only in the parent with a spawn pool); construction
        # failures must yield an error row, not sink the sweep.
        from repro.experiments.sweep import _execute_point

        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        spec["mechanism"] = {"name": "only-in-parent"}
        row = _execute_point(0, spec, {})
        assert "unknown mechanism" in row["error"]
        assert row["scenario"] == "grid"
        assert row["cpu_count"] >= 1


class TestRetries:
    def _single_point(self):
        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        return spec

    def test_transient_failure_retried_to_success(self, monkeypatch):
        # A flaky first build (e.g. a transient shared-memory init error)
        # must be absorbed by the retry, yielding a clean success row that
        # still records the extra attempt.
        from repro.experiments import sweep as sweep_mod

        real = sweep_mod.Scenario
        calls = {"n": 0}

        class Flaky:
            @staticmethod
            def from_dict(doc):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("transient shared-memory init failure")
                return real.from_dict(doc)

        monkeypatch.setattr(sweep_mod, "Scenario", Flaky)
        row = sweep_mod._execute_point(
            0, self._single_point(), {}, retries=1, retry_backoff=0.0
        )
        assert row["attempts"] == 2
        assert "summary" in row
        assert "error" not in row and "traceback" not in row

    def test_exhausted_retries_emit_traceback_row(self):
        from repro.experiments.sweep import _execute_point

        spec = self._single_point()
        spec["mechanism"] = {"name": "registered-only-in-parent"}
        row = _execute_point(0, spec, {}, retries=2, retry_backoff=0.0)
        assert row["attempts"] == 3
        assert "unknown mechanism" in row["error"]
        # The full traceback makes a failed sweep debuggable from JSONL.
        assert "Traceback (most recent call last)" in row["traceback"]
        assert "summary" not in row

    def test_success_rows_carry_fault_counters(self):
        from repro.experiments.sweep import _execute_point

        row = _execute_point(0, self._single_point(), {})
        assert row["attempts"] == 1
        assert set(row["faults"]) == {
            "workers_unavailable", "workers_dropped", "partial_updates",
            "quorum_retries", "quorum_skips", "groups_parked",
        }
        # The tiny spec has no faults section: the always-on default
        # injects nothing.
        assert all(v == 0 for v in row["faults"].values())

    def test_runner_validates_retry_arguments(self):
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(tiny_spec(), retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SweepRunner(tiny_spec(), retry_backoff=-0.5)

    def test_faulty_sweep_axis_round_trips(self, tmp_path):
        # A sweep over client-state models: the faults section expands
        # like any other axis and each row reports its own counters.
        spec = self._single_point()
        spec["faults"] = {
            "clientstate": {
                "name": "bernoulli",
                "params": {"availability": [1.0, 0.6], "dropout_prob": 0.3},
            },
            "retry_backoff": 0.5,
        }
        out = tmp_path / "faults.jsonl"
        rows = SweepRunner(spec, output=out, mode="serial").run()
        assert len(rows) == 2
        by_avail = {
            row["overrides"]["faults.clientstate.params.availability"]: row
            for row in rows
        }
        assert all("summary" in row for row in rows)
        assert sum(by_avail[0.6]["faults"].values()) > 0
        assert by_avail[1.0]["faults"]["workers_dropped"] > 0


class TestSweepCLI:
    def test_cli_runs_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec = tiny_spec()
        spec["algorithm"] = {"grouping": {"xi": 0.3}}  # 2 points
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rows.jsonl"
        code = cli_main(
            ["sweep", str(spec_path), "--output", str(out), "--serial"]
        )
        assert code == 0
        assert len(out.read_text().splitlines()) == 2
        printed = capsys.readouterr().out
        assert "Sweep results" in printed
        assert "grid#0" in printed
