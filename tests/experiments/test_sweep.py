"""Tests for the concurrent scenario-grid sweep runner."""

import json

import pytest

from repro.experiments import SweepRunner, expand_grid, sweep_axes, sweep_points
from repro.experiments.cli import main as cli_main


def tiny_spec(**extra):
    spec = {
        "name": "grid",
        "num_workers": 6,
        "seed": [0, 1],
        "data": {
            "name": "synthetic-mnist",
            "params": {"num_train": 120, "num_test": 60, "image_size": 8},
            "flatten": True,
        },
        "model": {"name": "lr", "params": {"input_dim": 64, "hidden": 8, "num_classes": 10}},
        "timing": {"base_local_time": 2.0},
        "training": {"max_rounds": 3, "max_eval_samples": 60},
        "algorithm": {"grouping": {"xi": [0.3, 1.0]}},
    }
    spec.update(extra)
    return spec


class TestGridExpansion:
    def test_axes_found_at_any_depth(self):
        axes = sweep_axes(tiny_spec())
        assert axes == {"seed": [0, 1], "algorithm.grouping.xi": [0.3, 1.0]}

    def test_cross_product_size_and_names(self):
        scenarios = expand_grid(tiny_spec())
        assert len(scenarios) == 4
        assert [s.name for s in scenarios] == [f"grid#{i}" for i in range(4)]

    def test_overrides_are_applied(self):
        points = sweep_points(tiny_spec())
        combos = {
            (overrides["seed"], overrides["algorithm.grouping.xi"])
            for _, overrides in points
        }
        assert combos == {(0, 0.3), (0, 1.0), (1, 0.3), (1, 1.0)}
        for scenario, overrides in points:
            assert scenario.seed == overrides["seed"]
            assert scenario.algorithm.grouping.xi == overrides["algorithm.grouping.xi"]

    def test_no_axes_yields_single_point(self):
        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        points = sweep_points(spec)
        assert len(points) == 1
        assert points[0][0].name == "grid"
        assert points[0][1] == {}

    def test_typo_fails_before_any_run(self):
        spec = tiny_spec()
        spec["mechanism"] = {"name": "air_fedgaa"}
        with pytest.raises(KeyError, match="unknown mechanism"):
            sweep_points(spec)


class TestSweepRunner:
    def test_serial_four_point_grid_writes_jsonl(self, tmp_path):
        out = tmp_path / "results.jsonl"
        rows = SweepRunner(tiny_spec(), output=out, mode="serial").run()
        assert [row["index"] for row in rows] == [0, 1, 2, 3]
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(lines) == 4
        for row in lines:
            assert row["scenario"].startswith("grid#")
            assert row["mechanism"] == "air_fedga"
            assert set(row["overrides"]) == {"seed", "algorithm.grouping.xi"}
            assert row["summary"]["rounds"] == 3.0
            # Satellite: every row is self-describing for multi-core analysis.
            assert isinstance(row["cpu_count"], int) and row["cpu_count"] >= 1
            assert row["parallelism_mode"] in ("none", "processes")
            assert row["parallelism_configured"] == "none"
            assert row["pipeline"] is False
            assert row["engine"] == "auto"

    def test_concurrent_execution_of_four_point_grid(self, tmp_path):
        out = tmp_path / "results.jsonl"
        rows = SweepRunner(tiny_spec(), output=out, max_workers=2).run()
        assert [row["index"] for row in rows] == [0, 1, 2, 3]
        assert {
            (row["overrides"]["seed"], row["overrides"]["algorithm.grouping.xi"])
            for row in rows
        } == {(0, 0.3), (0, 1.0), (1, 0.3), (1, 1.0)}
        assert all("summary" in row for row in rows)
        # The JSONL file holds the same four rows (in completion order).
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        assert sorted(row["index"] for row in lines) == [0, 1, 2, 3]

    def test_failed_point_becomes_error_row(self, tmp_path):
        # 50 workers on 120 samples makes the dirichlet min-sample
        # constraint unsatisfiable at build time.
        spec = tiny_spec(num_workers=[6, 500])
        spec["seed"] = 0
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        spec["partition"] = {"name": "dirichlet", "params": {}}
        rows = SweepRunner(spec, mode="serial").run()
        assert len(rows) == 2
        errors = [row for row in rows if "error" in row]
        assert len(errors) == 1
        assert errors[0]["overrides"]["num_workers"] == 500
        assert "summary" not in errors[0]

    def test_scenarios_sequence_accepted(self):
        scenarios = expand_grid(tiny_spec())[:2]
        runner = SweepRunner(scenarios, mode="serial")
        assert len(runner) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="mode"):
            SweepRunner(tiny_spec(), mode="threads")
        with pytest.raises(ValueError, match="start_method"):
            SweepRunner(tiny_spec(), start_method="nosuch")
        with pytest.raises(ValueError, match="max_workers"):
            SweepRunner(tiny_spec(), max_workers=0)
        with pytest.raises(ValueError, match="empty"):
            SweepRunner([])

    def test_invalid_spec_in_worker_becomes_error_row(self):
        # A pool worker re-validates the spec (e.g. a plug-in component
        # registered only in the parent with a spawn pool); construction
        # failures must yield an error row, not sink the sweep.
        from repro.experiments.sweep import _execute_point

        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        spec["mechanism"] = {"name": "only-in-parent"}
        row = _execute_point(0, spec, {})
        assert "unknown mechanism" in row["error"]
        assert row["scenario"] == "grid"
        assert row["cpu_count"] >= 1


class TestRetries:
    def _single_point(self):
        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        return spec

    def test_transient_failure_retried_to_success(self, monkeypatch):
        # A flaky first build (e.g. a transient shared-memory init error)
        # must be absorbed by the retry, yielding a clean success row that
        # still records the extra attempt.
        from repro.experiments import sweep as sweep_mod

        real = sweep_mod.Scenario
        calls = {"n": 0}

        class Flaky:
            @staticmethod
            def from_dict(doc):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("transient shared-memory init failure")
                return real.from_dict(doc)

        monkeypatch.setattr(sweep_mod, "Scenario", Flaky)
        row = sweep_mod._execute_point(
            0, self._single_point(), {}, retries=1, retry_backoff=0.0
        )
        assert row["attempts"] == 2
        assert "summary" in row
        assert "error" not in row and "traceback" not in row

    def test_exhausted_retries_emit_traceback_row(self):
        from repro.experiments.sweep import _execute_point

        spec = self._single_point()
        spec["mechanism"] = {"name": "registered-only-in-parent"}
        row = _execute_point(0, spec, {}, retries=2, retry_backoff=0.0)
        assert row["attempts"] == 3
        assert "unknown mechanism" in row["error"]
        # The full traceback makes a failed sweep debuggable from JSONL.
        assert "Traceback (most recent call last)" in row["traceback"]
        assert "summary" not in row

    def test_success_rows_carry_fault_counters(self):
        from repro.experiments.sweep import _execute_point

        row = _execute_point(0, self._single_point(), {})
        assert row["attempts"] == 1
        assert set(row["faults"]) == {
            "workers_unavailable", "workers_dropped", "partial_updates",
            "quorum_retries", "quorum_skips", "groups_parked",
        }
        # The tiny spec has no faults section: the always-on default
        # injects nothing.
        assert all(v == 0 for v in row["faults"].values())

    def test_runner_validates_retry_arguments(self):
        with pytest.raises(ValueError, match="retries"):
            SweepRunner(tiny_spec(), retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            SweepRunner(tiny_spec(), retry_backoff=-0.5)

    def test_faulty_sweep_axis_round_trips(self, tmp_path):
        # A sweep over client-state models: the faults section expands
        # like any other axis and each row reports its own counters.
        spec = self._single_point()
        spec["faults"] = {
            "clientstate": {
                "name": "bernoulli",
                "params": {"availability": [1.0, 0.6], "dropout_prob": 0.3},
            },
            "retry_backoff": 0.5,
        }
        out = tmp_path / "faults.jsonl"
        rows = SweepRunner(spec, output=out, mode="serial").run()
        assert len(rows) == 2
        by_avail = {
            row["overrides"]["faults.clientstate.params.availability"]: row
            for row in rows
        }
        assert all("summary" in row for row in rows)
        assert sum(by_avail[0.6]["faults"].values()) > 0
        assert by_avail[1.0]["faults"]["workers_dropped"] > 0


class TestRowSchemaGolden:
    """Golden-schema tests: the documented JSONL row keys downstream
    report tooling builds on (SWEEP_ROW_KEYS and friends) must all be
    present on real rows — a silently dropped key is a breaking change."""

    SUMMARY_KEYS = {
        "mechanism", "rounds", "total_time_s", "avg_round_time_s",
        "final_loss", "final_accuracy", "best_accuracy", "total_energy_j",
        "max_staleness",
    }

    def _single_point(self):
        spec = tiny_spec(seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        return spec

    def test_success_rows_carry_exactly_the_documented_keys(self):
        from repro.experiments.sweep import SWEEP_SUCCESS_ROW_KEYS

        rows = SweepRunner(self._single_point(), mode="serial").run()
        assert set(rows[0]) == SWEEP_SUCCESS_ROW_KEYS
        assert set(rows[0]["summary"]) == self.SUMMARY_KEYS
        assert rows[0]["cache_hit"] is False
        assert isinstance(rows[0]["spec_hash"], str) and len(rows[0]["spec_hash"]) == 64

    def test_every_streamed_row_carries_the_core_keys(self, tmp_path):
        from repro.experiments.sweep import SWEEP_ROW_KEYS

        out = tmp_path / "rows.jsonl"
        SweepRunner(tiny_spec(), output=out, mode="serial").run()
        for line in out.read_text().splitlines():
            row = json.loads(line)
            assert SWEEP_ROW_KEYS <= set(row)

    def test_error_rows_stay_within_the_documented_keys(self):
        from repro.experiments.sweep import (
            SWEEP_ERROR_ROW_KEYS,
            SWEEP_SUCCESS_ROW_KEYS,
        )

        spec = tiny_spec(num_workers=500, seed=0)
        spec["algorithm"] = {"grouping": {"xi": 0.3}}
        spec["partition"] = {"name": "dirichlet", "params": {}}
        rows = SweepRunner(spec, mode="serial", retries=0).run()
        (row,) = rows
        assert SWEEP_ERROR_ROW_KEYS <= set(row)
        assert set(row) <= SWEEP_ERROR_ROW_KEYS | SWEEP_SUCCESS_ROW_KEYS
        # Satellite regression: the failing point's resolved spec hash is
        # recorded so --resume can tell "failed" from "never started".
        assert isinstance(row["spec_hash"], str) and len(row["spec_hash"]) == 64

    def test_cache_hit_rows_match_the_success_schema(self, tmp_path):
        from repro.experiments.sweep import SWEEP_SUCCESS_ROW_KEYS

        spec = self._single_point()
        cache = tmp_path / "cache"
        first = SweepRunner(spec, mode="serial", cache_dir=cache).run()
        second = SweepRunner(spec, mode="serial", cache_dir=cache).run()
        assert first[0]["cache_hit"] is False
        assert second[0]["cache_hit"] is True
        assert second[0]["attempts"] == 0
        assert set(second[0]) == SWEEP_SUCCESS_ROW_KEYS
        assert second[0]["summary"] == first[0]["summary"]


class TestCacheAndResume:
    def test_relaunch_against_the_cache_skips_every_point(self, tmp_path):
        cache = tmp_path / "cache"
        first = SweepRunner(
            tiny_spec(), output=tmp_path / "a.jsonl", mode="serial", cache_dir=cache
        ).run()
        second = SweepRunner(
            tiny_spec(), output=tmp_path / "b.jsonl", mode="serial", cache_dir=cache
        ).run()
        assert all(row["cache_hit"] for row in second)
        assert [r["summary"] for r in second] == [r["summary"] for r in first]

    def test_resume_requires_an_output_path(self):
        with pytest.raises(ValueError, match="resume"):
            SweepRunner(tiny_spec(), resume=True)

    def test_resume_reexecutes_only_the_missing_point(self, tmp_path, monkeypatch):
        from repro.experiments import sweep as sweep_mod

        out = tmp_path / "rows.jsonl"
        reference = SweepRunner(tiny_spec(), output=out, mode="serial").run()
        # Simulate a kill that lost one completed row (and tore a line).
        lines = out.read_text().splitlines()
        out.write_text("\n".join(lines[:2]) + "\n" + lines[3] + "\n" + '{"torn')

        executed = []
        real = sweep_mod._execute_point

        def counting(*args, **kwargs):
            executed.append(args[0])
            return real(*args, **kwargs)

        monkeypatch.setattr(sweep_mod, "_execute_point", counting)
        merged = SweepRunner(
            tiny_spec(), output=out, mode="serial", resume=True
        ).run()
        assert executed == [2]  # exactly the lost point, nothing else
        assert [row["index"] for row in merged] == [0, 1, 2, 3]
        # Bit-identical (float64) to the uninterrupted run, including the
        # re-executed point (identical seeds).
        assert [r["summary"] for r in merged] == [r["summary"] for r in reference]
        # The compacted stream covers every point exactly once.
        final = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["index"] for row in final] == [0, 1, 2, 3]

    def test_resume_of_a_complete_sweep_executes_nothing(self, tmp_path, monkeypatch):
        from repro.experiments import sweep as sweep_mod

        out = tmp_path / "rows.jsonl"
        SweepRunner(tiny_spec(), output=out, mode="serial").run()

        def explode(*args, **kwargs):  # pragma: no cover - must not be called
            raise AssertionError("resume re-executed a completed point")

        monkeypatch.setattr(sweep_mod, "_execute_point", explode)
        rows = SweepRunner(tiny_spec(), output=out, mode="serial", resume=True).run()
        assert len(rows) == 4 and all("summary" in row for row in rows)

    def test_manifest_checkpoints_alongside_the_stream(self, tmp_path):
        from repro.experiments.sweep import SweepManifest

        out = tmp_path / "rows.jsonl"
        runner = SweepRunner(tiny_spec(), output=out, mode="serial")
        runner.run()
        manifest = SweepManifest.load(out.with_suffix(".manifest.json"))
        assert manifest.grid_hash == runner.grid_hash
        assert [p["status"] for p in manifest.points] == ["done"] * 4
        assert [p["spec_hash"] for p in manifest.points] == runner.point_hashes
        assert [p["attempts"] for p in manifest.points] == [1, 1, 1, 1]


class TestSweepCLI:
    def test_cli_runs_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec = tiny_spec()
        spec["algorithm"] = {"grouping": {"xi": 0.3}}  # 2 points
        spec_path.write_text(json.dumps(spec))
        out = tmp_path / "rows.jsonl"
        code = cli_main(
            ["sweep", str(spec_path), "--output", str(out), "--serial"]
        )
        assert code == 0
        assert len(out.read_text().splitlines()) == 2
        printed = capsys.readouterr().out
        assert "Sweep results" in printed
        assert "grid#0" in printed
