"""Unit tests for the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import build_experiment, lr_mnist_config, run_comparison, run_mechanism


def tiny_config(**overrides):
    cfg = lr_mnist_config(
        num_workers=6, num_train=120, image_size=8, hidden=8, max_rounds=3
    ).scaled(eval_every=1, max_eval_samples=40, local_steps=1, batch_size=16)
    if overrides:
        cfg = cfg.scaled(**overrides)
    return cfg


class TestBuildExperiment:
    def test_builds_consistent_experiment(self):
        exp = build_experiment(tiny_config())
        assert exp.num_workers == 6
        assert exp.partition.num_workers == 6
        assert exp.latency.num_workers == 6
        assert exp.channel.num_workers == 6

    def test_flattening_applied(self):
        exp = build_experiment(tiny_config())
        assert exp.dataset.x_train.ndim == 2

    def test_partition_strategies(self):
        iid = build_experiment(tiny_config(partition_strategy="iid"))
        skew = build_experiment(tiny_config(partition_strategy="label-skew"))
        dirichlet = build_experiment(tiny_config(partition_strategy="dirichlet"))
        # label-skew workers hold fewer distinct classes than IID workers.
        def mean_classes(exp):
            return (exp.partition.class_counts() > 0).sum(axis=1).mean()
        assert mean_classes(skew) < mean_classes(iid)
        assert dirichlet.num_workers == 6

    def test_unknown_partition_strategy(self):
        with pytest.raises(KeyError):
            build_experiment(tiny_config(partition_strategy="sorted"))

    def test_same_seed_same_data(self):
        a = build_experiment(tiny_config())
        b = build_experiment(tiny_config())
        np.testing.assert_array_equal(a.dataset.x_train, b.dataset.x_train)
        np.testing.assert_array_equal(
            a.latency.nominal_times(), b.latency.nominal_times()
        )


class TestRunners:
    def test_run_mechanism_returns_history(self):
        history = run_mechanism(tiny_config(), "air_fedavg")
        assert history.total_rounds == 3

    def test_run_comparison_runs_all_requested(self):
        run = run_comparison(tiny_config(), mechanisms=("fedavg", "air_fedga"))
        assert set(run.histories) == {"fedavg", "air_fedga"}
        rows = run.summary_rows()
        assert len(rows) == 2

    def test_run_comparison_time_to_accuracy_keys(self):
        run = run_comparison(tiny_config(), mechanisms=("air_fedavg",))
        tta = run.time_to_accuracy(0.99)
        assert set(tta) == {"air_fedavg"}

    def test_trainer_kwargs_forwarded(self):
        run = run_comparison(
            tiny_config(),
            mechanisms=("dynamic",),
            trainer_kwargs={"dynamic": {"select_fraction": 1.0}},
        )
        last = run.histories["dynamic"].records[-1]
        assert last.num_participants == 6
