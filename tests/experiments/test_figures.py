"""Tests for the per-figure experiment drivers (scaled down for speed)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    energy_vs_accuracy,
    grouping_boxplot_data,
    loss_accuracy_vs_time,
    lr_mnist_config,
    scalability_sweep,
    xi_sweep,
)


def tiny_config(**overrides):
    cfg = lr_mnist_config(
        num_workers=6, num_train=120, image_size=8, hidden=8, max_rounds=4
    ).scaled(eval_every=1, max_eval_samples=40, local_steps=1, batch_size=16)
    if overrides:
        cfg = cfg.scaled(**overrides)
    return cfg


class TestLossAccuracyVsTime:
    def test_returns_series_for_each_mechanism(self):
        series = loss_accuracy_vs_time(tiny_config(), mechanisms=("air_fedavg", "air_fedga"))
        assert set(series) == {"air_fedavg", "air_fedga"}
        for data in series.values():
            assert len(data["time"]) == len(data["loss"]) == len(data["accuracy"])
            assert np.all(np.diff(data["time"]) >= 0)

    def test_accuracy_within_bounds(self):
        series = loss_accuracy_vs_time(tiny_config(), mechanisms=("air_fedga",))
        acc = series["air_fedga"]["accuracy"]
        assert np.all(acc >= 0.0) and np.all(acc <= 1.0)


class TestGroupingBoxplot:
    def test_groups_cover_all_workers(self):
        data = grouping_boxplot_data(num_workers=12, xi=0.3, seed=0)
        total = sum(len(v) for v in data.values())
        assert total == 12

    def test_groups_ordered_by_median_time(self):
        data = grouping_boxplot_data(num_workers=12, xi=0.3, seed=0)
        medians = [np.median(v) for _, v in sorted(data.items())]
        assert all(a <= b + 1e-9 for a, b in zip(medians, medians[1:]))

    def test_all_times_positive(self):
        data = grouping_boxplot_data(num_workers=10, xi=0.5, seed=1)
        assert all(t > 0 for v in data.values() for t in v)


class TestXiSweep:
    def test_returns_entry_per_xi(self):
        results = xi_sweep(
            tiny_config(max_rounds=3),
            xi_values=(0.0, 0.5),
            accuracy_targets=(0.2,),
        )
        assert set(results) == {0.0, 0.5}
        for entry in results.values():
            assert "_final_accuracy" in entry
            assert "_num_groups" in entry

    def test_zero_xi_uses_more_groups_than_large_xi(self):
        results = xi_sweep(
            tiny_config(max_rounds=3),
            xi_values=(0.0, 1.0),
            accuracy_targets=(0.2,),
        )
        assert results[0.0]["_num_groups"] >= results[1.0]["_num_groups"]

    def test_negative_xi_rejected(self):
        with pytest.raises(ValueError):
            xi_sweep(tiny_config(), xi_values=(-0.1,))


class TestEnergyVsAccuracy:
    def test_structure(self):
        results = energy_vs_accuracy(
            tiny_config(max_rounds=3),
            accuracy_targets=(0.15,),
            mechanisms=("air_fedavg", "air_fedga"),
        )
        assert set(results) == {"air_fedavg", "air_fedga"}
        for entry in results.values():
            assert "_total_energy" in entry
            assert entry["_total_energy"] >= 0


class TestScalabilitySweep:
    def test_structure_and_monotone_oma_round_time(self):
        results = scalability_sweep(
            tiny_config(max_rounds=2),
            worker_counts=(4, 8),
            mechanisms=("fedavg", "air_fedga"),
            accuracy_target=0.2,
            max_rounds=2,
        )
        assert set(results) == {"fedavg", "air_fedga"}
        assert set(results["fedavg"]) == {4, 8}
        for n in (4, 8):
            assert results["fedavg"][n]["avg_round_time"] > 0

    def test_rejects_tiny_worker_counts(self):
        with pytest.raises(ValueError):
            scalability_sweep(tiny_config(), worker_counts=(1,), mechanisms=("fedavg",))
